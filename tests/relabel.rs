//! Property tests: locality-ordered construction is invisible in the
//! output. For arbitrary ER / BA / RMAT graphs and every executor mode,
//! building on a relabeled graph and mapping back through the inverse
//! permutation round-trips vertex ids, core numbers, and PHCD tree
//! parents bit-identically.

use proptest::prelude::*;

use hcd::prelude::*;

/// Strategy: a small random graph from one of the three generator
/// families (ER, BA, RMAT), both chosen by the seed.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    any::<u64>().prop_map(|s| match s % 3 {
        0 => gnp(120, 0.03, s),
        1 => barabasi_albert(120, 3, s),
        _ => rmat(7, 6, None, s),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn relabel_roundtrips_ids_cores_and_parents(g in arb_graph()) {
        let (ref_cores, ref_hcd) =
            build_with_order(&g, VertexOrder::None, &Executor::sequential());
        let p = Permutation::degree_order(&g);
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(3),
            Executor::assist(4),
        ] {
            // Vertex ids round-trip through the permutation.
            for v in g.vertices() {
                prop_assert_eq!(p.to_old(p.to_new(v)), v);
            }
            let (cores, hcd) = build_with_order(&g, VertexOrder::Degree, &exec);
            // Core numbers are bit-identical after unmapping.
            prop_assert_eq!(cores.as_slice(), ref_cores.as_slice(),
                "coreness ({})", exec.mode_name());
            // The full index — vertex lists, tids, parents, children,
            // roots — is byte-identical, not merely isomorphic.
            prop_assert_eq!(hcd.nodes(), ref_hcd.nodes(), "nodes ({})", exec.mode_name());
            prop_assert_eq!(hcd.tids(), ref_hcd.tids(), "tids ({})", exec.mode_name());
            prop_assert_eq!(hcd.roots(), ref_hcd.roots(), "roots ({})", exec.mode_name());
            for i in 0..hcd.num_nodes() as u32 {
                prop_assert_eq!(hcd.node(i).parent, ref_hcd.node(i).parent, "parent of {}", i);
            }
        }
    }

    #[test]
    fn relabeled_graph_structure_matches_original(g in arb_graph()) {
        let p = Permutation::degree_order(&g);
        let r = g.relabel(&p);
        prop_assert!(r.check_invariants().is_ok());
        prop_assert_eq!(r.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(r.has_edge(p.to_new(u), p.to_new(v)));
        }
        // Degrees are non-increasing in the new id order (hubs first).
        for new in 1..r.num_vertices() as u32 {
            prop_assert!(r.degree(new - 1) >= r.degree(new));
        }
    }
}
