//! Determinism guarantees across runs, seeds, and execution modes.

use hcd::prelude::*;

#[test]
fn phcd_output_is_bitwise_identical_across_modes_and_runs() {
    let g = Dataset::by_abbrev("A").unwrap().generate(Scale::Tiny);
    let cores = core_decomposition(&g);
    let reference = phcd(&g, &cores, &Executor::sequential());
    for _ in 0..3 {
        for exec in [
            Executor::rayon(4),
            Executor::simulated(5),
            Executor::rayon(2),
            Executor::assist(4),
        ] {
            let h = phcd(&g, &cores, &exec);
            assert_eq!(reference.nodes(), h.nodes());
            assert_eq!(reference.tids(), h.tids());
            assert_eq!(reference.roots(), h.roots());
        }
    }
}

#[test]
fn generators_are_seed_stable() {
    for d in DATASETS.iter() {
        assert_eq!(
            d.generate(Scale::Tiny),
            d.generate(Scale::Tiny),
            "{}",
            d.abbrev
        );
    }
    assert_ne!(rmat(10, 8, None, 1), rmat(10, 8, None, 2));
}

#[test]
fn search_results_are_mode_independent() {
    let g = Dataset::by_abbrev("H").unwrap().generate(Scale::Tiny);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    for metric in Metric::ALL {
        let reference = pbks(&ctx, &metric, &Executor::sequential());
        for exec in [Executor::rayon(4), Executor::simulated(3)] {
            assert_eq!(reference, pbks(&ctx, &metric, &exec), "{}", metric.name());
        }
    }
}

#[test]
fn vertex_ranks_identical_across_modes() {
    let g = Dataset::by_abbrev("LJ").unwrap().generate(Scale::Tiny);
    let cores = core_decomposition(&g);
    let a = VertexRanks::compute(&cores, &Executor::sequential());
    let b = VertexRanks::compute(&cores, &Executor::rayon(4));
    let c = VertexRanks::compute(&cores, &Executor::simulated(7));
    assert_eq!(a.vsort(), b.vsort());
    assert_eq!(b.vsort(), c.vsort());
    assert_eq!(a.ranks(), c.ranks());
}

#[test]
fn ordered_build_is_bitwise_identical_to_unordered_across_modes() {
    // --order degree relabels the graph before construction; the mapped-
    // back output must be byte-identical to the unordered build in every
    // executor mode, not merely canonically equal.
    for abbrev in ["A", "H", "LJ"] {
        let g = Dataset::by_abbrev(abbrev).unwrap().generate(Scale::Tiny);
        let (ref_cores, ref_hcd) = build_with_order(&g, VertexOrder::None, &Executor::sequential());
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(3),
            Executor::assist(4),
        ] {
            let (cores, hcd) = build_with_order(&g, VertexOrder::Degree, &exec);
            assert_eq!(ref_cores, cores, "{abbrev} coreness ({})", exec.mode_name());
            assert_eq!(
                ref_hcd.nodes(),
                hcd.nodes(),
                "{abbrev} ({})",
                exec.mode_name()
            );
            assert_eq!(
                ref_hcd.tids(),
                hcd.tids(),
                "{abbrev} ({})",
                exec.mode_name()
            );
            assert_eq!(
                ref_hcd.roots(),
                hcd.roots(),
                "{abbrev} ({})",
                exec.mode_name()
            );
        }
    }
}
