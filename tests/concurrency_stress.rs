//! Stress tests under real threads: repeated parallel runs must stay
//! correct and agree with sequential ground truth even when the OS
//! interleaves workers adversarially.

use hcd::prelude::*;

#[test]
fn repeated_parallel_phcd_runs_on_adversarial_graph() {
    // A graph engineered for pivot contention: one giant component whose
    // pivot changes at every level, plus hub vertices shared by many
    // shells.
    let mut b = GraphBuilder::new();
    // Hub star.
    for i in 1..400u32 {
        b = b.edge(0, i);
    }
    // Nested near-cliques hanging off the hub.
    for c in 0..8u32 {
        let base = 400 + c * 30;
        for i in 0..30u32 {
            for j in (i + 1)..30u32.min(i + 4 + c) {
                b = b.edge(base + i, base + j % 30);
            }
        }
        b = b.edge(base, c + 1);
    }
    let g = b.build();
    let cores = core_decomposition(&g);
    let truth = naive_hcd(&g, &cores).canonicalize();
    for round in 0..10 {
        let exec = Executor::rayon(8);
        let h = phcd(&g, &cores, &exec);
        assert_eq!(h.canonicalize(), truth, "round {round}");
    }
}

#[test]
fn pkc_under_heavy_thread_oversubscription() {
    let g = rmat(11, 10, None, 77);
    let expected = core_decomposition(&g);
    for threads in [2, 8, 16] {
        let exec = Executor::rayon(threads);
        for _ in 0..3 {
            assert_eq!(pkc_core_decomposition(&g, &exec), expected);
        }
    }
}

#[test]
fn concurrent_search_is_stable_under_oversubscription() {
    let g = rmat(10, 12, None, 5);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let reference = pbks_scores(&ctx, &Metric::ClusteringCoefficient, &Executor::sequential());
    for _ in 0..5 {
        let exec = Executor::rayon(16);
        let got = pbks_scores(&ctx, &Metric::ClusteringCoefficient, &exec);
        assert_eq!(got.1, reference.1);
    }
}
