//! Stress tests under real threads: repeated parallel runs must stay
//! correct and agree with sequential ground truth even when the OS
//! interleaves workers adversarially — and fail *cleanly* when faults
//! are injected into arbitrary chunks.

use hcd::prelude::*;

#[test]
fn repeated_parallel_phcd_runs_on_adversarial_graph() {
    // A graph engineered for pivot contention: one giant component whose
    // pivot changes at every level, plus hub vertices shared by many
    // shells.
    let mut b = GraphBuilder::new();
    // Hub star.
    for i in 1..400u32 {
        b = b.edge(0, i);
    }
    // Nested near-cliques hanging off the hub.
    for c in 0..8u32 {
        let base = 400 + c * 30;
        for i in 0..30u32 {
            for j in (i + 1)..30u32.min(i + 4 + c) {
                b = b.edge(base + i, base + j % 30);
            }
        }
        b = b.edge(base, c + 1);
    }
    let g = b.build();
    let cores = core_decomposition(&g);
    let truth = naive_hcd(&g, &cores).canonicalize();
    for round in 0..10 {
        let exec = Executor::rayon(8);
        let h = phcd(&g, &cores, &exec);
        assert_eq!(h.canonicalize(), truth, "round {round}");
    }
}

#[test]
fn pkc_under_heavy_thread_oversubscription() {
    let g = rmat(11, 10, None, 77);
    let expected = core_decomposition(&g);
    for threads in [2, 8, 16] {
        let exec = Executor::rayon(threads);
        for _ in 0..3 {
            assert_eq!(pkc_core_decomposition(&g, &exec), expected);
        }
    }
}

#[test]
fn concurrent_search_is_stable_under_oversubscription() {
    let g = rmat(10, 12, None, 5);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let reference = pbks_scores(
        &ctx,
        &Metric::ClusteringCoefficient,
        &Executor::sequential(),
    );
    for _ in 0..5 {
        let exec = Executor::rayon(16);
        let got = pbks_scores(&ctx, &Metric::ClusteringCoefficient, &exec);
        assert_eq!(got.1, reference.1);
    }
}

// --- fault-injection matrix ------------------------------------------
//
// Every cell of (algorithm × executor mode × faulted chunk position)
// must (1) fail with a clean typed error, never a process abort or a
// hang, and (2) leave the executor reusable: clearing the plan and
// rerunning on the *same* executor must reproduce the fault-free
// reference result. This is the "no poisoned shared state" acceptance
// criterion of the failure model.

/// The executor modes, with enough workers that the first region of
/// every algorithm has non-empty first/middle/last chunks.
fn fault_modes() -> Vec<(&'static str, Executor)> {
    vec![
        ("seq", Executor::sequential()),
        ("rayon", Executor::rayon(4)),
        ("sim", Executor::simulated(4)),
        ("assist", Executor::assist(4)),
    ]
}

/// First/middle/last chunk indices of a region on `exec` (deduplicated,
/// so sequential mode tests the single chunk once).
fn chunk_positions(exec: &Executor) -> Vec<usize> {
    let p = exec.num_workers();
    let mut pos = vec![0, p / 2, p - 1];
    pos.dedup();
    pos
}

#[test]
fn injected_panic_matrix_phcd() {
    let g = rmat(11, 10, None, 77);
    let cores = core_decomposition(&g);
    let reference = phcd(&g, &cores, &Executor::sequential()).canonicalize();
    for (mode, exec) in fault_modes() {
        for chunk in chunk_positions(&exec) {
            exec.set_fault_plan(FaultPlan::new().inject(0, chunk, Fault::Panic));
            let err = try_phcd(&g, &cores, &exec)
                .expect_err(&format!("{mode}: panic in chunk {chunk} must surface"));
            match err {
                ParError::Panicked { worker, payload } => {
                    assert_eq!(worker, chunk, "{mode}");
                    assert!(payload.contains("injected fault"), "{mode}: {payload}");
                }
                other => panic!("{mode}: expected Panicked, got {other}"),
            }
            // Same executor, fault cleared: the rerun must be clean and
            // byte-identical to the reference hierarchy.
            exec.clear_fault_plan();
            let h = try_phcd(&g, &cores, &exec)
                .unwrap_or_else(|e| panic!("{mode}: clean rerun failed: {e}"));
            assert_eq!(h.canonicalize(), reference, "{mode} chunk {chunk}");
        }
    }
}

#[test]
fn injected_panic_matrix_pkc() {
    let g = rmat(11, 10, None, 78);
    let reference = core_decomposition(&g);
    for (mode, exec) in fault_modes() {
        for chunk in chunk_positions(&exec) {
            exec.set_fault_plan(FaultPlan::new().inject(0, chunk, Fault::Panic));
            let err = try_pkc_core_decomposition(&g, &exec)
                .expect_err(&format!("{mode}: panic in chunk {chunk} must surface"));
            assert!(
                matches!(err, ParError::Panicked { .. }),
                "{mode}: expected Panicked, got {err}"
            );
            exec.clear_fault_plan();
            let got = try_pkc_core_decomposition(&g, &exec)
                .unwrap_or_else(|e| panic!("{mode}: clean rerun failed: {e}"));
            assert_eq!(got, reference, "{mode} chunk {chunk}");
        }
    }
}

#[test]
fn injected_panic_matrix_pbks() {
    let g = rmat(10, 12, None, 5);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let metric = Metric::ClusteringCoefficient; // type-B: exercises the triangle pass
    let reference = pbks_scores(&ctx, &metric, &Executor::sequential());
    for (mode, exec) in fault_modes() {
        for chunk in chunk_positions(&exec) {
            exec.set_fault_plan(FaultPlan::new().inject(0, chunk, Fault::Panic));
            let err = try_pbks_scores(&ctx, &metric, &exec)
                .expect_err(&format!("{mode}: panic in chunk {chunk} must surface"));
            assert!(
                matches!(err, ParError::Panicked { .. }),
                "{mode}: expected Panicked, got {err}"
            );
            exec.clear_fault_plan();
            let got = try_pbks_scores(&ctx, &metric, &exec)
                .unwrap_or_else(|e| panic!("{mode}: clean rerun failed: {e}"));
            assert_eq!(got.1, reference.1, "{mode} chunk {chunk}");
        }
    }
}

/// One matrix cell: a fault to inject and the error shape it must surface as.
type AbortCase = (&'static str, Fault, fn(&ParError) -> bool);

/// The two injectable aborts every matrix cell is swept with: a worker
/// panic and an external cancellation landing mid-region.
fn abort_faults() -> [AbortCase; 2] {
    [
        ("panic", Fault::Panic, |e| {
            matches!(e, ParError::Panicked { .. })
        }),
        ("cancel", Fault::Cancel, |e| {
            matches!(e, ParError::Cancelled)
        }),
    ]
}

#[test]
fn injected_fault_matrix_bestk() {
    let g = rmat(10, 12, None, 5);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let metric = Metric::ClusteringCoefficient; // type-B: triangle pass
    let reference = best_k(&ctx, &metric, &Executor::sequential());
    for (mode, exec) in fault_modes() {
        for chunk in chunk_positions(&exec) {
            for (what, fault, is_expected) in abort_faults() {
                exec.set_fault_plan(FaultPlan::new().inject(0, chunk, fault));
                let err = try_best_k(&ctx, &metric, &exec)
                    .expect_err(&format!("{mode}: {what} in chunk {chunk} must surface"));
                assert!(is_expected(&err), "{mode}: {what}, got {err}");
                exec.clear_fault_plan();
                let got = try_best_k(&ctx, &metric, &exec)
                    .unwrap_or_else(|e| panic!("{mode}: clean rerun failed: {e}"));
                assert_eq!(got, reference, "{mode} {what} chunk {chunk}");
            }
        }
    }
}

#[test]
fn injected_fault_matrix_influence() {
    let g = rmat(10, 10, None, 42);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let weights: Vec<f64> = (0..g.num_vertices()).map(|v| (v % 97) as f64).collect();
    let reference: Vec<f64> = {
        let idx = InfluenceIndex::build(&ctx, &weights, &Executor::sequential());
        (0..hcd.num_nodes() as u32)
            .map(|i| idx.influence(i))
            .collect()
    };
    for (mode, exec) in fault_modes() {
        for chunk in chunk_positions(&exec) {
            for (what, fault, is_expected) in abort_faults() {
                exec.set_fault_plan(FaultPlan::new().inject(0, chunk, fault));
                let err = InfluenceIndex::try_build(&ctx, &weights, &exec)
                    .map(|_| ())
                    .expect_err(&format!("{mode}: {what} in chunk {chunk} must surface"));
                assert!(is_expected(&err), "{mode}: {what}, got {err}");
                exec.clear_fault_plan();
                let idx = InfluenceIndex::try_build(&ctx, &weights, &exec)
                    .unwrap_or_else(|e| panic!("{mode}: clean rerun failed: {e}"));
                let got: Vec<f64> = (0..hcd.num_nodes() as u32)
                    .map(|i| idx.influence(i))
                    .collect();
                assert_eq!(got, reference, "{mode} {what} chunk {chunk}");
            }
        }
    }
}

#[test]
fn injected_fault_matrix_hindex() {
    let g = rmat(11, 10, None, 78);
    let reference = core_decomposition(&g);
    for (mode, exec) in fault_modes() {
        for chunk in chunk_positions(&exec) {
            for (what, fault, is_expected) in abort_faults() {
                exec.set_fault_plan(FaultPlan::new().inject(0, chunk, fault));
                let err = try_hindex_core_decomposition(&g, &exec)
                    .expect_err(&format!("{mode}: {what} in chunk {chunk} must surface"));
                assert!(is_expected(&err), "{mode}: {what}, got {err}");
                exec.clear_fault_plan();
                let got = try_hindex_core_decomposition(&g, &exec)
                    .unwrap_or_else(|e| panic!("{mode}: clean rerun failed: {e}"));
                assert_eq!(got, reference, "{mode} {what} chunk {chunk}");
            }
        }
    }
}

#[test]
fn injected_fault_matrix_phtd() {
    let g = rmat(9, 10, None, 31);
    let (idx, td) = truss_decomposition(&g);
    let reference = phtd(&g, &idx, &td, &Executor::sequential()).canonicalize();
    for (mode, exec) in fault_modes() {
        for chunk in chunk_positions(&exec) {
            for (what, fault, is_expected) in abort_faults() {
                exec.set_fault_plan(FaultPlan::new().inject(0, chunk, fault));
                let err = try_phtd(&g, &idx, &td, &exec)
                    .map(|_| ())
                    .expect_err(&format!("{mode}: {what} in chunk {chunk} must surface"));
                assert!(is_expected(&err), "{mode}: {what}, got {err}");
                exec.clear_fault_plan();
                let h = try_phtd(&g, &idx, &td, &exec)
                    .unwrap_or_else(|e| panic!("{mode}: clean rerun failed: {e}"));
                assert_eq!(h.canonicalize(), reference, "{mode} {what} chunk {chunk}");
            }
        }
    }
}

#[test]
fn panics_in_later_regions_are_contained_too() {
    // Region 0 is the easy case; sweep panics across the first dozen
    // regions of the PHCD pipeline to catch any step that forgets to
    // propagate failure.
    let g = rmat(10, 10, None, 9);
    let cores = core_decomposition(&g);
    let reference = phcd(&g, &cores, &Executor::sequential()).canonicalize();
    let exec = Executor::rayon(4);
    for region in 0..12 {
        exec.set_fault_plan(FaultPlan::new().inject(region, 1, Fault::Panic));
        match try_phcd(&g, &cores, &exec) {
            // Regions past the end of the pipeline (or whose chunk 1 is
            // empty) never hit the fault site; those runs must be clean.
            Ok(h) => assert_eq!(h.canonicalize(), reference, "region {region}"),
            Err(ParError::Panicked { payload, .. }) => {
                assert!(payload.contains("injected fault"), "region {region}")
            }
            Err(other) => panic!("region {region}: unexpected {other}"),
        }
    }
    exec.clear_fault_plan();
    let h = try_phcd(&g, &cores, &exec).expect("executor reusable after sweep");
    assert_eq!(h.canonicalize(), reference);
}

#[test]
fn injected_delays_never_change_results() {
    // Delays reorder chunk completion adversarially but must not alter
    // any output: determinism comes from chunk ownership, not timing.
    let g = rmat(10, 10, None, 13);
    let cores = core_decomposition(&g);
    let reference = phcd(&g, &cores, &Executor::sequential()).canonicalize();
    let exec = Executor::rayon(4);
    for seed in 0..4u64 {
        // Deterministic per-seed delay pattern over the first 16 regions:
        // each (region, chunk) site sleeps 0–700µs, skewed by the seed so
        // different seeds produce different completion orders.
        let mut plan = FaultPlan::new();
        for region in 0..16usize {
            for chunk in 0..4usize {
                let us = (seed * 251 + (region as u64) * 37 + (chunk as u64) * 113) % 701;
                plan = plan.inject(region, chunk, Fault::Delay(us));
            }
        }
        exec.set_fault_plan(plan);
        let h = try_phcd(&g, &cores, &exec)
            .unwrap_or_else(|e| panic!("seed {seed}: delays must be benign: {e}"));
        assert_eq!(h.canonicalize(), reference, "seed {seed}");
    }
}

#[test]
fn cancellation_and_deadline_abort_cleanly_in_all_modes() {
    let g = rmat(11, 10, None, 21);
    let cores = core_decomposition(&g);
    for (mode, exec) in fault_modes() {
        // Pre-cancelled token: the very first chunk boundary observes it.
        let token = CancelToken::new();
        token.cancel();
        exec.set_cancel(token);
        assert!(
            matches!(try_phcd(&g, &cores, &exec), Err(ParError::Cancelled)),
            "{mode}: cancel"
        );
        exec.clear_cancel();

        // Already-expired deadline.
        exec.set_deadline(Deadline::from_now(std::time::Duration::ZERO));
        assert!(
            matches!(
                try_pkc_core_decomposition(&g, &exec),
                Err(ParError::DeadlineExceeded)
            ),
            "{mode}: deadline"
        );
        exec.clear_deadline();

        // Both cleared: the same executor finishes a clean run.
        let h = try_phcd(&g, &cores, &exec)
            .unwrap_or_else(|e| panic!("{mode}: rerun after abort failed: {e}"));
        assert_eq!(
            h.num_nodes(),
            phcd(&g, &cores, &Executor::sequential()).num_nodes()
        );
    }
}

// --- algorithm-counter coherence -------------------------------------
//
// The typed counters threaded through the executor must be *coherent*:
// counters that reflect algorithmic structure (peeling rounds, shell
// phases, successful merges) are deterministic and must agree across
// executor modes and thread interleavings, while contention-dependent
// counters (find hops, CAS retries) must still satisfy their structural
// inequalities. Aborted runs must never report more of a deterministic
// counter than a clean run — the fault cuts work short, it does not
// invent any.

/// Runs `f` with metrics enabled on `exec` and returns the snapshot.
fn metered<F: FnOnce(&Executor)>(exec: &Executor, f: F) -> RunMetrics {
    exec.set_metrics_enabled(true);
    f(exec);
    let m = exec.take_metrics();
    exec.set_metrics_enabled(false);
    m
}

fn counter(m: &RunMetrics, name: &str) -> u64 {
    m.get_counter(name).map_or(0, |c| c.value)
}

#[test]
fn deterministic_counters_agree_across_modes() {
    let g = rmat(10, 10, None, 55);
    let cores = core_decomposition(&g);
    let reference = metered(&Executor::sequential(), |e| {
        pkc_core_decomposition(&g, e);
        phcd(&g, &cores, e);
    });
    for exec in [
        Executor::rayon(4),
        Executor::simulated(4),
        Executor::assist(4),
    ] {
        let m = metered(&exec, |e| {
            pkc_core_decomposition(&g, e);
            phcd(&g, &cores, e);
        });
        // Structure-valued counters are mode-independent: peeling rounds
        // and wave count come from the degree sequence, the frontier
        // high-water mark from the wave partition, shell phases from the
        // coreness histogram, and successful union count from the
        // component structure (one link CAS wins per merge). The bucket
        // counters are structural too: CAS decrements serialize, so each
        // intermediate degree value is observed by exactly one decrement
        // regardless of interleaving, fixing the push/skip multiset. And
        // batch_staged counts edge scans, which the shell structure
        // determines.
        for name in [
            "pkc.levels",
            "pkc.waves",
            "pkc.frontier",
            "pkc.bucket_pushes",
            "pkc.bucket_skips",
            "phcd.union_phases",
            "phcd.uf.unions",
            "phcd.uf.batch_staged",
        ] {
            assert_eq!(
                counter(&m, name),
                counter(&reference, name),
                "{name} in mode {}",
                exec.mode_name()
            );
        }
        // Contention-dependent counters obey structural bounds instead:
        // every union attempt performs two finds, so finds >= 2 * the
        // successful-union count, and hop/retry counts are only defined
        // to be finite and recorded.
        let unions = counter(&m, "phcd.uf.unions");
        let finds = counter(&m, "phcd.uf.finds");
        assert!(
            finds >= 2 * unions,
            "finds {finds} < 2 * unions {unions} in mode {}",
            exec.mode_name()
        );
        // batch_flushed depends on how the shell scan is chunked (one
        // worker coalesces across the whole shell, four coalesce per
        // quarter), so it is only bounded: every forwarded edge was
        // staged, and every successful global merge came through a flush.
        let staged = counter(&m, "phcd.uf.batch_staged");
        let flushed = counter(&m, "phcd.uf.batch_flushed");
        assert!(
            unions <= flushed && flushed <= staged,
            "expected unions {unions} <= flushed {flushed} <= staged {staged} in mode {}",
            exec.mode_name()
        );
    }
}

#[test]
fn counters_under_fault_matrix_never_exceed_clean_run() {
    let g = rmat(10, 10, None, 56);
    let cores = core_decomposition(&g);
    let clean = metered(&Executor::sequential(), |e| {
        phcd(&g, &cores, e);
    });
    for (mode, exec) in fault_modes() {
        for chunk in chunk_positions(&exec) {
            for region in [0usize, 3, 6] {
                exec.set_metrics_enabled(true);
                exec.set_fault_plan(FaultPlan::new().inject(region, chunk, Fault::Panic));
                let result = try_phcd(&g, &cores, &exec);
                exec.clear_fault_plan();
                let aborted = exec.take_metrics();
                exec.set_metrics_enabled(false);
                // The aborted snapshot must still serialize and parse
                // (the CLI writes it even on failure) ...
                let parsed = Snapshot::parse(&aborted.to_json())
                    .unwrap_or_else(|e| panic!("{mode}: aborted snapshot invalid: {e}"));
                assert_eq!(parsed.regions.len(), aborted.regions.len());
                // ... and deterministic counters are monotone in work
                // done: a run cut short reports at most the clean value.
                // (A late-region fault may still miss the fault site and
                // succeed; equality is then required.)
                for name in ["phcd.union_phases", "phcd.uf.unions"] {
                    let a = counter(&aborted, name);
                    let c = counter(&clean, name);
                    if result.is_ok() {
                        assert_eq!(a, c, "{mode} r{region} c{chunk}: {name}");
                    } else {
                        assert!(a <= c, "{mode} r{region} c{chunk}: {name} {a} > clean {c}");
                    }
                }
            }
        }
    }
}

#[test]
fn injected_cancel_fault_trips_shared_token() {
    // Fault::Cancel models an external cancellation landing mid-region:
    // the shared token must end up tripped so the caller can observe it.
    let g = rmat(10, 10, None, 34);
    let cores = core_decomposition(&g);
    let exec = Executor::rayon(4);
    let token = CancelToken::new();
    exec.set_cancel(token.clone());
    exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Cancel));
    assert!(matches!(
        try_phcd(&g, &cores, &exec),
        Err(ParError::Cancelled)
    ));
    assert!(token.is_cancelled(), "shared token must be tripped");
    exec.clear_cancel();
    exec.clear_fault_plan();
    assert!(try_phcd(&g, &cores, &exec).is_ok());
}
