//! Soak and fault-injection tests for the serving layer: concurrent
//! readers query while a writer publishes update batches, and injected
//! failures (panic / cancel / deadline) in `serve.*` regions must leave
//! the service serving the previous snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use hcd::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

const READERS: usize = 5;
const SWAPS: u64 = 12;
const MIN_READS: usize = 25;

/// A compact fingerprint of one snapshot. Torn publication (a graph
/// paired with the wrong decomposition/hierarchy, or a half-updated
/// state) shows up as two observers fingerprinting the same generation
/// differently.
type Fingerprint = (usize, usize, u32, usize);

fn fingerprint(snap: &ServeSnapshot) -> Fingerprint {
    (
        snap.graph.num_vertices(),
        snap.graph.num_edges(),
        snap.cores.kmax(),
        snap.hcd.num_nodes(),
    )
}

fn random_updates(rng: &mut ChaCha8Rng, count: usize, universe: VertexId) -> Vec<EdgeUpdate> {
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0..universe);
            let v = rng.gen_range(0..universe);
            if rng.gen_bool(0.7) {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Remove(u, v)
            }
        })
        .collect()
}

/// Builds a fresh executor of the named mode — the soak runs once per
/// mode, and readers construct their own instance per thread.
fn mk_exec(mode: &str) -> Executor {
    match mode {
        "seq" => Executor::sequential(),
        "assist" => Executor::assist(4),
        other => panic!("unknown soak mode {other}"),
    }
}

/// ≥ 4 reader threads hammer the service while a writer publishes
/// `SWAPS` epochs (interleaved with deliberately failing, fault-injected
/// publish attempts). Every response must name a really-published
/// generation whose fingerprint matches the writer's record — zero torn
/// or unknown-generation reads — and per-reader generations must be
/// monotone.
#[test]
fn concurrent_readers_never_see_torn_or_unpublished_snapshots() {
    soak("seq");
}

/// The same soak with the work-assisting executor on both sides: reader
/// query batches and writer publishes run on independent assist pools
/// whose idle workers join each other region's loops, so snapshot
/// publication safety must hold while chunks migrate between threads.
#[test]
fn concurrent_readers_never_see_torn_snapshots_with_assist_executors() {
    soak("assist");
}

fn soak(mode: &str) {
    let g0 = barabasi_albert(64, 3, 0x50A4);
    let universe = g0.num_vertices() as VertexId + 8;
    let build_exec = mk_exec(mode);
    let service = HcdService::try_new(&g0, &build_exec).unwrap();

    // generation -> fingerprint, recorded by the single writer at each
    // publish (generation 0 is the initial build).
    let published: Mutex<HashMap<u64, Fingerprint>> = Mutex::new(HashMap::new());
    published
        .lock()
        .unwrap()
        .insert(0, fingerprint(&service.snapshot()));
    // Highest generation the writer may have published so far; readers
    // must never observe anything above it.
    let announced = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    let reader_observations: Vec<Mutex<Vec<(u64, Fingerprint)>>> =
        (0..READERS).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|scope| {
        for (id, observations) in reader_observations.iter().enumerate() {
            let service = &service;
            let announced = &announced;
            let done = &done;
            scope.spawn(move || {
                let exec = mk_exec(mode);
                let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(id as u64);
                let mut last_gen = 0u64;
                let mut reads = 0usize;
                while !done.load(Ordering::Acquire) || reads < MIN_READS {
                    let snap = service.snapshot();
                    observations
                        .lock()
                        .unwrap()
                        .push((snap.generation, fingerprint(&snap)));
                    assert!(
                        snap.generation <= announced.load(Ordering::Acquire),
                        "reader {id} saw unannounced generation {}",
                        snap.generation
                    );

                    // One coherence probe through the batched read path:
                    // the three answers hit different index structures
                    // (coreness array, HCD tree) and must agree — a torn
                    // graph/decomposition/hierarchy pairing breaks this.
                    let v = rng.gen_range(0..universe);
                    let k = rng.gen_range(0..5u32);
                    let batch = service
                        .try_query_batch(
                            &[
                                Query::InKCore(v, k),
                                Query::CoreContaining(v, k),
                                Query::SameKCore(v, v, k),
                            ],
                            &exec,
                        )
                        .unwrap();
                    assert!(
                        batch.generation <= announced.load(Ordering::Acquire),
                        "reader {id} answered from unannounced generation {}",
                        batch.generation
                    );
                    assert!(
                        batch.generation >= last_gen,
                        "reader {id} went back in time: {} < {last_gen}",
                        batch.generation
                    );
                    last_gen = batch.generation;
                    let (in_k, members, same) =
                        match (&batch.answers[0], &batch.answers[1], &batch.answers[2]) {
                            (
                                QueryAnswer::InKCore(b),
                                QueryAnswer::CoreContaining(m),
                                QueryAnswer::SameKCore(s),
                            ) => (*b, m.clone(), *s),
                            other => panic!("variant mismatch: {other:?}"),
                        };
                    assert_eq!(in_k, members.is_some(), "reader {id}: torn membership");
                    assert_eq!(in_k, same, "reader {id}: torn identity");
                    if let Some(m) = members {
                        assert!(m.contains(&v), "reader {id}: core missing its own vertex");
                    }
                    reads += 1;
                }
                assert!(reads >= MIN_READS);
            });
        }

        // The single writer: SWAPS successful publishes, with a
        // fault-injected failing attempt before every third one — the
        // failures must be invisible to readers.
        let writer_exec = mk_exec(mode);
        let faulty_exec = mk_exec(mode);
        let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xFEED);
        for i in 0..SWAPS {
            if i % 3 == 0 {
                let updates = random_updates(&mut rng, 6, universe);
                faulty_exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Panic));
                let err = service.try_apply_batch(&updates, &faulty_exec).unwrap_err();
                assert!(matches!(err, ServeError::Par(ParError::Panicked { .. })));
                assert_eq!(service.generation(), i, "failed publish must not swap");
            }
            let updates = random_updates(&mut rng, 6, universe);
            announced.store(i + 1, Ordering::Release);
            let resp = service.try_apply_batch(&updates, &writer_exec).unwrap();
            assert_eq!(resp.generation, i + 1);
            published
                .lock()
                .unwrap()
                .insert(resp.generation, fingerprint(&service.snapshot()));
            std::thread::sleep(Duration::from_millis(2));
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(service.generation(), SWAPS);
    let published = published.into_inner().unwrap();
    assert_eq!(published.len() as u64, SWAPS + 1);
    let mut distinct_gens: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (id, observations) in reader_observations.iter().enumerate() {
        let observations = observations.lock().unwrap();
        assert!(observations.len() >= MIN_READS, "reader {id} barely read");
        for &(gen, fp) in observations.iter() {
            let expected = published
                .get(&gen)
                .unwrap_or_else(|| panic!("reader {id} observed unpublished generation {gen}"));
            assert_eq!(
                fp, *expected,
                "reader {id}: torn snapshot at generation {gen}"
            );
            distinct_gens.insert(gen);
        }
    }
    // The soak actually exercised snapshot turnover under the readers.
    assert!(
        distinct_gens.len() >= 2,
        "readers only ever saw generations {distinct_gens:?}"
    );
    service.snapshot().validate().unwrap();
}

/// Panic, cancellation, and deadline failures injected into `serve.*`
/// (and downstream `phcd.*`) regions abort the operation but leave the
/// service serving the previous snapshot, which remains fully
/// queryable; a later clean batch publishes the cumulative state.
#[test]
fn injected_faults_leave_the_previous_snapshot_serving() {
    injected_faults_body("seq");
}

/// Identical chunk boundaries across modes mean the `(region, chunk)`
/// fault sites land in the same place under the assist executor, even
/// with assisting threads claiming neighbouring chunks concurrently.
#[test]
fn injected_faults_leave_the_previous_snapshot_serving_with_assist() {
    injected_faults_body("assist");
}

fn injected_faults_body(mode: &str) {
    let g0 = gnp(40, 0.1, 0xFA17);
    let clean = mk_exec(mode);
    let service = HcdService::try_new(&g0, &clean).unwrap();
    service
        .try_apply_batch(
            &[EdgeUpdate::Insert(0, 1), EdgeUpdate::Insert(1, 2)],
            &clean,
        )
        .unwrap();
    assert_eq!(service.generation(), 1);
    let baseline = service
        .try_query_batch(
            &[Query::CoreContaining(0, 1), Query::HierarchyPosition(5)],
            &clean,
        )
        .unwrap();
    let updates = [EdgeUpdate::Insert(2, 3), EdgeUpdate::Remove(0, 1)];

    // Panic inside dynamic.peel, the first region a batch with applied
    // updates opens (region 0 after the plan reset).
    let exec = mk_exec(mode);
    exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Panic));
    let err = service.try_apply_batch(&updates, &exec).unwrap_err();
    assert!(
        matches!(err, ServeError::Par(ParError::Panicked { .. })),
        "{err:?}"
    );

    // Cancellation tripped one region downstream (the first
    // dynamic.promote round — or, for a batch applying nothing on a
    // stale forest, the first phcd region of the full-rebuild fallback).
    let exec = mk_exec(mode);
    exec.set_fault_plan(FaultPlan::new().inject(1, 0, Fault::Cancel));
    let err = service
        .try_apply_batch(&[EdgeUpdate::Insert(4, 5)], &exec)
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Par(ParError::Cancelled)),
        "{err:?}"
    );

    // An already-expired deadline.
    let exec = mk_exec(mode);
    exec.set_deadline(Deadline::from_now(Duration::ZERO));
    let err = service
        .try_apply_batch(&[EdgeUpdate::Insert(6, 7)], &exec)
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Par(ParError::DeadlineExceeded)),
        "{err:?}"
    );

    // Panic injected into a read region fails that query only.
    let exec = mk_exec(mode);
    exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Panic));
    let err = service
        .try_query_batch(&[Query::InKCore(0, 1)], &exec)
        .unwrap_err();
    assert!(matches!(err, ParError::Panicked { .. }), "{err:?}");

    // Through all of it: nothing was published, answers are unchanged,
    // and the snapshot is still internally consistent.
    assert_eq!(service.generation(), 1);
    let after = service
        .try_query_batch(
            &[Query::CoreContaining(0, 1), Query::HierarchyPosition(5)],
            &clean,
        )
        .unwrap();
    assert_eq!(after, baseline, "failed operations changed served state");
    service.snapshot().validate().unwrap();

    // The maintained (but unpublished) updates ride along with the next
    // clean publication: the failed batches mutated the writer's graph
    // before their regions aborted (the engine repairs coreness exactly
    // on the error path), so the forest is stale and the empty batch —
    // which would otherwise take the no-op fast path — rebuilds in full
    // and publishes the cumulative state.
    let resp = service.try_apply_batch(&[], &clean).unwrap();
    assert_eq!(resp.generation, 2);
    let snap = service.snapshot();
    snap.validate().unwrap();
    let edges: std::collections::BTreeSet<_> = snap.graph.edges().collect();
    assert!(edges.contains(&(2, 3)), "pending insert lost");
    assert!(edges.contains(&(4, 5)), "pending insert lost");
    assert!(edges.contains(&(6, 7)), "pending insert lost");
    assert!(!edges.contains(&(0, 1)), "pending removal lost");
}

// ---------------------------------------------------------------------
// Multi-tenant soak: three tenant services in one registry, hammered by
// concurrent readers while each tenant's own writer publishes (and
// fault-injected attempts fail). Proves two things the single-tenant
// soak cannot: zero cross-tenant bleed (every observation matches the
// *owning* tenant's published fingerprint, and tenants' fingerprints
// are pairwise distinct at every generation) and zero torn reads
// through failed publishes — with every tenant's cache armed, so a
// shared or leaky cache would surface as a bleed.
// ---------------------------------------------------------------------

const TENANT_SWAPS: u64 = 8;
const READERS_PER_TENANT: usize = 2;

#[test]
fn multi_tenant_soak_has_zero_bleed_and_zero_torn_reads() {
    multi_tenant_soak("seq");
}

#[test]
fn multi_tenant_soak_has_zero_bleed_with_assist_executors() {
    multi_tenant_soak("assist");
}

fn multi_tenant_soak(mode: &str) {
    // Deliberately different sizes/families so any bleed (a reader
    // handed another tenant's snapshot, or a cache entry crossing
    // services) produces a fingerprint that cannot match.
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("alpha", barabasi_albert(56, 3, 0xA1FA)),
        ("beta", gnp(72, 0.08, 0xBE7A)),
        ("gamma", rmat(6, 3, None, 0x9A33)),
    ];
    let build_exec = mk_exec(mode);
    let mut registry = ServiceRegistry::new();
    let tenant_cfg = TenantConfig {
        cache: Some(CacheConfig::default()),
        durability: None,
    };
    for (name, g) in &graphs {
        registry
            .try_register(name, g, &tenant_cfg, &build_exec)
            .unwrap();
    }

    struct Tenant {
        name: &'static str,
        service: std::sync::Arc<HcdService>,
        published: Mutex<HashMap<u64, Fingerprint>>,
        announced: AtomicU64,
        universe: VertexId,
    }
    let tenants: Vec<Tenant> = graphs
        .iter()
        .map(|(name, g)| {
            let service = registry.get(name).unwrap();
            let published = Mutex::new(HashMap::new());
            published
                .lock()
                .unwrap()
                .insert(0, fingerprint(&service.snapshot()));
            Tenant {
                name,
                service,
                published,
                announced: AtomicU64::new(0),
                universe: g.num_vertices() as VertexId + 8,
            }
        })
        .collect();
    let done = AtomicBool::new(false);

    type Observed = Vec<(usize, u64, Fingerprint)>; // (tenant idx, gen, fp)
    let observations: Vec<Mutex<Observed>> = (0..tenants.len() * READERS_PER_TENANT)
        .map(|_| Mutex::new(Vec::new()))
        .collect();

    std::thread::scope(|scope| {
        for (reader, slot) in observations.iter().enumerate() {
            let tenants = &tenants;
            let done = &done;
            scope.spawn(move || {
                let exec = mk_exec(mode);
                let home = reader % tenants.len();
                let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(reader as u64);
                let mut last_gen = 0u64;
                let mut reads = 0usize;
                while !done.load(Ordering::Acquire) || reads < MIN_READS {
                    let t = &tenants[home];
                    let snap = t.service.snapshot();
                    assert!(
                        snap.generation <= t.announced.load(Ordering::Acquire),
                        "reader {reader}: unannounced generation on {}",
                        t.name
                    );
                    slot.lock()
                        .unwrap()
                        .push((home, snap.generation, fingerprint(&snap)));
                    // Coherence probe through the (cached) read path.
                    let v = rng.gen_range(0..t.universe);
                    let k = rng.gen_range(0..5u32);
                    let batch = t
                        .service
                        .try_query_batch(
                            &[Query::InKCore(v, k), Query::CoreContaining(v, k)],
                            &exec,
                        )
                        .unwrap();
                    assert!(
                        batch.generation >= last_gen,
                        "reader {reader} went back in time on {}",
                        t.name
                    );
                    last_gen = batch.generation;
                    match (&batch.answers[0], &batch.answers[1]) {
                        (QueryAnswer::InKCore(b), QueryAnswer::CoreContaining(m)) => {
                            assert_eq!(*b, m.is_some(), "reader {reader}: torn read on {}", t.name);
                        }
                        other => panic!("variant mismatch: {other:?}"),
                    }
                    reads += 1;
                }
            });
        }

        // One writer per tenant, each with its own fault-injected
        // failing attempt before every third successful publish.
        for (idx, t) in tenants.iter().enumerate() {
            scope.spawn(move || {
                let writer_exec = mk_exec(mode);
                let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xF00D + idx as u64);
                // A monotone vertex frontier guarantees every batch
                // (including the fault-injected ones) applies at least
                // one genuinely new edge: an all-skipped batch would
                // take the no-op fast path, never open a region, and
                // neither fire the fault nor bump the generation.
                let mut fresh = t.universe + 64;
                for i in 0..TENANT_SWAPS {
                    if i % 3 == 0 {
                        let mut updates = random_updates(&mut rng, 5, t.universe);
                        updates.push(EdgeUpdate::Insert(fresh, fresh + 1));
                        fresh += 2;
                        let faulty = mk_exec(mode);
                        faulty.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Panic));
                        let err = t.service.try_apply_batch(&updates, &faulty).unwrap_err();
                        assert!(matches!(err, ServeError::Par(ParError::Panicked { .. })));
                        assert_eq!(
                            t.service.generation(),
                            i,
                            "failed publish swapped {}",
                            t.name
                        );
                    }
                    let mut updates = random_updates(&mut rng, 5, t.universe);
                    updates.push(EdgeUpdate::Insert(fresh, fresh + 1));
                    fresh += 2;
                    t.announced.store(i + 1, Ordering::Release);
                    let resp = t.service.try_apply_batch(&updates, &writer_exec).unwrap();
                    assert_eq!(resp.generation, i + 1, "{}", t.name);
                    t.published
                        .lock()
                        .unwrap()
                        .insert(resp.generation, fingerprint(&t.service.snapshot()));
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        // Writers run to completion; readers stop after them.
        // (scope joins writer threads when the closure below runs last.)
        scope.spawn(|| {
            // Busy-wait until every tenant reached its final generation,
            // then release the readers.
            loop {
                if tenants.iter().all(|t| {
                    t.announced.load(Ordering::Acquire) == TENANT_SWAPS
                        && t.service.generation() == TENANT_SWAPS
                }) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::Release);
        });
    });

    // Per-tenant bookkeeping is complete and caches saw traffic.
    for t in &tenants {
        assert_eq!(t.service.generation(), TENANT_SWAPS, "{}", t.name);
        assert_eq!(
            t.published.lock().unwrap().len() as u64,
            TENANT_SWAPS + 1,
            "{}",
            t.name
        );
        let stats = t.service.cache_stats().unwrap();
        assert!(stats.hits + stats.misses > 0, "{}: cache untouched", t.name);
    }
    // Zero cross-tenant bleed: every observation matches the *owning*
    // tenant's record for that generation...
    for (reader, slot) in observations.iter().enumerate() {
        let observed = slot.lock().unwrap();
        assert!(observed.len() >= MIN_READS, "reader {reader} barely read");
        for &(home, gen, fp) in observed.iter() {
            let t = &tenants[home];
            let published = t.published.lock().unwrap();
            let expected = published
                .get(&gen)
                .unwrap_or_else(|| panic!("reader {reader} observed unpublished {}:{gen}", t.name));
            assert_eq!(fp, *expected, "reader {reader}: torn read {}:{gen}", t.name);
        }
    }
    // ...and no two tenants could ever have satisfied each other's
    // checks: their fingerprints are pairwise distinct at every
    // generation both published.
    for a in 0..tenants.len() {
        for b in (a + 1)..tenants.len() {
            let pa = tenants[a].published.lock().unwrap();
            let pb = tenants[b].published.lock().unwrap();
            for (gen, fp) in pa.iter() {
                if let Some(other) = pb.get(gen) {
                    assert_ne!(
                        fp, other,
                        "tenants {} and {} are indistinguishable at generation {gen}",
                        tenants[a].name, tenants[b].name
                    );
                }
            }
        }
    }
}
