//! Differential tests for the generation-keyed query cache.
//!
//! The cache's contract is *invisibility*: an armed service must answer
//! every query bit-identically to a disarmed one, because cache entries
//! are keyed by the snapshot generation they were computed against and
//! a publish evicts every stale generation. The tests here run the same
//! seeded workload cache-armed and cache-disarmed over three graph
//! families × all four executor modes and compare answers exactly; then
//! they prove the harness *can* fail by planting a doctored cache entry
//! and watching the served answer diverge.

use hcd::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

fn executors() -> Vec<Executor> {
    vec![
        Executor::sequential(),
        Executor::rayon(4),
        Executor::simulated(4),
        Executor::assist(4),
    ]
}

fn seed_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", gnp(48, 0.08, 0xE12)),
        ("ba", barabasi_albert(48, 3, 0xBA5)),
        ("rmat", rmat(5, 4, None, 0x12A7)),
    ]
}

/// A seeded query battery biased toward the cacheable shapes
/// (`CoreContaining` repeats on a hot set) but covering every variant.
fn query_battery(rng: &mut ChaCha8Rng, universe: VertexId, count: usize) -> Vec<Query> {
    (0..count)
        .map(|_| {
            let hot = rng.gen_bool(0.6);
            let v = if hot {
                rng.gen_range(0..8.min(universe))
            } else {
                rng.gen_range(0..universe)
            };
            let k = rng.gen_range(0..4u32);
            match rng.gen_range(0..6u32) {
                0..=2 => Query::CoreContaining(v, k),
                3 => Query::HierarchyPosition(v),
                4 => Query::InKCore(v, k),
                _ => Query::SameKCore(v, rng.gen_range(0..universe), k),
            }
        })
        .collect()
}

fn random_updates(rng: &mut ChaCha8Rng, count: usize, universe: VertexId) -> Vec<EdgeUpdate> {
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0..universe);
            let v = rng.gen_range(0..universe);
            if rng.gen_bool(0.65) {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Remove(u, v)
            }
        })
        .collect()
}

/// The tentpole differential: the same seeded interleaving of query
/// batteries (batched and single-query paths) and update batches runs
/// against an armed and a disarmed service; every answer must match
/// bit-identically, across generations, and the armed side must
/// actually hit its cache (a cache that never hits trivially passes).
#[test]
fn armed_and_disarmed_answers_are_bit_identical_across_modes() {
    const ROUNDS: usize = 5;
    for (family, g0) in seed_graphs() {
        for exec in executors() {
            let ctx = format!("{family}/{}", exec.mode_name());
            let plain = HcdService::try_new(&g0, &exec).unwrap();
            let cached = HcdService::try_new(&g0, &exec)
                .unwrap()
                .with_cache(CacheConfig::default());
            assert!(cached.cache_armed() && !plain.cache_armed());
            let universe = g0.num_vertices() as VertexId + 6;
            let mut rng =
                <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xCACE ^ g0.num_edges() as u64);
            for round in 0..ROUNDS {
                // Batched path: one shared battery through both services.
                let queries = query_battery(&mut rng, universe, 24);
                let a = plain.try_query_batch(&queries, &exec).unwrap();
                let b = cached.try_query_batch(&queries, &exec).unwrap();
                assert_eq!(a.generation, b.generation, "{ctx} round {round}");
                assert_eq!(a.answers, b.answers, "{ctx} round {round}: batch answers");
                // Re-run the same battery so the armed side serves from
                // cache what it just computed — answers still identical.
                let b2 = cached.try_query_batch(&queries, &exec).unwrap();
                assert_eq!(a.answers, b2.answers, "{ctx} round {round}: cached re-run");
                // Single-query path.
                let v = rng.gen_range(0..universe);
                let k = rng.gen_range(0..4u32);
                let pa = plain.try_core_containing(v, k, &exec).unwrap();
                let ca = cached.try_core_containing(v, k, &exec).unwrap();
                let ca2 = cached.try_core_containing(v, k, &exec).unwrap();
                assert_eq!(pa.value, ca.value, "{ctx} round {round}: single");
                assert_eq!(pa.value, ca2.value, "{ctx} round {round}: single cached");
                // Same update stream to both; generations stay in lock step.
                let updates = random_updates(&mut rng, 8, universe);
                let ga = plain.try_apply_batch(&updates, &exec).unwrap();
                let gb = cached.try_apply_batch(&updates, &exec).unwrap();
                assert_eq!(ga.generation, gb.generation, "{ctx} round {round}");
                assert_eq!(ga.value.applied, gb.value.applied, "{ctx} round {round}");
            }
            let stats = cached.cache_stats().unwrap();
            assert!(stats.hits > 0, "{ctx}: the battery must hit the cache");
            assert!(plain.cache_stats().is_none(), "{ctx}");
        }
    }
}

/// Publishing a new generation invalidates the cache: a query answered
/// (and cached) before an update must be re-answered from the new
/// snapshot afterwards, never from the prior generation's entry — and
/// the stale entries are physically evicted on publish.
#[test]
fn post_publish_queries_never_see_prior_generation_entries() {
    let exec = Executor::sequential();
    // A triangle: vertex 3 joins the 2-core only after the new edges.
    let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0)]).build();
    let svc = HcdService::try_new(&g, &exec)
        .unwrap()
        .with_cache(CacheConfig::default());
    // Cache the generation-0 answer (vertex 3 unknown -> None).
    let before = svc.try_core_containing(3, 2, &exec).unwrap();
    assert_eq!(before.generation, 0);
    assert_eq!(before.value, None);
    let cached_entries = svc.cache_stats().unwrap().entries;
    assert!(cached_entries > 0, "the miss must populate the cache");
    // Publish a change that flips the answer.
    svc.try_apply_batch(&[EdgeUpdate::Insert(3, 0), EdgeUpdate::Insert(3, 1)], &exec)
        .unwrap();
    let stats = svc.cache_stats().unwrap();
    assert_eq!(stats.entries, 0, "publish must evict stale generations");
    assert!(stats.evictions >= cached_entries, "{stats:?}");
    // The post-publish answer comes from the new snapshot.
    let after = svc.try_core_containing(3, 2, &exec).unwrap();
    assert_eq!(after.generation, 1);
    let members = after.value.expect("vertex 3 is in the 2-core now");
    assert!(members.contains(&3), "{members:?}");
    // And the fresh answer equals an uncached rebuild's.
    let g2 = GraphBuilder::new()
        .edges([(0, 1), (1, 2), (2, 0), (3, 0), (3, 1)])
        .build();
    let oracle = HcdService::try_new(&g2, &exec).unwrap();
    assert_eq!(
        oracle.try_core_containing(3, 2, &exec).unwrap().value,
        Some(members)
    );
}

/// The negative check: the differential harness must be *able* to fail.
/// Planting a doctored entry for the current generation makes the armed
/// service serve the wrong answer — proving the bit-identical
/// assertions above really do flow through the cache, and that a stale
/// entry surviving a publish (simulated at the current generation)
/// would be caught.
#[test]
fn doctored_cache_entries_are_served_and_would_fail_the_differential() {
    let exec = Executor::sequential();
    let g = gnp(32, 0.12, 0xD0C);
    let svc = HcdService::try_new(&g, &exec)
        .unwrap()
        .with_cache(CacheConfig::default());
    let honest = svc.try_core_containing(0, 1, &exec).unwrap();
    assert!(honest.value.is_some(), "pick a vertex with a 1-core");
    // Plant an absurd answer under the *current* generation's key —
    // exactly what a broken eviction would leave behind after a publish.
    let doctored = vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
    svc.cache().unwrap().doctor(
        honest.generation,
        CacheKey::Core(0, 1),
        CachedAnswer::Core(Some(doctored.clone())),
    );
    let poisoned = svc
        .try_query_batch(&[Query::CoreContaining(0, 1)], &exec)
        .unwrap();
    assert_eq!(
        poisoned.answers,
        vec![QueryAnswer::CoreContaining(Some(doctored))],
        "the doctored entry must be what is served"
    );
    assert_ne!(
        poisoned.answers,
        vec![QueryAnswer::CoreContaining(honest.value.clone())],
        "a poisoned cache diverges from the honest answer"
    );
    // A publish sweeps the poison out with everything else stale.
    svc.try_apply_batch(&[EdgeUpdate::Insert(0, 33)], &exec)
        .unwrap();
    let clean = svc
        .try_query_batch(&[Query::CoreContaining(0, 1)], &exec)
        .unwrap();
    let QueryAnswer::CoreContaining(clean_members) = &clean.answers[0] else {
        panic!("wrong answer shape");
    };
    assert_ne!(
        clean_members.as_deref(),
        Some(&[0u32, 1, 2, 3, 4, 5, 6, 7, 8, 9][..]),
        "publish must purge the doctored entry"
    );
}

/// Cache counters flow through the executor metrics under the right
/// names (globally and tenant-namespaced), so the schema tests and the
/// committed baseline can gate them.
#[test]
fn cache_counters_reach_the_metrics_snapshot() {
    let exec = Executor::sequential().with_metrics().with_histograms();
    let g = gnp(32, 0.12, 0xD0C);
    let svc = HcdService::try_new(&g, &exec)
        .unwrap()
        .with_cache(CacheConfig::default());
    svc.try_core_containing(0, 1, &exec).unwrap(); // miss
    svc.try_core_containing(0, 1, &exec).unwrap(); // hit
    let m = exec.take_metrics();
    assert_eq!(m.get_counter("serve.cache.misses").unwrap().value, 1);
    assert_eq!(m.get_counter("serve.cache.hits").unwrap().value, 1);
    let lookups = m.get_histogram("serve.cache.lookup");
    assert!(lookups.is_some(), "lookup latency histogram must exist");
}

/// The best-community answer is cached per (generation, metric) too.
#[test]
fn best_community_answers_are_cached_and_identical() {
    let exec = Executor::sequential();
    let g = barabasi_albert(64, 3, 0xBE5);
    let plain = HcdService::try_new(&g, &exec).unwrap();
    let cached = HcdService::try_new(&g, &exec)
        .unwrap()
        .with_cache(CacheConfig::default());
    for metric in &[Metric::AverageDegree, Metric::InternalDensity] {
        let a = plain.try_best_community(metric, &exec).unwrap();
        let b = cached.try_best_community(metric, &exec).unwrap();
        let b2 = cached.try_best_community(metric, &exec).unwrap();
        assert_eq!(a.value, b.value, "{metric:?}");
        assert_eq!(a.value, b2.value, "{metric:?} (cached)");
    }
    let stats = cached.cache_stats().unwrap();
    assert!(stats.hits >= 2, "{stats:?}");
}
