//! Validates the `--metrics` JSON emitted by `hcd-cli` against the
//! documented `hcd-metrics-v1` schema, end to end: generate a graph, run
//! a command with `--metrics`, parse the file with a dependency-free
//! JSON reader, and check every structural and arithmetic invariant the
//! schema promises. CI runs the same validation on an RMAT graph.

use std::path::PathBuf;
use std::process::Command;

mod common;
use common::Json;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcd-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcd_metrics_test_{}_{name}", std::process::id()));
    p
}

// --- schema validation ------------------------------------------------

/// Field names every region entry must carry, with non-negative values.
const REGION_FIELDS: [&str; 12] = [
    "invocations",
    "chunks",
    "wall_ns",
    "chunk_sum_ns",
    "chunk_max_ns",
    "chunk_min_ns",
    "imbalance",
    "checkpoints",
    "cancelled",
    "deadline_exceeded",
    "panicked",
    "faults_injected",
];

/// Asserts the full `hcd-metrics-v1` contract on a parsed document and
/// returns the region names in emission order.
fn validate_schema(doc: &Json) -> Vec<String> {
    assert_eq!(
        doc.get("schema").and_then(Json::str),
        Some("hcd-metrics-v1"),
        "schema tag"
    );
    let total_wall = doc
        .get("total_wall_ns")
        .and_then(Json::num)
        .expect("total_wall_ns");
    let total_charged = doc
        .get("total_charged_ns")
        .and_then(Json::num)
        .expect("total_charged_ns");
    assert!(total_wall >= 0.0 && total_charged >= 0.0);

    let regions = doc.get("regions").and_then(Json::arr).expect("regions[]");
    let mut names = Vec::new();
    let mut sum_wall = 0.0;
    let mut sum_charged = 0.0;
    for r in regions {
        let name = r.get("name").and_then(Json::str).expect("region name");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')),
            "name charset: {name:?}"
        );
        for field in REGION_FIELDS {
            let v = r
                .get(field)
                .and_then(Json::num)
                .unwrap_or_else(|| panic!("{name}: missing {field}"));
            assert!(v >= 0.0, "{name}.{field} = {v}");
        }
        let chunks = r.get("chunks").and_then(Json::num).unwrap();
        let invocations = r.get("invocations").and_then(Json::num).unwrap();
        let sum = r.get("chunk_sum_ns").and_then(Json::num).unwrap();
        let max = r.get("chunk_max_ns").and_then(Json::num).unwrap();
        let min = r.get("chunk_min_ns").and_then(Json::num).unwrap();
        assert!(invocations >= 1.0, "{name}: recorded without running");
        // An invocation over an empty index range runs zero chunks, so
        // `chunks` is not bounded below by `invocations`.
        assert!(chunks > 0.0 || sum == 0.0, "{name}: timed chunkless run");
        assert!(max <= sum, "{name}: chunk_max > chunk_sum");
        assert!(min <= max || max == 0.0, "{name}: chunk_min > chunk_max");
        sum_wall += r.get("wall_ns").and_then(Json::num).unwrap();
        sum_charged += max;
        names.push(name.to_string());
    }
    assert_eq!(sum_wall, total_wall, "total_wall_ns is the region sum");
    assert_eq!(
        sum_charged, total_charged,
        "total_charged_ns is the sum of chunk maxima"
    );

    // Algorithm counters (added in v1 as an always-present array): each
    // entry carries a name, a non-negative value, and a fold kind.
    let counters = doc.get("counters").and_then(Json::arr).expect("counters[]");
    for c in counters {
        let name = c.get("name").and_then(Json::str).expect("counter name");
        let value = c
            .get("value")
            .and_then(Json::num)
            .unwrap_or_else(|| panic!("{name}: missing value"));
        assert!(value >= 0.0, "{name} = {value}");
        let kind = c.get("kind").and_then(Json::str).unwrap();
        assert!(kind == "sum" || kind == "max", "{name}: kind {kind:?}");
    }

    // Latency histograms (always-present, schema-versioned section):
    // each entry carries exact count/sum/min/max plus precomputed
    // quantiles that must be ordered and bracketed by min/max.
    let hists = doc.get("histograms").expect("histograms section");
    assert_eq!(
        hists.get("version").and_then(Json::num),
        Some(1.0),
        "histograms.version"
    );
    assert_eq!(
        hists.get("sub_bits").and_then(Json::num),
        Some(2.0),
        "histograms.sub_bits"
    );
    let entries = hists
        .get("entries")
        .and_then(Json::arr)
        .expect("histograms.entries[]");
    for h in entries {
        let name = h.get("name").and_then(Json::str).expect("histogram name");
        let field = |f: &str| {
            h.get(f)
                .and_then(Json::num)
                .unwrap_or_else(|| panic!("{name}: missing {f}"))
        };
        let count = field("count");
        assert!(count >= 1.0, "{name}: empty histogram emitted");
        assert!(field("sum_ns") >= field("max_ns"), "{name}: sum < max");
        let (min, max) = (field("min_ns"), field("max_ns"));
        let qs = [
            field("p50_ns"),
            field("p90_ns"),
            field("p99_ns"),
            field("p999_ns"),
        ];
        assert!(
            qs.windows(2).all(|w| w[0] <= w[1]),
            "{name}: quantiles not monotone: {qs:?}"
        );
        assert!(
            qs.iter().all(|&q| (min..=max).contains(&q)),
            "{name}: quantile outside [min, max]: {qs:?} vs [{min}, {max}]"
        );
        let buckets = h
            .get("buckets")
            .and_then(Json::arr)
            .unwrap_or_else(|| panic!("{name}: missing buckets"));
        let bucket_total: f64 = buckets
            .iter()
            .map(|b| {
                let pair = b.arr().unwrap_or_else(|| panic!("{name}: bucket pair"));
                assert_eq!(pair.len(), 2, "{name}: bucket pair arity");
                pair[1].num().unwrap()
            })
            .sum();
        assert_eq!(bucket_total, count, "{name}: bucket counts don't sum");
    }
    names
}

fn gen_graph(name: &str, model: &str) -> PathBuf {
    let graph = tmp(name);
    let out = cli()
        .args(["gen", model, graph.to_str().unwrap(), "--seed", "7"])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    graph
}

#[test]
fn build_metrics_cover_every_phcd_region() {
    let graph = gen_graph("build.txt", "rmat");
    let index = tmp("build.hcd");
    let metrics = tmp("build.json");
    let out = cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            index.to_str().unwrap(),
            "-p",
            "4",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let doc = Json::parse(&text).expect("valid JSON");
    let names = validate_schema(&doc);
    for region in [
        "phcd.kpc",
        "phcd.union",
        "phcd.pivots",
        "phcd.assign",
        "phcd.parents",
    ] {
        assert!(
            names.iter().any(|n| n == region),
            "missing {region}: {names:?}"
        );
    }
    // The build pipeline flushes its typed algorithm counters.
    let counters: Vec<&str> = doc
        .get("counters")
        .and_then(Json::arr)
        .unwrap()
        .iter()
        .map(|c| c.get("name").and_then(Json::str).unwrap())
        .collect();
    for counter in [
        "pkc.levels",
        "pkc.frontier",
        "phcd.union_phases",
        "phcd.uf.unions",
    ] {
        assert!(
            counters.contains(&counter),
            "missing counter {counter}: {counters:?}"
        );
    }
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn search_metrics_cover_the_pbks_pipeline() {
    let graph = gen_graph("search.txt", "tree");
    let metrics = tmp("search.json");
    let out = cli()
        .args([
            "search",
            graph.to_str().unwrap(),
            "-m",
            "clustering-coefficient",
            "-p",
            "2",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run search");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let names = validate_schema(&Json::parse(&text).expect("valid JSON"));
    // The search pipeline layers preprocessing and scoring on top of the
    // construction regions; a type-B metric also runs the triangle pass.
    for region in [
        "search.preprocess",
        "pbks.type_a",
        "pbks.triangles",
        "pbks.score",
    ] {
        assert!(
            names.iter().any(|n| n == region),
            "missing {region}: {names:?}"
        );
    }
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn serve_bench_metrics_cover_the_serving_layer() {
    let graph = gen_graph("serve.txt", "ba");
    let metrics = tmp("serve.json");
    let durable = tmp("serve_durable_dir");
    std::fs::remove_dir_all(&durable).ok();
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "-p",
            "2",
            "--ops",
            "24",
            "--batch",
            "8",
            "--read-ratio",
            "0.7",
            "--durable",
            durable.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run serve-bench");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let doc = Json::parse(&text).expect("valid JSON");
    let names = validate_schema(&doc);
    // The workload mixes batched reads with rebuild/publish cycles; both
    // serving regions must appear, alongside the incremental-maintenance
    // regions the update batches open and the construction regions of
    // the generation-0 build.
    for region in [
        "serve.query.batch",
        "serve.rebuild",
        "phcd.kpc",
        "dynamic.peel",
        "dynamic.promote",
    ] {
        assert!(
            names.iter().any(|n| n == region),
            "missing {region}: {names:?}"
        );
    }
    let counters: Vec<(&str, &str, f64)> = doc
        .get("counters")
        .and_then(Json::arr)
        .unwrap()
        .iter()
        .map(|c| {
            (
                c.get("name").and_then(Json::str).unwrap(),
                c.get("kind").and_then(Json::str).unwrap(),
                c.get("value").and_then(Json::num).unwrap(),
            )
        })
        .collect();
    // The durable run adds write-ahead-log traffic to the counter set.
    for counter in [
        "serve.queries",
        "serve.batches",
        "serve.swaps",
        "serve.wal_appends",
        "serve.wal_bytes",
    ] {
        let (_, kind, value) = counters
            .iter()
            .find(|(n, _, _)| *n == counter)
            .unwrap_or_else(|| panic!("missing counter {counter}: {counters:?}"));
        assert_eq!(*kind, "sum", "{counter}");
        assert!(*value >= 1.0, "{counter} never ticked");
    }
    // Emitted as a gauge so a zero-stale run still reports the counter.
    let (_, kind, _) = counters
        .iter()
        .find(|(n, _, _)| *n == "serve.stale_reads")
        .unwrap_or_else(|| panic!("missing counter serve.stale_reads: {counters:?}"));
    assert_eq!(*kind, "max", "serve.stale_reads");
    // Every serve-path boundary records a latency histogram: batched and
    // single-query reads, the write path, and durability stages.
    let hist_names: Vec<&str> = doc
        .get("histograms")
        .and_then(|h| h.get("entries"))
        .and_then(Json::arr)
        .unwrap()
        .iter()
        .map(|h| h.get("name").and_then(Json::str).unwrap())
        .collect();
    for hist in [
        "serve.query.batch",
        "serve.apply",
        "serve.repair",
        "serve.publish",
        "serve.wal.append",
        "serve.wal.fsync",
    ] {
        assert!(
            hist_names.contains(&hist),
            "missing histogram {hist}: {hist_names:?}"
        );
    }
    assert!(
        hist_names
            .iter()
            .any(|n| n.starts_with("serve.query.") && *n != "serve.query.batch"),
        "no single-query-type histogram recorded: {hist_names:?}"
    );
    // The bench prints its latency report from this same document.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("latency (p50/p99/p999/max from the emitted hcd-metrics-v1 histograms)"),
        "no latency report in output:\n{stdout}"
    );
    assert!(
        stdout
            .lines()
            .any(|l| l.contains("serve.query.batch") && l.contains("p99=")),
        "no per-query-type percentile line:\n{stdout}"
    );
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&metrics).ok();
    std::fs::remove_dir_all(&durable).ok();
}

#[test]
fn metrics_file_is_written_even_when_the_deadline_fires() {
    let graph = gen_graph("timeout.txt", "ba");
    let metrics = tmp("timeout.json");
    let out = cli()
        .args([
            "search",
            graph.to_str().unwrap(),
            "--timeout-ms",
            "0",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run search");
    assert_eq!(out.status.code(), Some(124), "deadline exit code");
    let text =
        std::fs::read_to_string(&metrics).expect("metrics must be written for aborted runs too");
    let doc = Json::parse(&text).expect("valid JSON");
    let names = validate_schema(&doc);
    // The aborted region recorded its failure.
    let regions = doc.get("regions").and_then(Json::arr).unwrap();
    let aborted: f64 = regions
        .iter()
        .map(|r| r.get("deadline_exceeded").and_then(Json::num).unwrap())
        .sum();
    assert!(aborted >= 1.0, "no deadline recorded in {names:?}");
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn without_the_flag_no_metrics_file_appears() {
    let graph = gen_graph("noflag.txt", "tree");
    let metrics = tmp("noflag.json");
    std::fs::remove_file(&metrics).ok();
    let out = cli()
        .args(["stats", graph.to_str().unwrap(), "-p", "2"])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    assert!(!metrics.exists());
    std::fs::remove_file(&graph).ok();
}

#[test]
fn closed_loop_cache_flag_emits_cache_counters_and_lookup_histogram() {
    let graph = gen_graph("cache.txt", "ba");
    let metrics = tmp("cache.json");
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "--cache",
            "--hot-fraction",
            "0.6",
            "--ops",
            "24",
            "--batch",
            "8",
            "--mode",
            "seq",
            "-p",
            "1",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run serve-bench --cache");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let doc = Json::parse(&text).expect("valid JSON");
    validate_schema(&doc);
    let counters: Vec<(&str, f64)> = doc
        .get("counters")
        .and_then(Json::arr)
        .unwrap()
        .iter()
        .map(|c| {
            (
                c.get("name").and_then(Json::str).unwrap(),
                c.get("value").and_then(Json::num).unwrap(),
            )
        })
        .collect();
    for counter in ["serve.cache.hits", "serve.cache.misses"] {
        let (_, value) = counters
            .iter()
            .find(|(n, _)| *n == counter)
            .unwrap_or_else(|| panic!("missing counter {counter}: {counters:?}"));
        assert!(*value >= 1.0, "{counter} never ticked");
    }
    let hist_names: Vec<&str> = doc
        .get("histograms")
        .and_then(|h| h.get("entries"))
        .and_then(Json::arr)
        .unwrap()
        .iter()
        .map(|h| h.get("name").and_then(Json::str).unwrap())
        .collect();
    assert!(
        hist_names.contains(&"serve.cache.lookup"),
        "missing serve.cache.lookup: {hist_names:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout
            .lines()
            .any(|l| l.starts_with("cache            = hits ")),
        "no cache summary line:\n{stdout}"
    );
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn open_loop_serve_bench_emits_tenant_namespaced_metrics() {
    let graph = gen_graph("openloop.txt", "ba");
    let metrics = tmp("openloop.json");
    // Offered far above drain capacity with a low watermark, so the
    // shed counters are guaranteed traffic; hot queries arm the caches.
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "--tenants",
            "2",
            "--offered-qps",
            "50000",
            "--ticks",
            "60",
            "--watermark",
            "16",
            "--batch",
            "8",
            "--hot-fraction",
            "0.6",
            "--mode",
            "seq",
            "-p",
            "1",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run open-loop serve-bench");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let doc = Json::parse(&text).expect("valid JSON");
    let names = validate_schema(&doc);
    // Regions are tenant-namespaced; the un-namespaced serving regions
    // must NOT appear (nothing ran outside a tenant).
    for region in ["serve.t0.query.batch", "serve.t1.query.batch"] {
        assert!(
            names.iter().any(|n| n == region),
            "missing region {region}: {names:?}"
        );
    }
    assert!(
        !names.iter().any(|n| n == "serve.query.batch"),
        "un-namespaced serving region leaked: {names:?}"
    );
    let counters: Vec<&str> = doc
        .get("counters")
        .and_then(Json::arr)
        .unwrap()
        .iter()
        .map(|c| c.get("name").and_then(Json::str).unwrap())
        .collect();
    for counter in [
        "serve.t0.queries",
        "serve.t1.queries",
        "serve.t0.ingress.enqueued",
        "serve.t0.shed.overloaded",
        "serve.t1.shed.overloaded",
        "serve.t0.cache.hits",
        "serve.t1.cache.hits",
    ] {
        assert!(
            counters.contains(&counter),
            "missing counter {counter}: {counters:?}"
        );
    }
    for leaked in ["serve.queries", "serve.shed.overloaded", "serve.cache.hits"] {
        assert!(
            !counters.contains(&leaked),
            "un-namespaced counter leaked: {leaked}"
        );
    }
    // Histogram names stay global (the 32-slot histogram table is
    // shared), so the latency report aggregates across tenants.
    let hist_names: Vec<&str> = doc
        .get("histograms")
        .and_then(|h| h.get("entries"))
        .and_then(Json::arr)
        .unwrap()
        .iter()
        .map(|h| h.get("name").and_then(Json::str).unwrap())
        .collect();
    for hist in ["serve.query.batch", "serve.cache.lookup"] {
        assert!(
            hist_names.contains(&hist),
            "missing histogram {hist}: {hist_names:?}"
        );
    }
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&metrics).ok();
}
