//! Differential test harness for the serving layer (`hcd-serve`).
//!
//! A seeded interleaving of update batches and query batches runs
//! against [`HcdService`]; after **every** epoch swap the published
//! snapshot is checked bit-identically against an independently
//! maintained oracle: a mirror edge multiset rebuilt from scratch with
//! `core_decomposition` + `naive_hcd`. Queries are cross-checked
//! against the same oracle. The whole matrix runs over three graph
//! families (ER, BA, RMAT) × all three executor modes.

use std::collections::BTreeSet;

use hcd::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Independently maintained ground truth: the edge set and vertex count
/// the service *should* be serving, mirroring `DynamicGraph` semantics
/// (inserts grow the vertex set — even no-op duplicate inserts, which
/// still call `ensure_vertex`; removes never do).
struct Mirror {
    edges: BTreeSet<(VertexId, VertexId)>,
    n: usize,
}

impl Mirror {
    fn of(g: &CsrGraph) -> Self {
        Mirror {
            edges: g.edges().collect(),
            n: g.num_vertices(),
        }
    }

    /// Applies one update, returning whether it changed the edge set.
    fn apply(&mut self, upd: &EdgeUpdate) -> bool {
        match *upd {
            EdgeUpdate::Insert(u, v) => {
                if u == v {
                    return false;
                }
                self.n = self.n.max(u.max(v) as usize + 1);
                self.edges.insert((u.min(v), u.max(v)))
            }
            EdgeUpdate::Remove(u, v) => self.edges.remove(&(u.min(v), u.max(v))),
        }
    }

    fn graph(&self) -> CsrGraph {
        GraphBuilder::new()
            .min_vertices(self.n)
            .edges(self.edges.iter().copied())
            .build()
    }
}

fn random_updates(rng: &mut ChaCha8Rng, count: usize, universe: VertexId) -> Vec<EdgeUpdate> {
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0..universe);
            let v = rng.gen_range(0..universe);
            if rng.gen_bool(0.65) {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Remove(u, v)
            }
        })
        .collect()
}

/// Checks the served snapshot bit-identically against a from-scratch
/// oracle built on the mirror's edge multiset.
fn assert_snapshot_matches_oracle(snap: &ServeSnapshot, mirror: &Mirror, ctx: &str) {
    let oracle_graph = mirror.graph();
    assert_eq!(
        snap.graph.num_vertices(),
        oracle_graph.num_vertices(),
        "{ctx}: vertex count"
    );
    assert_eq!(
        snap.graph.edges().collect::<BTreeSet<_>>(),
        mirror.edges,
        "{ctx}: edge set"
    );
    let oracle_cores = core_decomposition(&oracle_graph);
    assert_eq!(
        snap.cores.as_slice(),
        oracle_cores.as_slice(),
        "{ctx}: coreness"
    );
    let oracle_hcd = naive_hcd(&oracle_graph, &oracle_cores);
    assert_eq!(
        snap.hcd.canonicalize(),
        oracle_hcd.canonicalize(),
        "{ctx}: hierarchy"
    );
    snap.validate().unwrap_or_else(|e| panic!("{ctx}: {e}"));
}

/// Cross-checks a served query batch against oracle-side answers.
fn assert_queries_match_oracle(
    service: &HcdService,
    mirror: &Mirror,
    rng: &mut ChaCha8Rng,
    exec: &Executor,
    ctx: &str,
) {
    let oracle_graph = mirror.graph();
    let oracle_cores = core_decomposition(&oracle_graph);
    let oracle_hcd = naive_hcd(&oracle_graph, &oracle_cores);
    let universe = (mirror.n as VertexId) + 4; // a few out-of-range ids too
    let queries: Vec<Query> = (0..24)
        .map(|_| {
            let v = rng.gen_range(0..universe);
            let k = rng.gen_range(0..5u32);
            match rng.gen_range(0..4u32) {
                0 => Query::CoreContaining(v, k),
                1 => Query::HierarchyPosition(v),
                2 => Query::InKCore(v, k),
                _ => Query::SameKCore(v, rng.gen_range(0..universe), k),
            }
        })
        .collect();
    let batch = service.try_query_batch(&queries, exec).unwrap();
    assert_eq!(batch.generation, service.generation(), "{ctx}: generation");
    let known = |v: VertexId| (v as usize) < oracle_graph.num_vertices();
    for (q, a) in queries.iter().zip(&batch.answers) {
        let expected = match *q {
            Query::CoreContaining(v, k) => QueryAnswer::CoreContaining(
                known(v)
                    .then(|| core_containing(&oracle_hcd, &oracle_cores, v, k))
                    .flatten()
                    .map(|mut m| {
                        m.sort_unstable();
                        m
                    }),
            ),
            Query::HierarchyPosition(v) => {
                QueryAnswer::HierarchyPosition(known(v).then(|| hierarchy_position(&oracle_hcd, v)))
            }
            Query::InKCore(v, k) => QueryAnswer::InKCore(known(v) && k <= oracle_cores.coreness(v)),
            Query::SameKCore(u, v, k) => QueryAnswer::SameKCore(
                known(u) && known(v) && same_k_core(&oracle_hcd, &oracle_cores, u, v, k),
            ),
        };
        assert_eq!(*a, expected, "{ctx}: query {q:?}");
    }
}

fn executors() -> Vec<Executor> {
    vec![
        Executor::sequential(),
        Executor::rayon(4),
        Executor::simulated(4),
        Executor::assist(4),
    ]
}

fn seed_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", gnp(48, 0.08, 0xE12)),
        ("ba", barabasi_albert(48, 3, 0xBA5)),
        ("rmat", rmat(5, 4, None, 0x12A7)),
    ]
}

/// The tentpole differential run: ER/BA/RMAT × all executor modes,
/// checking every published epoch against the from-scratch oracle and
/// interleaved query batches against oracle answers.
#[test]
fn served_snapshots_match_from_scratch_oracle_across_modes() {
    const ROUNDS: usize = 8;
    const BATCH: usize = 12;
    for (family, g0) in seed_graphs() {
        for exec in executors() {
            let ctx_base = format!("{family}/{}", exec.mode_name());
            let mut rng =
                <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0x5EED ^ g0.num_edges() as u64);
            let mut mirror = Mirror::of(&g0);
            let service = HcdService::try_new(&g0, &exec).unwrap();
            assert_eq!(service.generation(), 0);
            assert_snapshot_matches_oracle(&service.snapshot(), &mirror, &ctx_base);
            let universe = g0.num_vertices() as VertexId + 6;
            for round in 0..ROUNDS {
                let ctx = format!("{ctx_base} round {round}");
                let updates = random_updates(&mut rng, BATCH, universe);
                let expected_applied = updates.iter().filter(|u| mirror.apply(u)).count();
                let resp = service.try_apply_batch(&updates, &exec).unwrap();
                assert_eq!(resp.generation, round as u64 + 1, "{ctx}: epoch");
                assert_eq!(service.generation(), round as u64 + 1, "{ctx}: epoch");
                assert_eq!(resp.value.applied, expected_applied, "{ctx}: applied");
                assert_eq!(
                    resp.value.skipped,
                    updates.len() - expected_applied,
                    "{ctx}: skipped"
                );
                assert_snapshot_matches_oracle(&service.snapshot(), &mirror, &ctx);
                assert_queries_match_oracle(&service, &mirror, &mut rng, &exec, &ctx);
            }
        }
    }
}

/// The incremental writer path (batch-dynamic coreness engine plus
/// surgical tree repair of the published forest) publishes exactly what
/// a naive from-scratch rebuild of the same state would, for every
/// graph family × executor mode. This pins the equivalence directly —
/// one service runs incrementally, the comparison state is rebuilt with
/// `HcdService::try_new` from the mirror graph each round — and checks
/// the maintenance counters report a bounded touched region.
#[test]
fn incremental_path_matches_naive_rebuild_across_modes() {
    const ROUNDS: usize = 6;
    const BATCH: usize = 4;
    for (family, g0) in seed_graphs() {
        for exec in executors() {
            let exec = exec.with_metrics();
            let ctx_base = format!("{family}/{}", exec.mode_name());
            let mut rng =
                <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xD1FF ^ g0.num_edges() as u64);
            let mut mirror = Mirror::of(&g0);
            let service = HcdService::try_new(&g0, &exec).unwrap();
            let universe = g0.num_vertices() as VertexId + 6;
            exec.take_metrics();
            let mut generation = 0u64;
            for round in 0..ROUNDS {
                let ctx = format!("{ctx_base} round {round}");
                let updates = random_updates(&mut rng, BATCH, universe);
                let applied = updates.iter().filter(|u| mirror.apply(u)).count();
                let resp = service.try_apply_batch(&updates, &exec).unwrap();
                let m = exec.take_metrics();
                if applied == 0 {
                    // All-skipped batches take the fast path: nothing
                    // published, nothing rebuilt, no swap.
                    assert_eq!(resp.generation, generation, "{ctx}: no-op generation");
                    assert!(m.get_counter("serve.swaps").is_none(), "{ctx}: no-op swap");
                    assert_eq!(
                        m.get_counter("serve.noop_batches").unwrap().value,
                        1,
                        "{ctx}"
                    );
                    continue;
                }
                generation += 1;
                assert_eq!(resp.generation, generation, "{ctx}: epoch");
                // Naive rebuild of the same logical state, from scratch.
                let naive = HcdService::try_new(&mirror.graph(), &exec).unwrap();
                let inc = service.snapshot();
                let scratch = naive.snapshot();
                assert_eq!(
                    inc.graph.edges().collect::<BTreeSet<_>>(),
                    scratch.graph.edges().collect::<BTreeSet<_>>(),
                    "{ctx}: edges"
                );
                assert_eq!(
                    inc.cores.as_slice(),
                    scratch.cores.as_slice(),
                    "{ctx}: coreness"
                );
                assert_eq!(
                    inc.hcd.canonicalize(),
                    scratch.hcd.canonicalize(),
                    "{ctx}: hierarchy"
                );
                // The engine reported the region it examined.
                let affected = m.get_counter("dynamic.affected_vertices").unwrap().value;
                assert!(affected >= 1, "{ctx}: affected {affected}");
                assert!(
                    (affected as usize) <= inc.graph.num_vertices(),
                    "{ctx}: affected {affected} beyond the graph"
                );
            }
        }
    }
}

/// A small, local update on a larger graph must touch a region that is
/// a tiny fraction of it — the point of incremental maintenance.
#[test]
fn small_batches_touch_a_small_region() {
    let g0 = barabasi_albert(400, 3, 0x77);
    let exec = Executor::sequential().with_metrics();
    let service = HcdService::try_new(&g0, &exec).unwrap();
    exec.take_metrics();
    // A pendant pair appended to the graph: the affected region is the
    // two new vertices, far below n = 400.
    let n = g0.num_vertices() as VertexId;
    service
        .try_apply_batch(&[EdgeUpdate::Insert(n, n + 1)], &exec)
        .unwrap();
    let m = exec.take_metrics();
    let affected = m.get_counter("dynamic.affected_vertices").unwrap().value;
    assert!(affected <= 8, "pendant insert touched {affected} vertices");
    service.snapshot().validate().unwrap();
}

/// The changed-region report is exact: recomputing coreness from scratch
/// before and after each batch gives the same changed-vertex set.
#[test]
fn batch_reports_exact_changed_regions_under_service() {
    let exec = Executor::sequential();
    let g0 = gnp(40, 0.09, 0xC0DE);
    let mut mirror = Mirror::of(&g0);
    let service = HcdService::try_new(&g0, &exec).unwrap();
    let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(7);
    for round in 0..6 {
        let before = core_decomposition(&mirror.graph());
        let updates = random_updates(&mut rng, 10, g0.num_vertices() as VertexId + 4);
        for u in &updates {
            mirror.apply(u);
        }
        let resp = service.try_apply_batch(&updates, &exec).unwrap();
        let after = core_decomposition(&mirror.graph());
        let expected: Vec<VertexId> = (0..after.as_slice().len() as VertexId)
            .filter(|&v| {
                let old = before.as_slice().get(v as usize).copied().unwrap_or(0);
                old != after.coreness(v)
            })
            .collect();
        assert_eq!(resp.value.changed, expected, "round {round}");
        assert_eq!(
            resp.value.coreness_unchanged(),
            expected.is_empty(),
            "round {round}"
        );
    }
}
