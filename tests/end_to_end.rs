//! Cross-crate integration: the full pipeline (generate → decompose →
//! construct HCD → search) on every registry stand-in at tiny scale.

use hcd::prelude::*;

fn pipeline(g: &CsrGraph) {
    // Three core-decomposition algorithms agree.
    let exec = Executor::rayon(4);
    let bz = core_decomposition(g);
    let pkc = pkc_core_decomposition(g, &exec);
    assert_eq!(bz, pkc);

    // PHCD in all modes equals LCPS equals the brute-force oracle.
    let truth = naive_hcd(g, &bz).canonicalize();
    for e in [
        Executor::sequential(),
        Executor::rayon(4),
        Executor::simulated(3),
        Executor::assist(4),
    ] {
        assert_eq!(phcd(g, &bz, &e).canonicalize(), truth);
    }
    assert_eq!(lcps(g, &bz).canonicalize(), truth);

    // PBKS equals BKS on every metric; full index validation.
    let hcd = phcd(g, &bz, &exec);
    hcd.validate(g, &bz).expect("index validation");
    let ctx = SearchContext::with_executor(g, &bz, &hcd, &exec);
    for metric in Metric::ALL {
        let a = pbks(&ctx, &metric, &exec);
        let b = bks(&ctx, &metric);
        assert_eq!(a, b, "{}", metric.name());
    }
}

#[test]
fn every_dataset_standin_survives_the_pipeline() {
    for d in DATASETS.iter() {
        // Tiny scale keeps the brute-force oracle tractable.
        let g = d.generate(Scale::Tiny);
        pipeline(&g);
    }
}

#[test]
fn pipeline_handles_structured_generators() {
    pipeline(&core_tree(3, 3, 10, 17));
    pipeline(&watts_strogatz(300, 6, 0.1, 3));
    pipeline(&barabasi_albert(250, 3, 5));
    pipeline(&gnp(200, 0.05, 9));
}

#[test]
fn densest_subgraph_guarantee_end_to_end() {
    // PBKS-D is a 0.5-approximation of the exact (flow-based) optimum.
    for seed in [1u64, 2, 3] {
        let g = gnp(120, 0.08, seed);
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let Some(best) = pbks_d(&ctx, &Executor::sequential()) else {
            continue;
        };
        let (_, exact_density) = densest_subgraph(&g).expect("non-empty");
        // best.score is an average degree = 2 * density of that subgraph.
        assert!(
            best.score >= exact_density - 1e-9,
            "seed {seed}: 0.5-approx violated: {} < {}",
            best.score,
            exact_density
        );
    }
}

#[test]
fn local_queries_agree_with_reconstruction() {
    let g = Dataset::by_abbrev("SK").unwrap().generate(Scale::Tiny);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    for v in g.vertices().step_by(37) {
        let k = cores.coreness(v);
        if k == 0 {
            continue;
        }
        let mut got = core_containing(&hcd, &cores, v, k).unwrap();
        got.sort_unstable();
        let mut want = hcd::graph::traversal::bfs_filtered(&g, v, |u| cores.coreness(u) >= k);
        want.sort_unstable();
        assert_eq!(got, want, "v={v}");
    }
}

#[test]
fn best_k_scores_match_manual_suffix_computation() {
    let g = Dataset::by_abbrev("O").unwrap().generate(Scale::Tiny);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let exec = Executor::rayon(2);
    let levels = core_set_scores(&ctx, &Metric::AverageDegree, &exec);
    // K_0 is the whole graph.
    assert_eq!(levels[0].primaries.n, g.num_vertices() as u64);
    // Scores of K_k must be derived from monotonically shrinking sets.
    for w in levels.windows(2) {
        assert!(w[1].primaries.n <= w[0].primaries.n);
        assert!(w[1].primaries.m2 <= w[0].primaries.m2);
    }
}
