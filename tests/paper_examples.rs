//! The paper's worked examples (Examples 1–6, Figures 1–3), encoded as
//! tests against a reconstruction of the Figure 1 graph: a 4-core `S4`
//! (vertices 0–5), two 3-cores `S3.1 = S4 ∪ {6,7,8}` and
//! `S3.2 = {9..=12}`, all inside the 2-core `S2` (the whole graph, whose
//! 2-shell is `{13,14,15}`).

use hcd::prelude::*;

fn figure1() -> CsrGraph {
    GraphBuilder::new()
        .edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (5, 0),
            (5, 1),
            (5, 2),
            (5, 3),
        ])
        .edges([(6, 7), (7, 8), (8, 6), (6, 0), (7, 1), (8, 2)])
        .edges([(9, 10), (9, 11), (9, 12), (10, 11), (10, 12), (11, 12)])
        .edges([(13, 9), (13, 5), (14, 10), (14, 6), (15, 13), (15, 14)])
        .build()
}

/// Example 1 + Figure 1(c): the HCD distinguishes same-coreness vertices
/// in different k-cores and records all containments.
#[test]
fn example_1_hierarchy_structure() {
    let g = figure1();
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());

    // Four tree nodes: T2, T3.1, T3.2, T4.
    assert_eq!(hcd.num_nodes(), 4);

    // (i) vertices with the same coreness in different k-cores are in
    // different tree nodes: 6 (in S3.1) vs 9 (in S3.2).
    assert_eq!(cores.coreness(6), 3);
    assert_eq!(cores.coreness(9), 3);
    assert_ne!(hcd.tid(6), hcd.tid(9));

    // (ii) containment: S3.1 = G[S4 + T3.1].
    let t4 = hcd.tid(0); // a coreness-4 vertex names T4
    let t31 = hcd.tid(6);
    assert_eq!(hcd.node(t4).parent, t31);
    let mut s31 = hcd.subtree_vertices(t31);
    s31.sort_unstable();
    assert_eq!(s31, (0..9).collect::<Vec<_>>());

    // S2 = G[S3.1 + S3.2 + T2]: the root subtree is everything.
    let t2 = hcd.tid(13);
    assert_eq!(hcd.node(t31).parent, t2);
    assert_eq!(hcd.node(hcd.tid(9)).parent, t2);
    assert_eq!(hcd.subtree_vertices(t2).len(), g.num_vertices());
}

/// Example 2: "the 4-core S4 has an average degree of 4, while the
/// average degree of the 3-core S3.1 is about 4.44 … we can return S3.1".
/// (Our S4 is a 6-vertex near-clique, davg 4.67, so here S4 itself wins —
/// the *mechanism* under test is that PBKS picks the max over all levels
/// and agrees with a direct computation.)
#[test]
fn example_2_best_average_degree() {
    let g = figure1();
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let (scores, primaries) = pbks_scores(&ctx, &Metric::AverageDegree, &Executor::sequential());

    // S3.1 (9 vertices, 20 edges) has average degree 40/9 ≈ 4.44.
    let t31 = hcd.tid(6);
    assert_eq!(primaries[t31 as usize].n, 9);
    assert!((scores[t31 as usize] - 40.0 / 9.0).abs() < 1e-12);

    // PBKS returns the global maximum.
    let best = pbks(&ctx, &Metric::AverageDegree, &Executor::sequential()).unwrap();
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(best.score, max);
}

/// Example 3 / Figure 2: the index fields V(Ti), P(Ti), C(Ti), tid(v).
#[test]
fn example_3_index_fields() {
    let g = figure1();
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());

    let t2 = hcd.tid(13);
    let t31 = hcd.tid(6);
    let t32 = hcd.tid(9);
    let t4 = hcd.tid(0);

    // V(T2) is the (disconnected) 2-shell; every vertex appears once.
    assert_eq!(hcd.node(t2).vertices, vec![13, 14, 15]);
    let total: usize = hcd.nodes().iter().map(|n| n.vertices.len()).sum();
    assert_eq!(total, g.num_vertices());

    // P / C mirror Figure 2's table.
    assert!(hcd.node(t2).is_root());
    let mut kids = hcd.node(t2).children.clone();
    kids.sort_unstable();
    let mut expect = vec![t31, t32];
    expect.sort_unstable();
    assert_eq!(kids, expect);
    assert_eq!(hcd.node(t31).children, vec![t4]);
    assert!(hcd.node(t32).children.is_empty());
    assert!(hcd.node(t4).children.is_empty());
}

/// Examples 4–5 / Figure 3: pivots — when k goes 4 → 3, the pivot of
/// S4's component becomes T3.1's pivot (the minimum-rank vertex), which
/// both groups the 3-shell into T3.1/T3.2 and identifies P(T4) = T3.1.
/// We verify the observable consequences on the final index, plus the
/// rank order itself.
#[test]
fn examples_4_5_pivot_semantics() {
    let g = figure1();
    let cores = core_decomposition(&g);
    let ranks = VertexRanks::compute(&cores, &Executor::sequential());

    // Vertex rank: coreness first, id second (Definition 4).
    assert!(ranks.rank(13) < ranks.rank(6)); // 2-shell before 3-shell
    assert!(ranks.rank(6) < ranks.rank(9)); // same shell: by id
    assert!(ranks.rank(9) < ranks.rank(0)); // 3-shell before 4-shell

    // The pivot of S3.1 (min rank over {0..8}) is vertex 6; of S3.2 is 9.
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let t31 = hcd.tid(6);
    let min_rank_vertex = hcd
        .subtree_vertices(t31)
        .into_iter()
        .min_by_key(|&v| ranks.rank(v))
        .unwrap();
    assert_eq!(min_rank_vertex, 6);
    assert_eq!(hcd.node(hcd.tid(0)).parent, t31); // P(T4) = T3.1
}

/// Example 6: incremental counting — n(S4) = 6, ∆n(T3.1) = 3, so
/// n(S3.1) = 9, by bottom-up accumulation.
#[test]
fn example_6_bottom_up_accumulation() {
    let g = figure1();
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let (_, primaries) = pbks_scores(&ctx, &Metric::AverageDegree, &Executor::sequential());

    let t4 = hcd.tid(0);
    let t31 = hcd.tid(6);
    assert_eq!(primaries[t4 as usize].n, 6); // n(S4)
    assert_eq!(hcd.node(t31).vertices.len(), 3); // ∆n(T3.1)
    assert_eq!(primaries[t31 as usize].n, 9); // n(S3.1) = 6 + 3
}
