//! Shared helpers for the integration-test suite: a dependency-free
//! JSON reader (the workspace is serde-free by design) used to validate
//! the `hcd-metrics-v1` and `hcd-trace-v1` documents the CLI emits.
//!
//! Unlike the emitters, the reader handles the full string-escape
//! repertoire (`\"`, `\\`, `\/`, `\n`, `\r`, `\t`, `\b`, `\f`,
//! `\uXXXX`), because region and counter names are escaped on output
//! and a validator that chokes on its own schema's escapes would make
//! escaping untestable.

#![allow(dead_code)] // each integration test links its own copy

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    // Caller consumed the opening quote.
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        *pos += 4;
                        // Lone surrogates map to U+FFFD, like the
                        // library parser (no surrogate pairs are ever
                        // emitted for the ASCII-control range we escape).
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("non-string key {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                out.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(out));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            parse_string(b, pos).map(Json::Str)
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {s:?}: {e}"))
        }
    }
}
