//! Work-assisting executor integration tests: algorithm counters must
//! stay deterministic while assisting threads migrate chunks between
//! workers, and the `(region, chunk)` fault matrix must behave exactly
//! as in the statically scheduled modes — identical chunk boundaries
//! are the contract that makes both properties hold.

use std::time::Duration;

use hcd::prelude::*;

/// Runs `f` with metrics enabled on `exec` and returns the snapshot.
fn metered<F: FnOnce(&Executor)>(exec: &Executor, f: F) -> RunMetrics {
    exec.set_metrics_enabled(true);
    f(exec);
    let m = exec.take_metrics();
    exec.set_metrics_enabled(false);
    m
}

fn counter(m: &RunMetrics, name: &str) -> u64 {
    m.get_counter(name).map_or(0, |c| c.value)
}

/// Counters that reflect algorithmic structure, not scheduling: the
/// assist executor claims the *same chunk table* through an atomic
/// cursor, so whichever thread runs a chunk, the per-chunk work — and
/// with it every one of these counters — is fixed by the input graph.
const DETERMINISTIC: [&str; 8] = [
    "pkc.levels",
    "pkc.waves",
    "pkc.frontier",
    "pkc.bucket_pushes",
    "pkc.bucket_skips",
    "phcd.union_phases",
    "phcd.uf.unions",
    "phcd.uf.batch_staged",
];

/// Chunk positions exercised by the fault matrix: first, middle, last.
fn chunk_positions(exec: &Executor) -> Vec<usize> {
    let p = exec.num_workers();
    let mut pos = vec![0, p / 2, p - 1];
    pos.dedup();
    pos
}

/// `phcd.uf.*` and `pkc.waves` (and the rest of the structural set)
/// agree with the sequential reference on every assist run, across
/// repeated runs with assisting threads live.
#[test]
fn assist_counters_are_deterministic_across_runs() {
    let g = rmat(10, 10, None, 55);
    let cores = core_decomposition(&g);
    let reference = metered(&Executor::sequential(), |e| {
        pkc_core_decomposition(&g, e);
        phcd(&g, &cores, e);
    });
    let exec = Executor::assist(4);
    for run in 0..3 {
        let m = metered(&exec, |e| {
            pkc_core_decomposition(&g, e);
            phcd(&g, &cores, e);
        });
        for name in DETERMINISTIC {
            assert_eq!(
                counter(&m, name),
                counter(&reference, name),
                "{name} diverged on assist run {run}"
            );
        }
        // Contention-dependent counters obey structural bounds.
        let unions = counter(&m, "phcd.uf.unions");
        let finds = counter(&m, "phcd.uf.finds");
        assert!(finds >= 2 * unions, "finds {finds} < 2 * unions {unions}");
        let staged = counter(&m, "phcd.uf.batch_staged");
        let flushed = counter(&m, "phcd.uf.batch_flushed");
        assert!(
            unions <= flushed && flushed <= staged,
            "unions {unions} <= flushed {flushed} <= staged {staged} violated"
        );
        // The assist-specific counters appear only when nonzero (zero
        // deltas are elided, e.g. when the owner claimed every chunk
        // before a worker woke); when present they are monotone sums.
        for name in ["par.assist.steals", "par.assist.claim_cas_retries"] {
            if let Some(c) = m.get_counter(name) {
                assert_eq!(c.kind, "sum", "{name}");
                assert!(c.value > 0, "{name} recorded but zero");
            }
        }
    }
}

/// Batch coalescing is keyed by chunk index, not OS thread, so even the
/// flush count — contention-*shaped* in general — matches the simulated
/// mode with the same worker count, because both walk the same chunk
/// table.
#[test]
fn assist_matches_simulated_mode_counter_for_counter() {
    let g = rmat(10, 10, None, 56);
    let cores = core_decomposition(&g);
    let sim = metered(&Executor::simulated(4), |e| {
        pkc_core_decomposition(&g, e);
        phcd(&g, &cores, e);
    });
    let m = metered(&Executor::assist(4), |e| {
        pkc_core_decomposition(&g, e);
        phcd(&g, &cores, e);
    });
    for name in DETERMINISTIC {
        assert_eq!(counter(&m, name), counter(&sim, name), "{name} diverged");
    }
}

/// Panic injected at the first/middle/last chunk of the first region:
/// first-failure-wins containment, the worker id in the error names the
/// faulted *chunk*, and the same executor reruns cleanly afterwards —
/// with assisting threads concurrently claiming the other chunks.
#[test]
fn assist_panic_matrix_first_middle_last() {
    let g = rmat(10, 8, None, 77);
    let cores = core_decomposition(&g);
    let reference = phcd(&g, &cores, &Executor::sequential()).canonicalize();
    let exec = Executor::assist(4);
    for chunk in chunk_positions(&exec) {
        exec.set_fault_plan(FaultPlan::new().inject(0, chunk, Fault::Panic));
        let err =
            try_phcd(&g, &cores, &exec).expect_err(&format!("panic in chunk {chunk} must surface"));
        match err {
            ParError::Panicked { worker, payload } => {
                assert_eq!(worker, chunk, "fault site keyed by chunk, not thread");
                assert!(payload.contains("injected fault"), "{payload}");
            }
            other => panic!("expected Panicked, got {other}"),
        }
        exec.clear_fault_plan();
        let h = try_phcd(&g, &cores, &exec)
            .unwrap_or_else(|e| panic!("clean rerun after chunk {chunk} failed: {e}"));
        assert_eq!(h.canonicalize(), reference, "chunk {chunk}");
    }
}

/// Cancellation tripped at the first/middle/last chunk aborts with the
/// typed error at a chunk boundary and leaves the pool reusable.
#[test]
fn assist_cancel_matrix_first_middle_last() {
    let g = rmat(10, 8, None, 78);
    let cores = core_decomposition(&g);
    let reference = phcd(&g, &cores, &Executor::sequential()).canonicalize();
    let exec = Executor::assist(4);
    for chunk in chunk_positions(&exec) {
        exec.set_fault_plan(FaultPlan::new().inject(0, chunk, Fault::Cancel));
        let err = try_phcd(&g, &cores, &exec)
            .expect_err(&format!("cancel in chunk {chunk} must surface"));
        assert!(matches!(err, ParError::Cancelled), "chunk {chunk}: {err}");
        exec.clear_fault_plan();
        let h = try_phcd(&g, &cores, &exec)
            .unwrap_or_else(|e| panic!("clean rerun after chunk {chunk} failed: {e}"));
        assert_eq!(h.canonicalize(), reference, "chunk {chunk}");
    }
}

/// An expired deadline is observed at the next chunk boundary in assist
/// mode (the claim loop polls before running each chunk); delays on
/// straggler chunks let assisting threads drain the rest first, which
/// must not change the outcome.
#[test]
fn assist_deadline_and_delay_behave_like_static_modes() {
    let g = rmat(10, 8, None, 79);
    let cores = core_decomposition(&g);
    let exec = Executor::assist(4);
    exec.set_deadline(Deadline::from_now(Duration::ZERO));
    let err = try_phcd(&g, &cores, &exec).expect_err("expired deadline must abort");
    assert!(matches!(err, ParError::DeadlineExceeded), "{err}");
    exec.clear_deadline();

    // A delayed first chunk forces the owner to straggle while workers
    // assist with the rest; the result must still be byte-identical.
    let reference = phcd(&g, &cores, &Executor::sequential()).canonicalize();
    exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Delay(2_000)));
    let h = try_phcd(&g, &cores, &exec).expect("delay is not a failure");
    assert_eq!(h.canonicalize(), reference);
    exec.clear_fault_plan();
}
