//! Integration tests for the SVI/SVII extensions: truss hierarchy,
//! dynamic maintenance, influential communities, and k-ECC.

use hcd::prelude::*;

#[test]
fn truss_hierarchy_on_dataset_standins() {
    for abbrev in ["H", "SK"] {
        let g = Dataset::by_abbrev(abbrev).unwrap().generate(Scale::Tiny);
        let (idx, truss) = truss_decomposition(&g);
        let exec = Executor::rayon(4);
        let htd = phtd(&g, &idx, &truss, &exec);
        // Edges partition into nodes; trussness consistent.
        let total: usize = htd.nodes().iter().map(|n| n.edges.len()).sum();
        assert_eq!(total, idx.len(), "{abbrev}");
        for node in htd.nodes() {
            for &e in &node.edges {
                assert_eq!(truss.trussness(e), node.k);
            }
        }
        // Matches the oracle.
        assert_eq!(
            htd.canonicalize(),
            naive_htd(&g, &idx, &truss).canonicalize(),
            "{abbrev}"
        );
    }
}

#[test]
fn coreness_and_trussness_relate() {
    // Standard fact: t(e) - 1 <= min(c(u), c(v)) for every edge (u,v).
    let g = Dataset::by_abbrev("O").unwrap().generate(Scale::Tiny);
    let cores = core_decomposition(&g);
    let (idx, truss) = truss_decomposition(&g);
    for e in 0..idx.len() as u32 {
        let (u, v) = idx.endpoints(e);
        assert!(
            truss.trussness(e) - 1 <= cores.coreness(u).min(cores.coreness(v)),
            "edge ({u},{v})"
        );
    }
}

#[test]
fn dynamic_maintenance_on_dataset_standin() {
    use rand::{Rng, SeedableRng};
    let g = Dataset::by_abbrev("AS").unwrap().generate(Scale::Tiny);
    let mut dc = DynamicCore::from_csr(&g);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
    let n = g.num_vertices() as u32;
    let mut known: Vec<(u32, u32)> = g.edges().collect();
    for step in 0..300 {
        if rng.gen_bool(0.5) {
            let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if dc.insert_edge(u, v) {
                known.push((u, v));
            }
        } else {
            let i = rng.gen_range(0..known.len());
            let (u, v) = known.swap_remove(i);
            dc.remove_edge(u, v);
        }
        if step % 50 == 49 {
            let fresh = core_decomposition(&dc.graph().to_csr());
            assert_eq!(dc.coreness_slice(), fresh.as_slice(), "step {step}");
        }
    }
    // The refreshed hierarchy is the true hierarchy.
    let exec = Executor::sequential();
    let cores = dc.decomposition();
    let (snapshot, hcd) = dc.hcd(&exec);
    hcd.validate(snapshot, &cores).unwrap();
}

#[test]
fn influence_index_on_dataset_standin() {
    let g = Dataset::by_abbrev("LJ").unwrap().generate(Scale::Tiny);
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    let ctx = SearchContext::new(&g, &cores, &hcd);
    let weights: Vec<f64> = g.vertices().map(|v| g.degree(v) as f64).collect();
    let idx = InfluenceIndex::build(&ctx, &weights, &Executor::rayon(3));
    let top = idx.top_r(&hcd, 2, 5);
    for c in &top {
        // Influence really is the min weight of the community.
        let members = hcd.subtree_vertices(c.node);
        let want = members
            .iter()
            .map(|&v| weights[v as usize])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(c.influence, want);
        assert!(c.k >= 2);
    }
}

#[test]
fn kecc_nests_within_cores() {
    // Edge connectivity <= min degree, so every k-ECC lies inside the
    // k-core set.
    let g = core_tree(2, 3, 10, 8);
    let cores = core_decomposition(&g);
    for k in 1..4u32 {
        for part in k_edge_connected_components(&g, k) {
            for v in part {
                assert!(cores.coreness(v) >= k, "v={v} k={k}");
            }
        }
    }
}
