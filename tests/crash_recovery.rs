//! Kill-and-recover differential harness for the durability layer.
//!
//! For every [`CrashPoint`] × graph family (ER, BA, RMAT) × executor
//! mode, a durable [`HcdService`] is driven with deterministic update
//! batches until the scheduled crash fires, the "process" is dropped
//! mid-flight, and [`HcdService::recover`] rebuilds the directory. The
//! recovered snapshot must fingerprint bit-identically to the state at
//! the **last acknowledgement** — no acked batch lost, no unacked batch
//! resurrected — and the recovered service must keep serving and
//! accepting writes. Separate tests pin down the documented loss
//! windows of the relaxed fsync policies and survival of repeated
//! crash/recover cycles.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use hcd::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hcd-crash-{tag}-{}-{id}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn executors() -> Vec<Executor> {
    vec![
        Executor::sequential(),
        Executor::rayon(4),
        Executor::simulated(4),
        Executor::assist(4),
    ]
}

fn seed_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", gnp(48, 0.08, 0xE12)),
        ("ba", barabasi_albert(48, 3, 0xBA5)),
        ("rmat", rmat(5, 4, None, 0x12A7)),
    ]
}

fn random_updates(rng: &mut ChaCha8Rng, count: usize, universe: VertexId) -> Vec<EdgeUpdate> {
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0..universe);
            let v = rng.gen_range(0..universe);
            if rng.gen_bool(0.65) {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Remove(u, v)
            }
        })
        .collect()
}

/// The tentpole matrix: every crash point, every family, every executor
/// mode. The oracle is the live service itself at its last ack — the
/// durability contract is that recovery reproduces exactly that state.
#[test]
fn every_crash_point_recovers_to_the_last_acknowledged_state() {
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_every: 2,
    };
    for (family, g0) in seed_graphs() {
        for exec in executors() {
            for point in CrashPoint::ALL {
                let ctx = format!("{family}/{}/{}", exec.mode_name(), point.name());
                let dir = tempdir(point.name());
                let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(
                    0xC0A5 ^ g0.num_edges() as u64,
                );
                let universe = g0.num_vertices() as VertexId + 6;
                let svc = HcdService::try_new_durable(&g0, &dir, cfg, &exec).unwrap();

                // A couple of clean batches first, so the crash lands in
                // the middle of a real history (and past the first
                // post-seed checkpoint at seq 2).
                let mut acked_seq = 0u64;
                let mut acked_fp = svc.snapshot().fingerprint();
                for _ in 0..2 {
                    let updates = random_updates(&mut rng, 8, universe);
                    let resp = svc.try_apply_batch(&updates, &exec).unwrap();
                    acked_seq = resp.value.seq;
                    acked_fp = svc.snapshot().fingerprint();
                }

                // Schedule the kill and drive batches until it fires.
                // Wal* points fail the batch (nothing acked); Ckpt*
                // points fire after the ack, so the batch still counts.
                exec.set_fault_plan(FaultPlan::new().crash(point, 0));
                let mut crashed = false;
                for _ in 0..4 {
                    let updates = random_updates(&mut rng, 8, universe);
                    match svc.try_apply_batch(&updates, &exec) {
                        Ok(resp) => {
                            acked_seq = resp.value.seq;
                            acked_fp = svc.snapshot().fingerprint();
                            if exec.crashes_fired() > 0 {
                                crashed = true;
                                break;
                            }
                        }
                        Err(e) => {
                            assert!(e.is_simulated_crash(), "{ctx}: organic failure: {e}");
                            crashed = true;
                            break;
                        }
                    }
                }
                assert!(crashed, "{ctx}: scheduled crash never fired");
                exec.clear_fault_plan();
                drop(svc); // the kill

                let (rec, report) = HcdService::recover(&dir, cfg, &exec)
                    .unwrap_or_else(|e| panic!("{ctx}: recovery refused: {e}"));
                assert_eq!(report.final_seq, acked_seq, "{ctx}: replayed seq");
                assert_eq!(rec.generation(), acked_seq, "{ctx}: generation");
                assert_eq!(
                    rec.snapshot().fingerprint(),
                    acked_fp,
                    "{ctx}: recovered state diverged from the last ack"
                );
                rec.snapshot()
                    .validate()
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                // Only a mid-record kill leaves torn bytes on disk; every
                // other point dies at a frame boundary.
                assert_eq!(
                    report.tail_was_truncated(),
                    point == CrashPoint::WalMidRecord,
                    "{ctx}: tail {report:?}"
                );

                // The recovered service is a full service again: it
                // answers queries and acknowledges durable writes.
                let q = rec.try_query_batch(&[Query::InKCore(0, 1)], &exec).unwrap();
                assert_eq!(q.generation, acked_seq, "{ctx}");
                let resp = rec
                    .try_apply_batch(&random_updates(&mut rng, 4, universe), &exec)
                    .unwrap();
                assert_eq!(resp.generation, acked_seq + 1, "{ctx}: epochs continue");
                assert_eq!(resp.value.seq, acked_seq + 1, "{ctx}: seqs continue");

                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

/// `FsyncPolicy::Every(n)` trades durability for throughput with a
/// *bounded* loss window: a page-cache-losing crash forfeits at most
/// the unsynced suffix, and recovery lands exactly on the last synced
/// record — never on a torn or partial state.
#[test]
fn relaxed_fsync_loses_exactly_the_unsynced_window() {
    let exec = Executor::sequential();
    let g0 = gnp(40, 0.09, 0x57AC);
    let universe = g0.num_vertices() as VertexId + 4;
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Every(3),
        checkpoint_every: 0, // recovery must lean on the WAL alone
    };
    let dir = tempdir("every3");
    let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xD1CE);
    let svc = HcdService::try_new_durable(&g0, &dir, cfg, &exec).unwrap();
    // Fingerprint after every ack: fps[seq] is the oracle for a
    // recovery that lands on `seq`.
    let mut fps = vec![svc.snapshot().fingerprint()];
    for _ in 0..5 {
        let updates = random_updates(&mut rng, 6, universe);
        svc.try_apply_batch(&updates, &exec).unwrap();
        fps.push(svc.snapshot().fingerprint());
    }
    // Appends 1-3 were fsynced as a group; 4 and 5 live in the page
    // cache. The crash on append 6 loses the cache with the process.
    exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalPreFsync, 0));
    let err = svc
        .try_apply_batch(&random_updates(&mut rng, 6, universe), &exec)
        .unwrap_err();
    assert!(err.is_simulated_crash(), "{err}");
    exec.clear_fault_plan();
    drop(svc);

    let (rec, report) = HcdService::recover(&dir, cfg, &exec).unwrap();
    assert_eq!(report.final_seq, 3, "exactly the synced prefix survives");
    assert_eq!(report.replayed, 3);
    assert!(
        !report.tail_was_truncated(),
        "sync loss is not a torn write"
    );
    assert_eq!(rec.snapshot().fingerprint(), fps[3]);
    std::fs::remove_dir_all(&dir).ok();
}

/// `FsyncPolicy::Never` is only as durable as the checkpoint cadence:
/// page-cache loss rolls the log back to empty, and recovery lands on
/// the newest checkpoint.
#[test]
fn never_fsync_falls_back_to_the_newest_checkpoint() {
    let exec = Executor::sequential();
    let g0 = barabasi_albert(40, 3, 0xFADE);
    let universe = g0.num_vertices() as VertexId + 4;
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 2,
    };
    let dir = tempdir("never");
    let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xBEEF);
    let svc = HcdService::try_new_durable(&g0, &dir, cfg, &exec).unwrap();
    let mut fps = vec![svc.snapshot().fingerprint()];
    for _ in 0..5 {
        let updates = random_updates(&mut rng, 6, universe);
        svc.try_apply_batch(&updates, &exec).unwrap();
        fps.push(svc.snapshot().fingerprint());
    }
    exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalPreFsync, 0));
    svc.try_apply_batch(&random_updates(&mut rng, 6, universe), &exec)
        .unwrap_err();
    exec.clear_fault_plan();
    drop(svc);

    let (rec, report) = HcdService::recover(&dir, cfg, &exec).unwrap();
    // Checkpoints landed at seqs 2 and 4; the unsynced log evaporated.
    assert_eq!(report.checkpoint_seq, 4);
    assert_eq!(report.final_seq, 4);
    assert_eq!(report.replayed, 0, "nothing survived in the log");
    assert_eq!(rec.snapshot().fingerprint(), fps[4]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: checkpoint cadence after a recovery whose restored
/// checkpoint is *newer* than the replayed WAL tail (the Never-fsync
/// shape: the unsynced log evaporated, so replay adds nothing on top of
/// the checkpoint). The due-checkpoint comparison in `try_apply_batch`
/// is `report.seq - last_checkpoint_seq`; it must use saturating
/// arithmetic so a checkpoint sequence running ahead of the live
/// sequence can never underflow into a panic (debug) or a
/// wraparound-always-due (release), and the cadence must resume
/// relative to the restored checkpoint.
#[test]
fn recovery_with_checkpoint_ahead_of_the_wal_keeps_checkpoint_cadence() {
    let exec = Executor::sequential();
    let g0 = gnp(36, 0.09, 0xCAFE);
    let universe = g0.num_vertices() as VertexId + 4;
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 2,
    };
    let dir = tempdir("ckpt-ahead");
    let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xAB1E);
    let svc = HcdService::try_new_durable(&g0, &dir, cfg, &exec).unwrap();
    for _ in 0..4 {
        svc.try_apply_batch(&random_updates(&mut rng, 6, universe), &exec)
            .unwrap();
    }
    // Page-cache loss: checkpoints at seqs 2 and 4 survive, the log
    // does not — recovery restores checkpoint 4 and replays nothing.
    exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalPreFsync, 0));
    svc.try_apply_batch(&random_updates(&mut rng, 6, universe), &exec)
        .unwrap_err();
    exec.clear_fault_plan();
    drop(svc);

    let (rec, report) = HcdService::recover(&dir, cfg, &exec).unwrap();
    assert_eq!(report.checkpoint_seq, 4);
    assert_eq!(report.replayed, 0, "the WAL tail is behind the checkpoint");

    // Writes resume at seq 5 with the checkpoint marker at 4: the next
    // checkpoint is due at seq 6, not before (over-eager) and not never
    // (underflow). Two batches must complete without a panic and leave
    // exactly the seq-6 checkpoint behind.
    for expect_seq in 5..=6u64 {
        let resp = rec
            .try_apply_batch(&random_updates(&mut rng, 6, universe), &exec)
            .unwrap();
        assert_eq!(resp.value.seq, expect_seq);
    }
    assert!(
        !dir.join(hcd::serve::checkpoint::checkpoint_file_name(5))
            .exists(),
        "checkpoint written a batch early"
    );
    assert!(
        dir.join(hcd::serve::checkpoint::checkpoint_file_name(6))
            .exists(),
        "checkpoint cadence did not resume"
    );
    rec.snapshot().validate().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A service can crash, recover, serve, and crash again — repeatedly.
/// Each recovery truncates the previous torn tail for real, resumes the
/// epoch numbering, and reproduces the acked state of its own run.
#[test]
fn repeated_crash_recover_cycles_accumulate_state_correctly() {
    let exec = Executor::sequential();
    let g0 = gnp(36, 0.1, 0xCC1E);
    let universe = g0.num_vertices() as VertexId + 4;
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_every: 3,
    };
    let dir = tempdir("cycles");
    let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0x9999);
    let mut svc = HcdService::try_new_durable(&g0, &dir, cfg, &exec).unwrap();
    let mut acked_seq = 0u64;
    let mut acked_fp = svc.snapshot().fingerprint();

    for cycle in 0..3 {
        // A few acknowledged batches...
        for _ in 0..3 {
            let updates = random_updates(&mut rng, 6, universe);
            let resp = svc.try_apply_batch(&updates, &exec).unwrap();
            acked_seq = resp.value.seq;
            acked_fp = svc.snapshot().fingerprint();
        }
        // ...then a kill in the middle of the next record.
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalMidRecord, 0));
        let err = svc
            .try_apply_batch(&random_updates(&mut rng, 6, universe), &exec)
            .unwrap_err();
        assert!(err.is_simulated_crash(), "cycle {cycle}: {err}");
        exec.clear_fault_plan();
        drop(svc);

        let (rec, report) =
            HcdService::recover(&dir, cfg, &exec).unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
        assert!(report.tail_was_truncated(), "cycle {cycle}");
        assert_eq!(report.final_seq, acked_seq, "cycle {cycle}");
        assert_eq!(rec.snapshot().fingerprint(), acked_fp, "cycle {cycle}");
        svc = rec;
    }
    assert_eq!(acked_seq, 9, "three cycles of three acked batches");
    std::fs::remove_dir_all(&dir).ok();
}

/// Doctored directories: recovery trusts checksums, not file names.
/// A damaged newest checkpoint falls back to an older one plus a longer
/// replay; a flipped byte mid-log is refused outright (serving wrong
/// answers is worse than refusing); both leave the acked state
/// reproducible or the failure explicit — never silently wrong.
#[test]
fn doctored_directories_fall_back_or_refuse_explicitly() {
    let exec = Executor::sequential();
    let g0 = gnp(36, 0.1, 0xD0C7);
    let universe = g0.num_vertices() as VertexId + 4;
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_every: 2,
    };

    // Damaged newest checkpoint: older checkpoint + replay reproduce
    // the exact acked state anyway.
    let dir = tempdir("doctor-ckpt");
    let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0x7777);
    let svc = HcdService::try_new_durable(&g0, &dir, cfg, &exec).unwrap();
    for _ in 0..4 {
        svc.try_apply_batch(&random_updates(&mut rng, 6, universe), &exec)
            .unwrap();
    }
    let acked_fp = svc.snapshot().fingerprint();
    drop(svc);
    let newest = hcd::serve::checkpoint::checkpoint_file_name(4);
    let path = dir.join(&newest);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();
    let (rec, report) = HcdService::recover(&dir, cfg, &exec).unwrap();
    assert_eq!(report.checkpoints_skipped, 1);
    assert_eq!(report.checkpoint_seq, 2, "fell back one checkpoint");
    assert_eq!(report.replayed, 2, "longer replay closes the gap");
    assert_eq!(rec.snapshot().fingerprint(), acked_fp);
    drop(rec);
    std::fs::remove_dir_all(&dir).ok();

    // Flipped byte mid-log: a hard, explicit refusal.
    let dir = tempdir("doctor-wal");
    let svc = HcdService::try_new_durable(&g0, &dir, cfg, &exec).unwrap();
    for _ in 0..3 {
        svc.try_apply_batch(&random_updates(&mut rng, 6, universe), &exec)
            .unwrap();
    }
    drop(svc);
    let wal_path = dir.join(WAL_FILE_NAME);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[9] ^= 0x04; // payload byte of the first record
    std::fs::write(&wal_path, &bytes).unwrap();
    let err = HcdService::recover(&dir, cfg, &exec).unwrap_err();
    assert!(
        matches!(err, RecoverError::CorruptWal { offset: 0, .. }),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
