//! Validates the `--trace` Chrome trace-event JSON emitted by `hcd-cli`
//! against the documented `hcd-trace-v1` schema, end to end: generate a
//! graph, run a command with `--trace`, parse the file, and check the
//! structural invariants Perfetto / chrome://tracing rely on — named
//! per-thread tracks, balanced B/E span pairs, and counter samples.

use std::path::PathBuf;
use std::process::Command;

mod common;
use common::Json;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcd-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcd_trace_test_{}_{name}", std::process::id()));
    p
}

fn gen_graph(name: &str, model: &str) -> PathBuf {
    let graph = tmp(name);
    let out = cli()
        .args(["gen", model, graph.to_str().unwrap(), "--seed", "7"])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    graph
}

/// Asserts the full `hcd-trace-v1` contract on a parsed document.
fn validate_trace(doc: &Json) {
    assert_eq!(
        doc.get("schema").and_then(Json::str),
        Some("hcd-trace-v1"),
        "schema tag"
    );
    let dropped = doc
        .get("droppedEvents")
        .and_then(Json::num)
        .expect("droppedEvents");
    assert!(dropped >= 0.0);
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::str),
        Some("ms"),
        "displayTimeUnit"
    );

    let events = doc
        .get("traceEvents")
        .and_then(Json::arr)
        .expect("traceEvents[]");
    assert!(!events.is_empty(), "no events recorded");

    // Track metadata: a process name plus one thread_name entry per tid
    // in use; tid 0 is the region track, tid w+1 is worker w.
    let mut named_tids = Vec::new();
    let mut used_tids = Vec::new();
    // Per-tid B/E nesting depth for balance checking.
    let mut depth: std::collections::BTreeMap<i64, i64> = Default::default();
    let mut counter_events = 0usize;
    let mut instants = 0usize;

    for e in events {
        let ph = e.get("ph").and_then(Json::str).expect("ph");
        // Counter events are process-scoped and carry no tid.
        let tid = e.get("tid").and_then(Json::num).unwrap_or(-1.0) as i64;
        assert_eq!(e.get("pid").and_then(Json::num), Some(1.0), "pid");
        assert!(tid >= 0 || ph == "C", "{ph} event without tid");
        match ph {
            "M" => {
                let name = e.get("name").and_then(Json::str).unwrap();
                if name == "thread_name" {
                    let label = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::str)
                        .expect("thread_name label");
                    if tid == 0 {
                        assert_eq!(label, "regions");
                    } else {
                        assert_eq!(label, format!("worker-{}", tid - 1));
                    }
                    named_tids.push(tid);
                }
            }
            "B" => {
                assert!(e.get("ts").and_then(Json::num).is_some(), "B needs ts");
                *depth.entry(tid).or_insert(0) += 1;
                used_tids.push(tid);
            }
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without B on tid {tid}");
            }
            "i" => {
                let s = e.get("s").and_then(Json::str).expect("instant scope");
                assert!(s == "p" || s == "t", "instant scope {s:?}");
                instants += 1;
            }
            "C" => {
                let args = e.get("args").expect("C needs args");
                let (_, v) = match args {
                    Json::Obj(m) => m.iter().next().expect("C args value"),
                    _ => panic!("C args not an object"),
                };
                assert!(v.num().expect("counter value") >= 0.0);
                counter_events += 1;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // Every span opened was closed (the CLI takes the trace at
    // quiescence), every tid that carries events has a named track, and
    // at least one counter track exists (pkc.frontier samples).
    for (tid, d) in &depth {
        assert_eq!(*d, 0, "unbalanced spans on tid {tid}");
    }
    for tid in used_tids {
        assert!(named_tids.contains(&tid), "tid {tid} has no thread_name");
    }
    assert!(named_tids.contains(&0), "region track missing");
    assert!(
        named_tids.iter().any(|&t| t > 0),
        "no worker tracks: {named_tids:?}"
    );
    assert!(counter_events > 0, "no counter samples");
    let _ = instants; // checkpoint instants are stride-dependent
}

#[test]
fn build_trace_is_valid_chrome_json_with_worker_and_counter_tracks() {
    let graph = gen_graph("build.txt", "rmat");
    let index = tmp("build.hcd");
    let trace = tmp("build_trace.json");
    let out = cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            index.to_str().unwrap(),
            "-p",
            "4",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let doc = Json::parse(&text).expect("valid JSON");
    validate_trace(&doc);

    // Region spans for the whole pipeline appear on the region track.
    let events = doc.get("traceEvents").and_then(Json::arr).unwrap();
    let region_names: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::str) == Some("B")
                && e.get("tid").and_then(Json::num) == Some(0.0)
        })
        .map(|e| e.get("name").and_then(Json::str).unwrap())
        .collect();
    for region in ["pkc.scan", "pkc.wave", "phcd.union"] {
        assert!(
            region_names.contains(&region),
            "missing region span {region}: {region_names:?}"
        );
    }

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn search_trace_and_metrics_combine() {
    // Both flags on one run: each document must be independently valid.
    let graph = gen_graph("search.txt", "tree");
    let trace = tmp("search_trace.json");
    let metrics = tmp("search_metrics.json");
    let out = cli()
        .args([
            "search",
            graph.to_str().unwrap(),
            "-p",
            "2",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run search");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tdoc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).expect("trace JSON");
    validate_trace(&tdoc);
    let mdoc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).expect("metrics JSON");
    assert_eq!(
        mdoc.get("schema").and_then(Json::str),
        Some("hcd-metrics-v1")
    );
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn serve_bench_trace_shows_query_and_rebuild_spans() {
    let graph = gen_graph("serve.txt", "ba");
    let trace = tmp("serve_trace.json");
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "-p",
            "2",
            "--ops",
            "16",
            "--batch",
            "8",
            "--read-ratio",
            "0.6",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run serve-bench");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).expect("trace JSON");
    validate_trace(&doc);
    // The region track interleaves serving spans with the construction
    // spans each rebuild triggers.
    let events = doc.get("traceEvents").and_then(Json::arr).unwrap();
    let region_names: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::str) == Some("B")
                && e.get("tid").and_then(Json::num) == Some(0.0)
        })
        .map(|e| e.get("name").and_then(Json::str).unwrap())
        .collect();
    for region in ["serve.query.batch", "serve.rebuild", "phcd.union"] {
        assert!(
            region_names.contains(&region),
            "missing region span {region}: {region_names:?}"
        );
    }
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn trace_is_written_even_when_the_deadline_fires() {
    let graph = gen_graph("timeout.txt", "ba");
    let trace = tmp("timeout_trace.json");
    let out = cli()
        .args([
            "search",
            graph.to_str().unwrap(),
            "--timeout-ms",
            "0",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run search");
    assert_eq!(out.status.code(), Some(124), "deadline exit code");
    let text = std::fs::read_to_string(&trace).expect("trace written for aborted runs too");
    let doc = Json::parse(&text).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::str), Some("hcd-trace-v1"));
    // The aborted region still closed its span (RegionExit is recorded
    // on the error path as well), so spans stay balanced.
    let events = doc.get("traceEvents").and_then(Json::arr).unwrap();
    let b = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::str) == Some("B"))
        .count();
    let e = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::str) == Some("E"))
        .count();
    assert_eq!(b, e, "unbalanced spans in aborted trace");
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn trace_to_stdout_with_dash() {
    let graph = gen_graph("stdout.txt", "tree");
    let out = cli()
        .args(["stats", graph.to_str().unwrap(), "-p", "2", "--trace", "-"])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // The JSON document follows the human-readable stats output.
    let json_start = text.find("{\n").expect("JSON document on stdout");
    let doc = Json::parse(&text[json_start..]).expect("valid JSON on stdout");
    assert_eq!(doc.get("schema").and_then(Json::str), Some("hcd-trace-v1"));
    std::fs::remove_file(&graph).ok();
}
