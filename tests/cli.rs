//! End-to-end tests of the `hcd-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcd-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcd_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_stats_search_pipeline() {
    let graph = tmp("pipeline.txt");

    let out = cli()
        .args(["gen", "tree", graph.to_str().unwrap(), "--seed", "5"])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args(["stats", graph.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kmax"), "stats output: {text}");
    assert!(text.contains("|T|"));

    let out = cli()
        .args([
            "search",
            graph.to_str().unwrap(),
            "-m",
            "conductance",
            "-p",
            "2",
        ])
        .output()
        .expect("run search");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metric    = conductance"), "{text}");
    assert!(text.contains("best k"));

    std::fs::remove_file(&graph).ok();
}

#[test]
fn build_writes_a_loadable_index() {
    let graph = tmp("build.txt");
    let index = tmp("build.hcd");
    assert!(cli()
        .args(["gen", "ba", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            index.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    // The written index parses back.
    let file = std::fs::File::open(&index).unwrap();
    let hcd = hcd::core::io::read_hcd(file).unwrap();
    assert!(hcd.num_nodes() > 0);
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn core_query_lists_members() {
    let graph = tmp("core.txt");
    assert!(cli()
        .args(["gen", "ws", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["core", graph.to_str().unwrap(), "-v", "0", "-k", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2-core containing 0"), "{text}");
    std::fs::remove_file(&graph).ok();
}

#[test]
fn stats_and_dot_accept_thread_count() {
    let graph = tmp("threads.txt");
    assert!(cli()
        .args(["gen", "tree", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    for sub in ["stats", "dot"] {
        let out = cli()
            .args([sub, graph.to_str().unwrap(), "-p", "2"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{sub} -p 2: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_file(&graph).ok();
}

#[test]
fn expired_timeout_exits_with_code_124() {
    let graph = tmp("timeout.txt");
    assert!(cli()
        .args(["gen", "ba", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    // A zero-millisecond deadline is already expired when the first
    // parallel region starts, so the run must abort cleanly with the
    // dedicated timeout exit code (124, as in coreutils timeout(1)).
    for extra in [vec![], vec!["-p".to_string(), "2".to_string()]] {
        let mut args = vec![
            "search".to_string(),
            graph.to_str().unwrap().to_string(),
            "--timeout-ms".to_string(),
            "0".to_string(),
        ];
        args.extend(extra);
        let out = cli().args(&args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(124),
            "args {args:?}: stderr {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("deadline"), "{err}");
    }
    std::fs::remove_file(&graph).ok();
}

#[test]
fn generous_timeout_does_not_fire() {
    let graph = tmp("timeout_ok.txt");
    assert!(cli()
        .args(["gen", "tree", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            tmp("timeout_ok.hcd").to_str().unwrap(),
            "--timeout-ms",
            "600000",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(tmp("timeout_ok.hcd")).ok();
}

#[test]
fn bad_flag_values_are_usage_errors() {
    for args in [
        vec!["search", "x.txt", "-p", "zero"],
        vec!["search", "x.txt", "--timeout-ms", "soon"],
        vec!["frobnicate"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage"), "{args:?}: {err}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn missing_arguments_fail_cleanly() {
    for args in [
        vec!["search"],
        vec!["core", "x"],
        vec!["gen", "nosuch", "y"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
    }
}
