//! End-to-end tests of the `hcd-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcd-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcd_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_stats_search_pipeline() {
    let graph = tmp("pipeline.txt");

    let out = cli()
        .args(["gen", "tree", graph.to_str().unwrap(), "--seed", "5"])
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args(["stats", graph.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kmax"), "stats output: {text}");
    assert!(text.contains("|T|"));

    let out = cli()
        .args([
            "search",
            graph.to_str().unwrap(),
            "-m",
            "conductance",
            "-p",
            "2",
        ])
        .output()
        .expect("run search");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metric    = conductance"), "{text}");
    assert!(text.contains("best k"));

    std::fs::remove_file(&graph).ok();
}

#[test]
fn build_writes_a_loadable_index() {
    let graph = tmp("build.txt");
    let index = tmp("build.hcd");
    assert!(cli()
        .args(["gen", "ba", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            index.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    // The written index parses back.
    let file = std::fs::File::open(&index).unwrap();
    let hcd = hcd::core::io::read_hcd(file).unwrap();
    assert!(hcd.num_nodes() > 0);
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn core_query_lists_members() {
    let graph = tmp("core.txt");
    assert!(cli()
        .args(["gen", "ws", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["core", graph.to_str().unwrap(), "-v", "0", "-k", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2-core containing 0"), "{text}");
    std::fs::remove_file(&graph).ok();
}

#[test]
fn stats_and_dot_accept_thread_count() {
    let graph = tmp("threads.txt");
    assert!(cli()
        .args(["gen", "tree", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    for sub in ["stats", "dot"] {
        let out = cli()
            .args([sub, graph.to_str().unwrap(), "-p", "2"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{sub} -p 2: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_file(&graph).ok();
}

#[test]
fn stats_accepts_every_executor_mode() {
    let graph = tmp("modes.txt");
    assert!(cli()
        .args(["gen", "tree", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    for mode in ["seq", "rayon", "sim", "assist"] {
        let out = cli()
            .args(["stats", graph.to_str().unwrap(), "-p", "2", "--mode", mode])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stats --mode {mode}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Pinning is assist-only; elsewhere it is a usage error (exit 2).
    let out = cli()
        .args([
            "stats",
            graph.to_str().unwrap(),
            "-p",
            "2",
            "--mode",
            "assist",
            "--pin-threads",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "--pin-threads: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args([
            "stats",
            graph.to_str().unwrap(),
            "--mode",
            "rayon",
            "--pin-threads",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(&graph).ok();
}

#[test]
fn expired_timeout_exits_with_code_124() {
    let graph = tmp("timeout.txt");
    assert!(cli()
        .args(["gen", "ba", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    // A zero-millisecond deadline is already expired when the first
    // parallel region starts, so the run must abort cleanly with the
    // dedicated timeout exit code (124, as in coreutils timeout(1)).
    for extra in [vec![], vec!["-p".to_string(), "2".to_string()]] {
        let mut args = vec![
            "search".to_string(),
            graph.to_str().unwrap().to_string(),
            "--timeout-ms".to_string(),
            "0".to_string(),
        ];
        args.extend(extra);
        let out = cli().args(&args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(124),
            "args {args:?}: stderr {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("deadline"), "{err}");
    }
    std::fs::remove_file(&graph).ok();
}

#[test]
fn generous_timeout_does_not_fire() {
    let graph = tmp("timeout_ok.txt");
    assert!(cli()
        .args(["gen", "tree", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            tmp("timeout_ok.hcd").to_str().unwrap(),
            "--timeout-ms",
            "600000",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(tmp("timeout_ok.hcd")).ok();
}

#[test]
fn bad_flag_values_are_usage_errors() {
    for args in [
        vec!["search", "x.txt", "-p", "zero"],
        vec!["search", "x.txt", "--timeout-ms", "soon"],
        vec!["search", "x.txt", "--mode", "openmp"],
        vec!["search", "x.txt", "--mode", "assist", "-p", "0"],
        vec!["frobnicate"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage"), "{args:?}: {err}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn missing_arguments_fail_cleanly() {
    for args in [
        vec!["search"],
        vec!["core", "x"],
        vec!["gen", "nosuch", "y"],
        vec!["metrics-diff", "only-one.json"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

/// A minimal but schema-complete `hcd-metrics-v1` snapshot with one
/// region at the given wall time and one counter at the given value.
fn snapshot_json(wall_ns: u64, counter: u64) -> String {
    format!(
        r#"{{
  "schema": "hcd-metrics-v1",
  "total_wall_ns": {wall_ns},
  "total_charged_ns": {wall_ns},
  "regions": [
    {{"name": "phcd.union", "invocations": 1, "chunks": 4, "wall_ns": {wall_ns}, "chunk_sum_ns": {wall_ns}, "chunk_max_ns": {wall_ns}, "chunk_min_ns": 1, "imbalance": 1.0, "checkpoints": 0, "cancelled": 0, "deadline_exceeded": 0, "panicked": 0, "faults_injected": 0}}
  ],
  "counters": [
    {{"name": "phcd.uf.cas_retries", "value": {counter}, "kind": "sum"}}
  ]
}}
"#
    )
}

#[test]
fn metrics_diff_exit_codes() {
    let old = tmp("diff_old.json");
    let new = tmp("diff_new.json");
    std::fs::write(&old, snapshot_json(1_000_000, 100)).unwrap();

    // Identical snapshots: exit 0.
    let out = cli()
        .args(["metrics-diff", old.to_str().unwrap(), old.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "identical: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 10x wall regression, well past threshold and floor: exit 3, and
    // the report names the regressed entry.
    std::fs::write(&new, snapshot_json(10_000_000, 100)).unwrap();
    let out = cli()
        .args(["metrics-diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "regression must exit 3");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("phcd.union"), "{text}");

    // The same pair under a generous threshold passes.
    let out = cli()
        .args([
            "metrics-diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--threshold",
            "100",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "threshold 100x must pass");

    // Counter regressions are caught independently of timings.
    std::fs::write(&new, snapshot_json(1_000_000, 10_000)).unwrap();
    let out = cli()
        .args(["metrics-diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "counter regression must exit 3");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("cas_retries"),
        "counter named in report"
    );

    // Unreadable / unparsable snapshots are runtime errors (1), not
    // usage errors or false regressions.
    let out = cli()
        .args([
            "metrics-diff",
            old.to_str().unwrap(),
            tmp("diff_nosuch.json").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "missing file");
    std::fs::write(&new, "{\"schema\": \"wrong-v9\"}").unwrap();
    let out = cli()
        .args(["metrics-diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "wrong schema");

    std::fs::remove_file(&old).ok();
    std::fs::remove_file(&new).ok();
}

#[test]
fn metrics_to_stdout_with_dash() {
    let graph = tmp("stdout_metrics.txt");
    assert!(cli()
        .args(["gen", "tree", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args([
            "stats",
            graph.to_str().unwrap(),
            "-p",
            "2",
            "--metrics",
            "-",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("\"schema\": \"hcd-metrics-v1\""),
        "metrics JSON on stdout: {text}"
    );
    // The human-readable stats still precede it.
    assert!(text.contains("kmax"), "{text}");
    std::fs::remove_file(&graph).ok();
}

#[test]
fn committed_baseline_self_diff_is_clean() {
    // The baseline committed for CI must parse under the current schema
    // and diff cleanly against itself — guards against schema drift
    // landing without a regenerated baseline.
    let baseline = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/bench/baselines/rmat-small.json"
    );
    let out = cli()
        .args(["metrics-diff", baseline, baseline])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stale baseline: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn help_documents_every_exit_code() {
    for cmd in ["help", "--help", "-h"] {
        let out = cli().args([cmd]).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{cmd} must exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("usage"), "{cmd}: {text}");
        assert!(text.contains("exit codes"), "{cmd}: {text}");
        // Every code in the taxonomy is documented, including the
        // metrics-diff regression code (3), the torn-WAL warning code
        // (4), and the timeout code (124).
        for needle in [
            "0    success",
            "1    runtime failure",
            "2    usage error",
            "3    metrics-diff found a regression",
            "4    recovered with a truncated WAL tail",
            "5    open-loop serve-bench was fully shed",
            "124  deadline exceeded",
        ] {
            assert!(text.contains(needle), "{cmd} help missing {needle:?}");
        }
        // The executor mode list lives in one place; help must name
        // every mode the parser accepts, including assist.
        for needle in ["--mode", "seq", "rayon", "sim", "assist", "--pin-threads"] {
            assert!(text.contains(needle), "{cmd} help missing {needle:?}");
        }
        // The open-loop serving knobs are documented too.
        for needle in [
            "--tenants",
            "--offered-qps",
            "--watermark",
            "--deadline-ms",
            "--no-cache",
            "--hot-fraction",
            "--cache",
        ] {
            assert!(text.contains(needle), "{cmd} help missing {needle:?}");
        }
    }
}

#[test]
fn counters_only_ignores_wall_time_but_gates_counters() {
    let old = tmp("co_old.json");
    let new = tmp("co_new.json");
    std::fs::write(&old, snapshot_json(1_000_000, 100)).unwrap();

    // 10x wall regression: exit 3 normally, exit 0 with --counters-only.
    std::fs::write(&new, snapshot_json(10_000_000, 100)).unwrap();
    let out = cli()
        .args(["metrics-diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "wall regression without flag");
    let out = cli()
        .args([
            "metrics-diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--counters-only",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "wall regression is advisory under --counters-only: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A doctored counter regression still fails under --counters-only.
    std::fs::write(&new, snapshot_json(1_000_000, 10_000)).unwrap();
    let out = cli()
        .args([
            "metrics-diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--counters-only",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "counter regression must gate");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("cas_retries"),
        "counter named in report"
    );

    std::fs::remove_file(&old).ok();
    std::fs::remove_file(&new).ok();
}

#[test]
fn build_with_degree_order_writes_identical_index() {
    let graph = tmp("order.txt");
    let plain = tmp("order_plain.hcd");
    let ordered = tmp("order_degree.hcd");
    assert!(cli()
        .args(["gen", "ba", graph.to_str().unwrap(), "--seed", "9"])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            plain.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            ordered.to_str().unwrap(),
            "--order",
            "degree",
            "-p",
            "2",
        ])
        .status()
        .unwrap()
        .success());
    // The relabeled build maps back to the exact same serialized index.
    let a = std::fs::read(&plain).unwrap();
    let b = std::fs::read(&ordered).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "--order degree must not change the written index");

    // An unknown order is a usage error.
    let out = cli()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            plain.to_str().unwrap(),
            "--order",
            "random",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&plain).ok();
    std::fs::remove_file(&ordered).ok();
}

/// Generates a graph and runs one durable `serve-bench` pass into
/// `dir`, returning the graph path. Write-heavy so the WAL is never
/// empty.
fn durable_run(name: &str, dir: &std::path::Path) -> PathBuf {
    let graph = tmp(&format!("{name}.txt"));
    assert!(cli()
        .args(["gen", "ba", graph.to_str().unwrap(), "--seed", "3"])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "--durable",
            dir.to_str().unwrap(),
            "--ops",
            "12",
            "--batch",
            "6",
            "--read-ratio",
            "0.4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "durable serve-bench: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("durable dir"), "{text}");
    assert!(text.contains("update batches"), "{text}");
    graph
}

#[test]
fn serve_bench_durable_initializes_then_recovers() {
    let dir = tmp("durable_dir");
    std::fs::remove_dir_all(&dir).ok();
    let graph = durable_run("durable", &dir);
    assert!(dir.join("wal.log").is_file(), "WAL created");

    // A second run against the same directory recovers instead of
    // reinitializing, and keeps exiting 0 on a clean log.
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "--durable",
            dir.to_str().unwrap(),
            "--ops",
            "6",
            "--batch",
            "4",
            "--read-ratio",
            "0.5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("recovered        = checkpoint seq"),
        "second run must recover: {text}"
    );

    // wal-inspect on the healthy directory: clean tail, exit 0.
    let out = cli()
        .args(["wal-inspect", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("checkpoints      = [0"), "{text}");
    assert!(text.contains("tail             = clean"), "{text}");

    std::fs::remove_file(&graph).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_inspect_distinguishes_torn_tail_from_corruption() {
    let dir = tmp("inspect_dir");
    std::fs::remove_dir_all(&dir).ok();
    let graph = durable_run("inspect", &dir);
    let wal = dir.join("wal.log");
    let healthy = std::fs::read(&wal).unwrap();
    assert!(healthy.len() > 16, "workload must have written records");

    // Cut the last few bytes: the kill-mid-write shape. Exit 4 with a
    // warning — the log is still recoverable.
    std::fs::write(&wal, &healthy[..healthy.len() - 3]).unwrap();
    let out = cli()
        .args(["wal-inspect", wal.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "torn tail is the warning code");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tail             = torn"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning"), "{err}");

    // Flip a payload byte of the first record instead: mid-log
    // corruption is a hard failure, exit 1.
    let mut corrupt = healthy.clone();
    corrupt[9] ^= 0x10;
    std::fs::write(&wal, &corrupt).unwrap();
    let out = cli()
        .args(["wal-inspect", wal.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "corruption is a hard error");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tail             = corrupt"), "{text}");

    std::fs::remove_file(&graph).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_bench_recovery_flags_a_truncated_tail_with_exit_4() {
    let dir = tmp("torn_dir");
    std::fs::remove_dir_all(&dir).ok();
    let graph = durable_run("torn", &dir);

    // Append a partial frame: a header promising far more payload than
    // exists, exactly what a mid-write kill leaves behind.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xFF; 10]);
    std::fs::write(&wal, &bytes).unwrap();

    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "--durable",
            dir.to_str().unwrap(),
            "--ops",
            "6",
            "--batch",
            "4",
            "--read-ratio",
            "0.5",
        ])
        .output()
        .unwrap();
    // The run completes (summary printed), then exits with the
    // torn-tail warning code.
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(torn tail truncated)"), "{text}");
    assert!(
        text.contains("final generation"),
        "run still completed: {text}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("truncating 10 byte(s)"), "{err}");

    std::fs::remove_file(&graph).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot carrying a `histograms` section, with the `serve.query.batch`
/// p99 parameterized so tests can doctor a latency regression.
fn hist_snapshot_json(p99_ns: u64) -> String {
    let max = p99_ns.saturating_mul(2);
    format!(
        r#"{{
  "schema": "hcd-metrics-v1",
  "total_wall_ns": 1000000,
  "total_charged_ns": 1000000,
  "regions": [
    {{"name": "serve.query.batch", "invocations": 1, "chunks": 1, "wall_ns": 1000000, "chunk_sum_ns": 1000000, "chunk_max_ns": 1000000, "chunk_min_ns": 1, "imbalance": 1.0, "checkpoints": 0, "cancelled": 0, "deadline_exceeded": 0, "panicked": 0, "faults_injected": 0}}
  ],
  "counters": [],
  "histograms": {{"version": 1, "sub_bits": 2, "entries": [
    {{"name": "serve.query.batch", "count": 100, "sum_ns": 5000000, "min_ns": 1000, "max_ns": {max}, "p50_ns": 20000, "p90_ns": 30000, "p99_ns": {p99_ns}, "p999_ns": {max}, "buckets": [[40, 100]]}}
  ]}}
}}
"#
    )
}

#[test]
fn metrics_diff_gates_a_doctored_histogram_p99() {
    let old = tmp("hist_old.json");
    let new = tmp("hist_new.json");
    std::fs::write(&old, hist_snapshot_json(50_000)).unwrap();

    // Self-diff of a histogram-bearing snapshot is clean.
    let out = cli()
        .args(["metrics-diff", old.to_str().unwrap(), old.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "self-diff: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A 1000x doctored p99 gates with the regression exit code and the
    // report names the histogram quantile row.
    std::fs::write(&new, hist_snapshot_json(50_000_000)).unwrap();
    let out = cli()
        .args(["metrics-diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "doctored p99 must exit 3");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("hist:serve.query.batch:p99_ns"), "{text}");

    // Under --counters-only the same regression is advisory.
    let out = cli()
        .args([
            "metrics-diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--counters-only",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "p99 is advisory under --counters-only: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_file(&old).ok();
    std::fs::remove_file(&new).ok();
}

#[test]
fn metrics_diff_warns_about_unknown_sections() {
    let old = tmp("unk_old.json");
    let new = tmp("unk_new.json");
    std::fs::write(&old, snapshot_json(1_000_000, 100)).unwrap();
    let doctored = snapshot_json(1_000_000, 100).replace(
        "\"counters\":",
        "\"zz_experimental\": {\"x\": 1},\n  \"counters\":",
    );
    assert!(doctored.contains("zz_experimental"), "replace failed");
    std::fs::write(&new, doctored).unwrap();

    // The unknown section is skipped — no false regression, exit 0 —
    // but the skip is named on stderr so schema drift is visible.
    let out = cli()
        .args(["metrics-diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("ignoring unknown section `zz_experimental`"),
        "{err}"
    );
    assert!(
        err.contains(new.to_str().unwrap()),
        "warning names the offending file: {err}"
    );

    std::fs::remove_file(&old).ok();
    std::fs::remove_file(&new).ok();
}

#[test]
fn wal_inspect_prints_a_trailing_summary() {
    let dir = tmp("summary_dir");
    std::fs::remove_dir_all(&dir).ok();
    let graph = durable_run("summary", &dir);

    let out = cli()
        .args(["wal-inspect", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    let summary = text
        .lines()
        .find(|l| l.starts_with("summary          = "))
        .unwrap_or_else(|| panic!("no summary line: {text}"));
    assert!(summary.contains("record(s)"), "{summary}");
    assert!(summary.contains("payload byte(s)"), "{summary}");
    assert!(summary.contains("seq 1..="), "{summary}");
    assert!(summary.ends_with("tail clean"), "{summary}");

    // The summary is the last stdout line even on the torn-tail path.
    let wal = dir.join("wal.log");
    let healthy = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &healthy[..healthy.len() - 3]).unwrap();
    let out = cli()
        .args(["wal-inspect", wal.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stdout);
    let last = text.lines().last().unwrap();
    assert!(last.starts_with("summary          = "), "{text}");
    assert!(last.ends_with("tail torn"), "{last}");

    std::fs::remove_file(&graph).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_bench_reports_latency_events_and_inflight_stats() {
    let dir = tmp("events_dir");
    std::fs::remove_dir_all(&dir).ok();
    let graph = tmp("events.txt");
    let events = tmp("events.jsonl");
    let events2 = tmp("events2.jsonl");
    assert!(cli()
        .args(["gen", "ba", graph.to_str().unwrap(), "--seed", "3"])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "--durable",
            dir.to_str().unwrap(),
            "--ops",
            "12",
            "--batch",
            "6",
            "--read-ratio",
            "0.4",
            "--stats-interval",
            "4",
            "--events",
            events.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Periodic in-flight reports fired on the --stats-interval schedule.
    assert!(
        text.lines()
            .filter(|l| l.starts_with("in-flight        = op"))
            .count()
            >= 3,
        "{text}"
    );
    // The percentile report is printed from the emitted snapshot.
    assert!(
        text.contains("latency (p50/p99/p999/max from the emitted hcd-metrics-v1 histograms)"),
        "{text}"
    );
    assert!(
        text.lines()
            .any(|l| l.contains("serve.query.batch") && l.contains("p99=")),
        "{text}"
    );
    assert!(text.contains("events           = "), "{text}");

    // Every event line is schema-tagged JSONL, and the write-heavy run
    // produced batch-applied + published records.
    let log = std::fs::read_to_string(&events).unwrap();
    assert!(log.lines().count() >= 2, "{log}");
    for line in log.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"schema\": \"hcd-events-v1\""), "{line}");
        assert!(line.contains("\"kind\": \""), "{line}");
    }
    assert!(log.contains("\"kind\": \"batch-applied\""), "{log}");
    assert!(log.contains("\"kind\": \"published\""), "{log}");

    // A second run recovers: the recovery report is logged as the first
    // event and printed in detail on stdout.
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "--durable",
            dir.to_str().unwrap(),
            "--ops",
            "4",
            "--batch",
            "4",
            "--read-ratio",
            "0.5",
            "--events",
            events2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recovered        = checkpoint seq"), "{text}");
    assert!(text.contains("replayed records = "), "{text}");
    assert!(text.contains("bytes scanned    = "), "{text}");
    assert!(text.contains("skipped ckpts    = "), "{text}");
    assert!(text.contains("recovery wall    = "), "{text}");
    let log2 = std::fs::read_to_string(&events2).unwrap();
    let first = log2.lines().next().unwrap();
    assert!(first.contains("\"kind\": \"recovery\""), "{log2}");
    assert!(first.contains("\"bytes_scanned\": "), "{first}");

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&events).ok();
    std::fs::remove_file(&events2).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// The open-loop mode prints the offered/achieved/shed report with a
/// per-tenant line each, and — run twice with the same seed under the
/// sequential executor — makes bit-identical shed decisions.
#[test]
fn open_loop_serve_bench_reports_shed_fraction_deterministically() {
    let graph = tmp("cli_openloop.txt");
    let out = cli()
        .args(["gen", "ba", graph.to_str().unwrap(), "--seed", "9"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let run = || {
        cli()
            .args([
                "serve-bench",
                graph.to_str().unwrap(),
                "--tenants",
                "2",
                "--offered-qps",
                "40000",
                "--ticks",
                "50",
                "--watermark",
                "16",
                "--batch",
                "8",
                "--mode",
                "seq",
                "-p",
                "1",
            ])
            .output()
            .unwrap()
    };
    let first = run();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let text = String::from_utf8_lossy(&first.stdout);
    for needle in [
        "tenants          = 2",
        "tenant t0        = offered ",
        "tenant t1        = offered ",
        "offered total    = ",
        "answered total   = ",
        "achieved         = ",
        "shed fraction    = ",
    ] {
        assert!(text.contains(needle), "missing {needle:?}:\n{text}");
    }
    // Overloaded on purpose: some load must actually shed, and the
    // per-tenant cache must actually hit.
    let shed_line = text
        .lines()
        .find(|l| l.starts_with("shed fraction"))
        .unwrap();
    let shed: f64 = shed_line
        .rsplit('=')
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(shed > 0.0 && shed < 1.0, "{shed_line}");
    assert!(
        text.lines()
            .any(|l| l.starts_with("tenant t0") && l.contains("cache hits ")),
        "{text}"
    );
    // Determinism: the shed decisions (whole tenant lines) reproduce.
    let second = run();
    let text2 = String::from_utf8_lossy(&second.stdout);
    for prefix in ["tenant t0", "tenant t1", "offered total", "shed fraction"] {
        let a = text.lines().find(|l| l.starts_with(prefix)).unwrap();
        let b = text2.lines().find(|l| l.starts_with(prefix)).unwrap();
        assert_eq!(a, b, "{prefix} line drifted between identical runs");
    }
    std::fs::remove_file(&graph).ok();
}

/// `--deadline-ms 0` stamps an already-expired deadline on every
/// arrival: everything sheds, and the run exits with the distinct
/// saturated code 5 (not success, not failure).
#[test]
fn fully_shed_open_loop_exits_with_code_5() {
    let graph = tmp("cli_saturated.txt");
    let out = cli()
        .args(["gen", "tree", graph.to_str().unwrap(), "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = cli()
        .args([
            "serve-bench",
            graph.to_str().unwrap(),
            "--tenants",
            "1",
            "--offered-qps",
            "5000",
            "--ticks",
            "20",
            "--deadline-ms",
            "0",
            "--mode",
            "seq",
            "-p",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "saturated exit code");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("shed fraction    = 1.0000"), "{text}");
    assert!(text.contains("answered total   = 0"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("saturated"), "{err}");
    std::fs::remove_file(&graph).ok();
}

/// Open-loop flag validation stays a usage error (exit 2).
#[test]
fn open_loop_bad_flags_are_usage_errors() {
    let graph = tmp("cli_openloop_bad.txt");
    let out = cli()
        .args(["gen", "tree", graph.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    for bad in [
        vec!["--tenants", "0"],
        vec!["--tenants", "2", "--offered-qps", "0"],
        vec!["--tenants", "2", "--hot-fraction", "1.5"],
        vec!["--tenants", "2", "--ticks", "0"],
    ] {
        let mut args = vec!["serve-bench", graph.to_str().unwrap()];
        args.extend(bad.iter());
        let out = cli().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{bad:?} must be a usage error");
    }
    std::fs::remove_file(&graph).ok();
}
