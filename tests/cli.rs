//! End-to-end tests of the `hcd-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcd-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcd_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_stats_search_pipeline() {
    let graph = tmp("pipeline.txt");

    let out = cli()
        .args(["gen", "tree", graph.to_str().unwrap(), "--seed", "5"])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = cli()
        .args(["stats", graph.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kmax"), "stats output: {text}");
    assert!(text.contains("|T|"));

    let out = cli()
        .args([
            "search",
            graph.to_str().unwrap(),
            "-m",
            "conductance",
            "-p",
            "2",
        ])
        .output()
        .expect("run search");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metric    = conductance"), "{text}");
    assert!(text.contains("best k"));

    std::fs::remove_file(&graph).ok();
}

#[test]
fn build_writes_a_loadable_index() {
    let graph = tmp("build.txt");
    let index = tmp("build.hcd");
    assert!(cli()
        .args(["gen", "ba", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args(["build", graph.to_str().unwrap(), "-o", index.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    // The written index parses back.
    let file = std::fs::File::open(&index).unwrap();
    let hcd = hcd::core::io::read_hcd(file).unwrap();
    assert!(hcd.num_nodes() > 0);
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn core_query_lists_members() {
    let graph = tmp("core.txt");
    assert!(cli()
        .args(["gen", "ws", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["core", graph.to_str().unwrap(), "-v", "0", "-k", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2-core containing 0"), "{text}");
    std::fs::remove_file(&graph).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn missing_arguments_fail_cleanly() {
    for args in [vec!["search"], vec!["core", "x"], vec!["gen", "nosuch", "y"]] {
        let out = cli().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
    }
}
