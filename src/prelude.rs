//! One-stop imports for the common workflow:
//! build graph → core decomposition → HCD → subgraph search.

pub use hcd_graph::{CsrGraph, GraphBuilder, InducedSubgraph, Permutation, VertexId};

pub use hcd_unionfind::{
    BatchStats, ConcurrentPivotUnionFind, PivotUnionFind, UfCounts, UnionBatch, UnionFindPivot,
};

pub use hcd_decomp::{
    core_decomposition, hindex_core_decomposition, pkc_core_decomposition,
    try_hindex_core_decomposition, try_pkc_core_decomposition, CoreDecomposition,
};

pub use hcd_core::phcd::{phcd_with_ranks, try_phcd_with_ranks};
pub use hcd_core::query::{
    core_containing, core_node_at, cores_per_level, hierarchy_position, in_k_core, same_k_core,
};
pub use hcd_core::{
    build_with_order, lcps, naive_hcd, phcd, try_build_with_order, try_phcd, Hcd, TreeNode,
    VertexOrder, VertexRanks,
};

pub use hcd_par::{
    diff_metrics, intern, BuildError, CancelToken, CounterValue, CrashPoint, Deadline, DiffEntry,
    DiffOptions, DiffReport, EventKind, Executor, ExecutorConfig, Fault, FaultPlan,
    HistogramSnapshot, ParError, RegionMetrics, RunMetrics, Snapshot, SnapshotHistogram, Trace,
    TraceEvent, CHECKPOINT_STRIDE, METRICS_SCHEMA, TRACE_SCHEMA,
};

pub use hcd_search::bestk::{best_k, core_set_scores, try_best_k, try_core_set_scores};
pub use hcd_search::bks::bks_scores;
pub use hcd_search::densest::{coreapp, opt_d, pbks_d};
pub use hcd_search::influence::{InfluenceIndex, InfluentialCommunity};
pub use hcd_search::pbks::pbks_scores;
pub use hcd_search::{
    bks, max_clique, pbks, try_pbks, try_pbks_on, try_pbks_scores, BestCore, Metric, MetricKind,
    SearchContext,
};

pub use hcd_flow::{densest_subgraph, ecc_connectivity, k_edge_connected_components, stoer_wagner};

pub use hcd_dynamic::{BatchReport, DynamicCore, DynamicGraph, EdgeUpdate};

// `hcd_serve::Snapshot` is aliased to avoid colliding with the metrics
// snapshot exported from `hcd_par`.
pub use hcd_serve::{
    run_open_loop, run_workload, run_workload_with, AdmissionConfig, BatchAnswers, CacheConfig,
    CacheKey, CacheStats, CachedAnswer, CheckpointError, DrainReport, DurabilityConfig, EventLog,
    FsyncPolicy, HcdService, IngressQueue, OpenLoopConfig, OpenLoopSummary, Query, QueryAnswer,
    QueryCache, RecoverError, RecoveryReport, RegistryError, Rejected, Response, ServeError,
    ServiceRegistry, Snapshot as ServeSnapshot, TailStatus, TenantConfig, WalError, WalScan,
    WalWriter, WorkloadConfig, WorkloadSummary, EVENTS_SCHEMA, WAL_FILE_NAME,
};

pub use hcd_truss::{
    naive_htd, phtd, truss_decomposition, try_phtd, EdgeIndex, Htd, TrussDecomposition,
};

pub use hcd_datasets::{
    barabasi_albert, clique_overlay, core_tree, gnp, rmat, watts_strogatz, Dataset, Scale, DATASETS,
};
