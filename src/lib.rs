//! # hcd — Hierarchical Core Decomposition in Parallel
//!
//! A Rust reproduction of *"Hierarchical Core Decomposition in Parallel:
//! From Construction to Subgraph Search"* (Chu, Zhang, Zhang, Lin, Zhang —
//! ICDE 2022).
//!
//! This facade crate re-exports the full workspace:
//!
//! * [`graph`] — CSR graph substrate (construction, I/O, traversal),
//! * [`unionfind`] — sequential and concurrent union-find **with pivot**,
//! * [`par`] — the parallel executor (real rayon threads or deterministic
//!   work-span simulation),
//! * [`decomp`] — core decomposition (serial Batagelj–Zaversnik, parallel
//!   PKC-style peeling, iterative h-index),
//! * [`core`] — the HCD index and its construction algorithms (**PHCD**,
//!   LCPS, RC, LB, brute-force oracle),
//! * [`search`] — subgraph search on the HCD (**PBKS**, BKS, community
//!   metrics, densest subgraph, maximum clique, best-k),
//! * [`truss`] — the §VI extension: k-truss decomposition and its
//!   parallel hierarchy construction (PHTD) on the same framework,
//! * [`flow`] — max-flow and Goldberg's exact densest subgraph (test
//!   oracle),
//! * [`serve`] — the snapshot-isolated query service with batch-dynamic
//!   updates and opt-in crash-safe durability (checksummed WAL +
//!   atomic snapshot checkpoints + recovery),
//! * [`datasets`] — seeded synthetic graph generators and the paper
//!   dataset stand-in registry.
//!
//! ## Quickstart
//!
//! ```
//! use hcd::prelude::*;
//!
//! // A small graph: a 4-clique hanging off a cycle.
//! let g = GraphBuilder::new()
//!     .edges([(0, 1), (1, 2), (2, 3), (3, 0)]) // 4-cycle (coreness 2)
//!     .edges([(3, 4), (4, 5), (5, 6), (6, 4), (5, 3), (6, 3)]) // near-clique
//!     .build();
//!
//! // 1. Core decomposition.
//! let cores = core_decomposition(&g);
//!
//! // 2. Hierarchical core decomposition (parallel construction).
//! let exec = Executor::sequential();
//! let hcd = phcd(&g, &cores, &exec);
//!
//! // 3. Search the k-core with the best average degree (PBKS-D).
//! let pre = SearchContext::new(&g, &cores, &hcd);
//! let best = pbks(&pre, &Metric::AverageDegree, &exec).expect("non-empty graph");
//! assert!(best.score > 0.0);
//! ```

pub use hcd_core as core;
pub use hcd_datasets as datasets;
pub use hcd_decomp as decomp;
pub use hcd_dynamic as dynamic;
pub use hcd_flow as flow;
pub use hcd_graph as graph;
pub use hcd_par as par;
pub use hcd_search as search;
pub use hcd_serve as serve;
pub use hcd_truss as truss;
pub use hcd_unionfind as unionfind;

/// Convenient glob import for examples and quick experiments.
pub mod prelude;
