//! `hcd-cli` — command-line front end for the library.
//!
//! ```text
//! hcd-cli stats  <graph>                        # n, m, davg, kmax, |T|
//! hcd-cli build  <graph> -o index.hcd           # build + save the HCD
//! hcd-cli search <graph> [-m METRIC] [-p P]     # best k-core per metric
//! hcd-cli core   <graph> -v VERTEX -k K         # the k-core containing v
//! hcd-cli dot    <graph>                        # Graphviz DOT of the HCD
//! hcd-cli gen    <model> <out> [--seed S]       # generate a synthetic graph
//! ```
//!
//! Graphs are text edge lists (`u v` per line, `#` comments) or the
//! compact binary format (`.bin`), auto-detected by extension.

use std::process::ExitCode;

use hcd::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hcd-cli stats  <graph>
  hcd-cli build  <graph> -o <index.hcd>
  hcd-cli search <graph> [-m metric] [-p threads]
  hcd-cli core   <graph> -v <vertex> -k <k>
  hcd-cli dot    <graph>
  hcd-cli gen    <rmat|ba|er|ws|tree> <out.txt> [--seed S]

metrics: average-degree internal-density cut-ratio conductance
         modularity clustering-coefficient (default: average-degree)";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "stats" => stats(args.get(1).ok_or("missing graph path")?),
        "build" => build(
            args.get(1).ok_or("missing graph path")?,
            &flag_value(args, "-o")?.ok_or("missing -o <index.hcd>")?,
        ),
        "search" => search(
            args.get(1).ok_or("missing graph path")?,
            flag_value(args, "-m")?,
            flag_value(args, "-p")?,
        ),
        "core" => core_query(
            args.get(1).ok_or("missing graph path")?,
            &flag_value(args, "-v")?.ok_or("missing -v <vertex>")?,
            &flag_value(args, "-k")?.ok_or("missing -k <k>")?,
        ),
        "dot" => dot(args.get(1).ok_or("missing graph path")?),
        "gen" => gen(
            args.get(1).ok_or("missing model")?,
            args.get(2).ok_or("missing output path")?,
            flag_value(args, "--seed")?,
        ),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} requires a value")),
    }
}

fn load(path: &str) -> Result<CsrGraph, String> {
    let g = if path.ends_with(".bin") {
        hcd::graph::io::read_binary_file(path)
    } else {
        hcd::graph::io::read_edge_list_file(path)
    };
    g.map_err(|e| format!("cannot read {path}: {e}"))
}

fn default_executor(p: Option<String>) -> Result<Executor, String> {
    let threads = match p {
        Some(s) => s.parse::<usize>().map_err(|e| format!("bad -p: {e}"))?,
        None => std::thread::available_parallelism().map_or(1, |v| v.get()),
    };
    Ok(if threads <= 1 {
        Executor::sequential()
    } else {
        Executor::rayon(threads)
    })
}

fn pipeline(g: &CsrGraph) -> (CoreDecomposition, Hcd) {
    let cores = core_decomposition(g);
    let hcd = phcd(g, &cores, &Executor::sequential());
    (cores, hcd)
}

fn stats(path: &str) -> Result<(), String> {
    let g = load(path)?;
    let (cores, hcd) = pipeline(&g);
    println!("n     = {}", g.num_vertices());
    println!("m     = {}", g.num_edges());
    println!("davg  = {:.2}", g.avg_degree());
    println!("dmax  = {}", g.max_degree());
    println!("kmax  = {}", cores.kmax());
    println!("|T|   = {}", hcd.num_nodes());
    println!("roots = {}", hcd.roots().len());
    Ok(())
}

fn build(path: &str, out: &str) -> Result<(), String> {
    let g = load(path)?;
    let (_, hcd) = pipeline(&g);
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    hcd::core::io::write_hcd(&hcd, file).map_err(|e| format!("cannot write index: {e}"))?;
    println!("wrote {} nodes to {out}", hcd.num_nodes());
    Ok(())
}

fn parse_metric(m: Option<String>) -> Result<Metric, String> {
    let name = m.unwrap_or_else(|| "average-degree".into());
    Metric::ALL
        .into_iter()
        .find(|metric| metric.name() == name)
        .ok_or_else(|| format!("unknown metric {name:?}"))
}

fn search(path: &str, metric: Option<String>, p: Option<String>) -> Result<(), String> {
    let g = load(path)?;
    let metric = parse_metric(metric)?;
    let exec = default_executor(p)?;
    let cores = pkc_core_decomposition(&g, &exec);
    let hcd = phcd(&g, &cores, &exec);
    let ctx = SearchContext::with_executor(&g, &cores, &hcd, &exec);
    match pbks(&ctx, &metric, &exec) {
        None => println!("graph is empty"),
        Some(best) => {
            println!("metric    = {}", metric.name());
            println!("best k    = {}", best.k);
            println!("score     = {:.6}", best.score);
            println!("|S|       = {}", best.primaries.n);
            println!("m(S)      = {}", best.primaries.m() as u64);
            println!("b(S)      = {}", best.primaries.b);
        }
    }
    Ok(())
}

fn core_query(path: &str, v: &str, k: &str) -> Result<(), String> {
    let g = load(path)?;
    let v: u32 = v.parse().map_err(|e| format!("bad -v: {e}"))?;
    let k: u32 = k.parse().map_err(|e| format!("bad -k: {e}"))?;
    if v as usize >= g.num_vertices() {
        return Err(format!("vertex {v} out of range"));
    }
    let (cores, hcd) = pipeline(&g);
    match core_containing(&hcd, &cores, v, k) {
        None => println!(
            "vertex {v} has coreness {} < {k}: no such core",
            cores.coreness(v)
        ),
        Some(mut members) => {
            members.sort_unstable();
            println!("{}-core containing {v}: {} vertices", k, members.len());
            for chunk in members.chunks(16) {
                println!(
                    "  {}",
                    chunk
                        .iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                );
            }
        }
    }
    Ok(())
}

fn dot(path: &str) -> Result<(), String> {
    let g = load(path)?;
    let (_, hcd) = pipeline(&g);
    print!("{}", hcd.to_dot());
    Ok(())
}

fn gen(model: &str, out: &str, seed: Option<String>) -> Result<(), String> {
    let seed: u64 = seed
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let g = match model {
        "rmat" => rmat(14, 8, None, seed),
        "ba" => barabasi_albert(10_000, 4, seed),
        "er" => gnp(10_000, 0.001, seed),
        "ws" => watts_strogatz(10_000, 8, 0.05, seed),
        "tree" => core_tree(3, 4, 16, seed),
        other => return Err(format!("unknown model {other:?} (rmat|ba|er|ws|tree)")),
    };
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    hcd::graph::io::write_edge_list(&g, file).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} vertices, {} edges)",
        out,
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}
