//! `hcd-cli` — command-line front end for the library.
//!
//! ```text
//! hcd-cli stats  <graph> [-p P] [--order O] [--metrics M.json] [--trace T.json]
//! hcd-cli build  <graph> -o index.hcd [-p P] [--order O] [--timeout-ms T] [--metrics M.json] [--trace T.json]
//! hcd-cli search <graph> [-m METRIC] [-p P] [--order O] [--timeout-ms T] [--metrics M.json] [--trace T.json]
//! hcd-cli core   <graph> -v VERTEX -k K                   # the k-core containing v
//! hcd-cli dot    <graph> [-p P] [--order O]               # Graphviz DOT of the HCD
//! hcd-cli gen    <model> <out> [--seed S]                 # generate a synthetic graph
//! hcd-cli serve-bench <graph> [--durable DIR] [--seed S] [--ops N] [--batch B] [--read-ratio R] [--cache] [--hot-fraction F] [--events E.jsonl] [--stats-interval N] [-p P] [--timeout-ms T] [--metrics M.json] [--trace T.json]
//! hcd-cli serve-bench <graph> --tenants N --offered-qps R [--ticks T] [--watermark W] [--deadline-ms D] [--no-cache] ...   # open-loop mode
//! hcd-cli wal-inspect <dir|wal.log>                       # scan a write-ahead log
//! hcd-cli metrics-diff <old.json> <new.json> [--threshold X] [--abs-floor-ns N] [--counters-only]
//! hcd-cli help                                            # usage and exit codes
//! ```
//!
//! Graphs are text edge lists (`u v` per line, `#` comments) or the
//! compact binary format (`.bin`), auto-detected by extension.
//! `--metrics -` / `--trace -` write the JSON document to stdout.
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | runtime failure (I/O error, worker panic, bad input graph, corrupt WAL) |
//! | 2    | usage error (unknown command, bad flag, unknown metric) |
//! | 3    | `metrics-diff` found a regression past the threshold |
//! | 4    | recovered with a truncated WAL tail (torn-write warning) |
//! | 5    | open-loop `serve-bench` run was fully shed (saturated) |
//! | 124  | deadline exceeded or cancelled (`--timeout-ms` fired) |

use std::process::ExitCode;
use std::time::Duration;

use hcd::prelude::*;

/// Exit code for a run aborted by `--timeout-ms`, matching the
/// convention of coreutils `timeout(1)`.
const EXIT_TIMEOUT: u8 = 124;
/// Exit code for malformed invocations (usage text is printed).
const EXIT_USAGE: u8 = 2;
/// Exit code when `metrics-diff` detects a regression past the
/// threshold — distinct from runtime failure (1) so CI can tell "the
/// comparison ran and found a slowdown" from "the comparison broke".
const EXIT_REGRESSION: u8 = 3;
/// Exit code when a write-ahead log ended in a torn record — expected
/// after a mid-write kill, so it is a warning (the state recovers to
/// the last acknowledged batch), distinct from hard corruption (1).
const EXIT_TORN_TAIL: u8 = 4;
/// Exit code when an open-loop `serve-bench` run answered nothing —
/// every offered request was shed. Distinct from success (the run
/// completed, the shed machinery worked) and from failure (nothing
/// broke); CI uses it to assert the fully-shed regime is reachable.
const EXIT_SATURATED: u8 = 5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Regression) => ExitCode::from(EXIT_REGRESSION),
        Err(CliError::TornTail(msg)) => {
            eprintln!("warning: {msg}");
            ExitCode::from(EXIT_TORN_TAIL)
        }
        Err(CliError::Saturated) => {
            eprintln!("warning: open loop saturated: every offered request was shed");
            ExitCode::from(EXIT_SATURATED)
        }
        Err(CliError::Timeout(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(EXIT_TIMEOUT)
        }
    }
}

const USAGE: &str = "usage:
  hcd-cli stats  <graph> [-p threads] [--mode M] [--pin-threads] [--order none|degree] [--metrics out.json] [--trace out.json]
  hcd-cli build  <graph> -o <index.hcd> [-p threads] [--mode M] [--pin-threads] [--order none|degree] [--timeout-ms T] [--metrics out.json] [--trace out.json]
  hcd-cli search <graph> [-m metric] [-p threads] [--mode M] [--pin-threads] [--order none|degree] [--timeout-ms T] [--metrics out.json] [--trace out.json]
  hcd-cli core   <graph> -v <vertex> -k <k>
  hcd-cli dot    <graph> [-p threads] [--order none|degree]
  hcd-cli gen    <rmat|ba|er|ws|tree> <out.txt> [--seed S]
  hcd-cli serve-bench <graph> [--durable DIR] [--seed S] [--ops N] [--batch B] [--read-ratio R] [--cache] [--hot-fraction F] [--events out.jsonl] [--stats-interval N] [-p threads] [--mode M] [--pin-threads] [--timeout-ms T] [--metrics out.json] [--trace out.json]
  hcd-cli serve-bench <graph> --tenants N --offered-qps R [--ticks T] [--watermark W] [--deadline-ms D] [--no-cache] [--hot-fraction F] [--durable DIR] [--seed S] [--batch B] [-p threads] [--mode M] [--metrics out.json]
  hcd-cli wal-inspect <dir|wal.log>
  hcd-cli metrics-diff <old.json> <new.json> [--threshold X] [--abs-floor-ns N] [--counters-only]
  hcd-cli help

metrics: average-degree internal-density cut-ratio conductance
         modularity clustering-coefficient (default: average-degree)

--mode selects the executor: seq (single-threaded), rayon (static
chunk schedule, the default for -p > 1), sim (deterministic simulated
workers), assist (work-assisting self-scheduling: workers claim chunks
from an atomic cursor and idle workers join the busiest live loop).
All modes produce identical chunk boundaries, so algorithm counters
are comparable across modes with metrics-diff --counters-only.
--pin-threads (assist only) pins pool workers to cores when the OS
supports it and silently falls back where it does not.

--order degree relabels vertices hubs-first before construction for
cache locality and union-find batching, then maps every output back to
original ids; results are bit-identical to --order none (the default).

--timeout-ms arms a deadline checked at chunk boundaries and at coarse
strides inside hot loops; on expiry the command exits with code 124.

serve-bench stands up the snapshot-isolated query service on the input
graph and drives a seeded mixed read/update workload against it
(--ops operations of --batch queries or edge updates each, reads with
probability --read-ratio, default 0.9; a quarter of the reads are
single typed queries instead of full batches so every serve.query.*
latency histogram gets traffic). The operation stream is a pure
function of --seed, so counters are reproducible run-to-run with -p 1;
combine with --metrics + metrics-diff to gate the serve.* counters and
p99 latencies in CI.

serve-bench always arms metrics and latency histograms and finishes
with a per-boundary latency report (p50/p99/p999/max for each
serve.query.* read path and the writer-side apply / wal / fsync /
checkpoint / repair / publish stages) read back out of the emitted
hcd-metrics-v1 snapshot; --metrics additionally writes that snapshot
to a file. --stats-interval N prints an in-flight one-line report
every N operations while the workload runs. --events out.jsonl
attaches a structured writer event log (schema hcd-events-v1, one
JSON object per line): batch-applied / published / no-op / checkpoint
/ recovery / fault-kept-old-snapshot records carrying the WAL seq,
snapshot generation, affected-vertex count, and duration.

--cache arms the generation-keyed memo cache on the closed-loop
service (answers are bit-identical to a disarmed run — the cache keys
by snapshot generation, so invalidation is the epoch bump itself);
--hot-fraction F (default 0 closed-loop, 0.5 open-loop) concentrates F
of the query draws on a small hot vertex set so the cache sees repeat
traffic.

Giving --tenants and/or --offered-qps switches serve-bench into
**open-loop** mode: N tenant copies of the graph are registered in one
process (each with its own epoch cell, serve.<tenant>.* counter
namespace, per-tenant cache, and — with --durable — its own WAL
subdirectory), and a seeded open-loop generator offers --offered-qps
arrivals per virtual second for --ticks 1 ms ticks through a bounded
ingress queue (admission watermark --watermark, optional per-request
deadline --deadline-ms; 0 means already-expired, the deterministic
fully-shed regime). The report shows offered rate, achieved
throughput, shed fraction, per-tenant generations and cache hits, and
p50/p99 from the shared histogram layer. A fully-shed run (offered
load, nothing answered) exits with the distinct code 5. The arrival
schedule and queue dynamics are pure functions of the seed and config,
so shed counts are reproducible with -p 1 --mode seq.

--durable DIR makes the service crash-safe: every update batch is
appended to a checksummed write-ahead log in DIR (fsynced before it is
acknowledged) and snapshot checkpoints are written atomically in the
checksummed binary format. An empty DIR is initialized from the input
graph; a DIR with existing checkpoints is *recovered* first — the
newest valid checkpoint plus the WAL suffix, ignoring the graph
argument — and the run continues from the recovered state. A torn WAL
tail (the shape a mid-write kill leaves) is truncated and reported
with exit code 4 after the run; mid-log corruption refuses to recover
with exit code 1.

wal-inspect scans a write-ahead log (a durability directory or the
wal.log file itself) without modifying it and reports its records,
tail state, and a trailing one-line summary (record count, payload
bytes, seq range, tail status): exit 0 for a clean log, 4 for a torn
tail, 1 for corruption.

--metrics writes per-region runtime observability (schema
hcd-metrics-v1) as JSON; the file is written even when the command
fails, so aborted runs can be diagnosed.

--trace writes a per-thread span timeline (schema hcd-trace-v1) in
Chrome trace-event JSON, loadable in Perfetto / chrome://tracing; like
--metrics, it is written even on failure. `-` as the path for either
flag writes the document to stdout instead of a file.

metrics-diff compares two hcd-metrics-v1 snapshots and exits 3 when
any total, per-region time, imbalance, counter, or histogram p99
regressed past the threshold (default 1.25x, ignoring deltas under
--abs-floor-ns, default 100000; histogram p50/p999/max are reported
but advisory). With --counters-only, timing, imbalance, and histogram
rows are reported but only counter regressions gate (for CI on noisy
runners). Top-level snapshot sections the parser does not recognize
are skipped with a warning naming each one.

exit codes:
  0    success
  1    runtime failure (I/O error, worker panic, bad input graph, corrupt WAL)
  2    usage error (unknown command, bad flag, unknown metric)
  3    metrics-diff found a regression past the threshold
  4    recovered with a truncated WAL tail (torn-write warning)
  5    open-loop serve-bench was fully shed (saturated)
  124  deadline exceeded or cancelled (--timeout-ms fired)";

/// Typed failure, mapped to a distinct process exit code in `main`.
#[derive(Debug)]
enum CliError {
    /// Malformed invocation: exit 2, usage text printed.
    Usage(String),
    /// The command itself failed: exit 1.
    Runtime(String),
    /// `metrics-diff` found a regression: exit 3. The report has already
    /// been printed, so no extra message is attached.
    Regression,
    /// A WAL ended in a torn record (truncated or truncatable at the
    /// last valid record): exit 4, a warning rather than a failure.
    TornTail(String),
    /// An open-loop `serve-bench` run was fully shed: exit 5. The
    /// summary has already been printed.
    Saturated,
    /// A `--timeout-ms` deadline fired (or the run was cancelled): exit 124.
    Timeout(String),
}

/// Maps a parallel-runtime failure onto the CLI's exit-code taxonomy:
/// deadline/cancellation are "timeout" (124), contained worker panics
/// are runtime failures (1).
fn par_err(e: ParError) -> CliError {
    match e {
        ParError::Cancelled | ParError::DeadlineExceeded => CliError::Timeout(e.to_string()),
        other => CliError::Runtime(other.to_string()),
    }
}

/// Maps a serving-layer failure: parallel-pipeline errors keep their
/// timeout/runtime split, WAL and checkpoint failures are runtime.
fn serve_err(e: ServeError) -> CliError {
    match e {
        ServeError::Par(p) => par_err(p),
        other => CliError::Runtime(other.to_string()),
    }
}

/// Maps a recovery failure: corrupt logs and missing checkpoints are
/// runtime failures (exit 1) — the torn-tail *warning* path never
/// reaches here (recovery succeeds and reports it instead).
fn recover_err(e: RecoverError) -> CliError {
    match e {
        RecoverError::Par(p) => par_err(p),
        other => CliError::Runtime(other.to_string()),
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args.first().ok_or_else(|| usage("missing command"))?;
    match cmd.as_str() {
        "stats" => {
            let path = args.get(1).ok_or_else(|| usage("missing graph path"))?;
            let order = order_option(args)?;
            with_metrics(args, exec_options(args)?, |exec| stats(path, order, exec))
        }
        "build" => {
            let path = args.get(1).ok_or_else(|| usage("missing graph path"))?;
            let out = flag_value(args, "-o")?.ok_or_else(|| usage("missing -o <index.hcd>"))?;
            let order = order_option(args)?;
            with_metrics(args, exec_options(args)?, |exec| {
                build(path, &out, order, exec)
            })
        }
        "search" => {
            let path = args.get(1).ok_or_else(|| usage("missing graph path"))?;
            let metric = flag_value(args, "-m")?;
            let order = order_option(args)?;
            with_metrics(args, exec_options(args)?, |exec| {
                search(path, metric, order, exec)
            })
        }
        "core" => core_query(
            args.get(1).ok_or_else(|| usage("missing graph path"))?,
            &flag_value(args, "-v")?.ok_or_else(|| usage("missing -v <vertex>"))?,
            &flag_value(args, "-k")?.ok_or_else(|| usage("missing -k <k>"))?,
        ),
        "dot" => dot(
            args.get(1).ok_or_else(|| usage("missing graph path"))?,
            order_option(args)?,
            exec_options(args)?,
        ),
        "gen" => gen(
            args.get(1).ok_or_else(|| usage("missing model"))?,
            args.get(2).ok_or_else(|| usage("missing output path"))?,
            flag_value(args, "--seed")?,
        ),
        // serve-bench manages its own metrics/trace lifecycle (not
        // `with_metrics`): it always arms metrics + histograms because
        // the latency report below is sourced from the emitted
        // snapshot, and it must drain the executor exactly once.
        "serve-bench" => serve_bench(
            args.get(1).ok_or_else(|| usage("missing graph path"))?,
            args,
            &exec_options(args)?,
        ),
        "wal-inspect" => wal_inspect(args.get(1).ok_or_else(|| usage("missing wal path"))?),
        "metrics-diff" => metrics_diff(args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown command {other:?}"))),
    }
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| usage(format!("{flag} requires a value"))),
    }
}

/// Whether a valueless boolean flag is present.
fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--order none|degree` (default `none`).
fn order_option(args: &[String]) -> Result<VertexOrder, CliError> {
    match flag_value(args, "--order")? {
        None => Ok(VertexOrder::None),
        Some(s) => {
            VertexOrder::parse(&s).ok_or_else(|| usage(format!("bad --order {s:?} (none|degree)")))
        }
    }
}

fn load(path: &str) -> Result<CsrGraph, CliError> {
    let g = if path.ends_with(".bin") {
        hcd::graph::io::read_binary_file(path)
    } else {
        hcd::graph::io::read_edge_list_file(path)
    };
    g.map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))
}

/// Builds the executor shared by a whole command from its `-p`,
/// `--mode`, `--pin-threads`, and `--timeout-ms` flags: `-p 1` (or a
/// single-core machine) selects the sequential mode, anything larger a
/// dedicated thread pool — statically scheduled by default (`rayon`),
/// work-assisting with `--mode assist` — and a timeout arms a deadline
/// that every parallel region checks. This is the single place mode
/// names are parsed; help text and tests key off the same list.
fn exec_options(args: &[String]) -> Result<Executor, CliError> {
    let threads = match flag_value(args, "-p")? {
        Some(s) => s
            .parse::<usize>()
            .map_err(|e| usage(format!("bad -p: {e}")))?,
        None => std::thread::available_parallelism().map_or(1, |v| v.get()),
    };
    let mode = flag_value(args, "--mode")?;
    let pin = has_flag(args, "--pin-threads");
    if pin && !matches!(mode.as_deref(), Some("assist")) {
        return Err(usage("--pin-threads requires --mode assist".to_string()));
    }
    // threads == 0 reaches the try_* constructors so the typed
    // BuildError (ZeroWorkers) produces the usage message.
    let exec = match mode.as_deref() {
        None => {
            if threads == 1 {
                Executor::sequential()
            } else {
                Executor::try_rayon(threads).map_err(|e| usage(format!("bad -p: {e}")))?
            }
        }
        Some("seq") => Executor::sequential(),
        Some("rayon") => Executor::try_rayon(threads).map_err(|e| usage(format!("bad -p: {e}")))?,
        Some("sim") => {
            Executor::try_simulated(threads).map_err(|e| usage(format!("bad -p: {e}")))?
        }
        Some("assist") => Executor::try_assist_with(ExecutorConfig::new(threads).pin_threads(pin))
            .map_err(|e| usage(format!("bad -p: {e}")))?,
        Some(other) => {
            return Err(usage(format!(
                "bad --mode {other:?} (seq|rayon|sim|assist)"
            )))
        }
    };
    if let Some(ms) = flag_value(args, "--timeout-ms")? {
        let ms = ms
            .parse::<u64>()
            .map_err(|e| usage(format!("bad --timeout-ms: {e}")))?;
        exec.set_deadline(Deadline::from_now(Duration::from_millis(ms)));
    }
    Ok(exec)
}

/// Writes an observability document to `path`, or to stdout when the
/// path is `-` (the conventional stdin/stdout placeholder).
fn write_doc(what: &str, path: &str, json: &str) -> Result<(), CliError> {
    if path == "-" {
        println!("{json}");
        return Ok(());
    }
    std::fs::write(path, json)
        .map_err(|e| CliError::Runtime(format!("cannot write {what} to {path}: {e}")))
}

/// Runs a command with `--metrics <path>` and `--trace <path>` support:
/// when either flag is given, the corresponding collection is enabled on
/// the executor before the command body runs, and the recorded snapshot
/// ([`RunMetrics`] JSON / Chrome trace-event JSON) is written afterwards
/// — even when the command fails, so aborted runs (timeouts, contained
/// panics) leave a diagnosable record. A command failure takes
/// precedence over an observability-write failure in the exit code, and
/// `-` as a path writes to stdout.
fn with_metrics<F>(args: &[String], exec: Executor, f: F) -> Result<(), CliError>
where
    F: FnOnce(&Executor) -> Result<(), CliError>,
{
    let metrics_path = flag_value(args, "--metrics")?;
    let trace_path = flag_value(args, "--trace")?;
    if metrics_path.is_some() {
        exec.set_metrics_enabled(true);
    }
    if trace_path.is_some() {
        exec.arm_trace();
    }
    let mut result = f(&exec);
    if let Some(path) = metrics_path {
        let json = exec.take_metrics().to_json();
        result = result.and(write_doc("metrics", &path, &json));
    }
    if let Some(path) = trace_path {
        let json = exec.take_trace().to_chrome_json();
        result = result.and(write_doc("trace", &path, &json));
    }
    result
}

/// `metrics-diff old.json new.json` — compares two `hcd-metrics-v1`
/// snapshots, prints the per-entry report, and exits 3 when any entry
/// regressed past the threshold. Exit 1 means a snapshot could not be
/// read or parsed; exit 0 means the comparison found no regression.
fn metrics_diff(args: &[String]) -> Result<(), CliError> {
    let old_path = args.get(1).ok_or_else(|| usage("missing old snapshot"))?;
    let new_path = args.get(2).ok_or_else(|| usage("missing new snapshot"))?;
    let mut opts = DiffOptions::default();
    if let Some(t) = flag_value(args, "--threshold")? {
        opts.threshold = t
            .parse::<f64>()
            .map_err(|e| usage(format!("bad --threshold: {e}")))?;
        opts.counter_threshold = opts.counter_threshold.max(opts.threshold);
    }
    if let Some(f) = flag_value(args, "--abs-floor-ns")? {
        opts.abs_floor_ns = f
            .parse::<f64>()
            .map_err(|e| usage(format!("bad --abs-floor-ns: {e}")))?;
    }
    opts.counters_only = has_flag(args, "--counters-only");
    let read_snapshot = |path: &str| -> Result<Snapshot, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
        Snapshot::parse(&text).map_err(|e| CliError::Runtime(format!("cannot parse {path}: {e}")))
    };
    let old = read_snapshot(old_path)?;
    let new = read_snapshot(new_path)?;
    // Sections the parser does not understand are excluded from the
    // comparison; say so, or schema drift between the two snapshots
    // would pass silently.
    for (path, snap) in [(old_path, &old), (new_path, &new)] {
        for section in &snap.unknown_sections {
            eprintln!("warning: {path}: ignoring unknown section `{section}`");
        }
    }
    let report = diff_metrics(&old, &new, &opts);
    print!("{report}");
    if report.regressed() {
        Err(CliError::Regression)
    } else {
        Ok(())
    }
}

fn pipeline(
    g: &CsrGraph,
    order: VertexOrder,
    exec: &Executor,
) -> Result<(CoreDecomposition, Hcd), CliError> {
    try_build_with_order(g, order, exec).map_err(par_err)
}

fn stats(path: &str, order: VertexOrder, exec: &Executor) -> Result<(), CliError> {
    let g = load(path)?;
    let (cores, hcd) = pipeline(&g, order, exec)?;
    println!("n     = {}", g.num_vertices());
    println!("m     = {}", g.num_edges());
    println!("davg  = {:.2}", g.avg_degree());
    println!("dmax  = {}", g.max_degree());
    println!("kmax  = {}", cores.kmax());
    println!("|T|   = {}", hcd.num_nodes());
    println!("roots = {}", hcd.roots().len());
    Ok(())
}

fn build(path: &str, out: &str, order: VertexOrder, exec: &Executor) -> Result<(), CliError> {
    let g = load(path)?;
    let (_, hcd) = pipeline(&g, order, exec)?;
    let file = std::fs::File::create(out)
        .map_err(|e| CliError::Runtime(format!("cannot create {out}: {e}")))?;
    hcd::core::io::write_hcd(&hcd, file)
        .map_err(|e| CliError::Runtime(format!("cannot write index: {e}")))?;
    println!("wrote {} nodes to {out}", hcd.num_nodes());
    Ok(())
}

fn parse_metric(m: Option<String>) -> Result<Metric, CliError> {
    let name = m.unwrap_or_else(|| "average-degree".into());
    Metric::ALL
        .into_iter()
        .find(|metric| metric.name() == name)
        .ok_or_else(|| usage(format!("unknown metric {name:?}")))
}

fn search(
    path: &str,
    metric: Option<String>,
    order: VertexOrder,
    exec: &Executor,
) -> Result<(), CliError> {
    let g = load(path)?;
    let metric = parse_metric(metric)?;
    let (cores, hcd) = pipeline(&g, order, exec)?;
    let ctx = SearchContext::try_with_executor(&g, &cores, &hcd, exec).map_err(par_err)?;
    match try_pbks(&ctx, &metric, exec).map_err(par_err)? {
        None => println!("graph is empty"),
        Some(best) => {
            println!("metric    = {}", metric.name());
            println!("best k    = {}", best.k);
            println!("score     = {:.6}", best.score);
            println!("|S|       = {}", best.primaries.n);
            println!("m(S)      = {}", best.primaries.m() as u64);
            println!("b(S)      = {}", best.primaries.b);
        }
    }
    Ok(())
}

fn core_query(path: &str, v: &str, k: &str) -> Result<(), CliError> {
    let g = load(path)?;
    let v: u32 = v.parse().map_err(|e| usage(format!("bad -v: {e}")))?;
    let k: u32 = k.parse().map_err(|e| usage(format!("bad -k: {e}")))?;
    if v as usize >= g.num_vertices() {
        return Err(CliError::Runtime(format!("vertex {v} out of range")));
    }
    let (cores, hcd) = pipeline(&g, VertexOrder::None, &Executor::sequential())?;
    match core_containing(&hcd, &cores, v, k) {
        None => println!(
            "vertex {v} has coreness {} < {k}: no such core",
            cores.coreness(v)
        ),
        Some(mut members) => {
            members.sort_unstable();
            println!("{}-core containing {v}: {} vertices", k, members.len());
            for chunk in members.chunks(16) {
                println!(
                    "  {}",
                    chunk
                        .iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                );
            }
        }
    }
    Ok(())
}

fn dot(path: &str, order: VertexOrder, exec: Executor) -> Result<(), CliError> {
    let g = load(path)?;
    let (_, hcd) = pipeline(&g, order, &exec)?;
    print!("{}", hcd.to_dot());
    Ok(())
}

/// Parses an optional numeric flag, falling back to `default`.
fn num_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(s) => s.parse().map_err(|e| usage(format!("bad {flag}: {e}"))),
    }
}

/// Renders nanoseconds in the most readable unit for its magnitude.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

/// `serve-bench <graph>` — builds the generation-0 snapshot, then drives
/// the seeded mixed read/update workload from `hcd_serve::run_workload`
/// through the shared executor, printing the summary and a per-boundary
/// latency report (p50/p99/p999) read back out of the emitted
/// `hcd-metrics-v1` snapshot. Metrics and histograms are always armed;
/// `--metrics` only controls whether the snapshot is also written out.
fn serve_bench(path: &str, args: &[String], exec: &Executor) -> Result<(), CliError> {
    let g = load(path)?;
    // --tenants / --offered-qps switch to the open-loop multi-tenant
    // driver; everything below is the historical closed loop.
    if flag_value(args, "--tenants")?.is_some() || flag_value(args, "--offered-qps")?.is_some() {
        return serve_bench_open_loop(path, &g, args, exec);
    }
    let cfg = WorkloadConfig {
        seed: num_flag(args, "--seed", 42u64)?,
        ops: num_flag(args, "--ops", 64usize)?,
        batch_size: num_flag(args, "--batch", 32usize)?,
        read_ratio: num_flag(args, "--read-ratio", 0.9f64)?,
        // Leave headroom above the current vertex count so inserts can
        // grow the graph and queries exercise unknown-id paths.
        universe: (g.num_vertices() as VertexId).max(2).saturating_mul(2),
        hot_fraction: num_flag(args, "--hot-fraction", 0.0f64)?,
    };
    if !(0.0..=1.0).contains(&cfg.read_ratio) {
        return Err(usage(format!(
            "bad --read-ratio {} (0..=1)",
            cfg.read_ratio
        )));
    }
    if !(0.0..=1.0).contains(&cfg.hot_fraction) {
        return Err(usage(format!(
            "bad --hot-fraction {} (0..=1)",
            cfg.hot_fraction
        )));
    }
    let arm_cache = has_flag(args, "--cache");
    let durable_dir = flag_value(args, "--durable")?;
    let metrics_path = flag_value(args, "--metrics")?;
    let trace_path = flag_value(args, "--trace")?;
    let events_path = flag_value(args, "--events")?;
    let stats_interval = num_flag(args, "--stats-interval", 0usize)?;
    // The latency report is part of the bench output, so histograms
    // (and the metrics they are drained through) are armed
    // unconditionally — `--metrics` only adds the file write.
    exec.set_metrics_enabled(true);
    exec.arm_histograms();
    if trace_path.is_some() {
        exec.arm_trace();
    }
    let mut recovery: Option<RecoveryReport> = None;
    let mut service = match &durable_dir {
        None => HcdService::try_new(&g, exec).map_err(par_err)?,
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let has_state = hcd::serve::checkpoint::list_checkpoints(dir)
                .map(|c| !c.is_empty())
                .unwrap_or(false);
            if has_state {
                let (svc, report) = HcdService::recover(dir, DurabilityConfig::default(), exec)
                    .map_err(recover_err)?;
                println!(
                    "recovered        = checkpoint seq {} + {} replayed wal record(s){}",
                    report.checkpoint_seq,
                    report.replayed,
                    if report.tail_was_truncated() {
                        " (torn tail truncated)"
                    } else {
                        ""
                    }
                );
                println!("replayed records = {}", report.replayed);
                println!("bytes scanned    = {}", report.bytes_scanned);
                println!("skipped ckpts    = {}", report.checkpoints_skipped);
                println!(
                    "recovery wall    = {:.3}ms",
                    report.wall_ns as f64 / 1_000_000.0
                );
                recovery = Some(report);
                svc
            } else {
                HcdService::try_new_durable(&g, dir, DurabilityConfig::default(), exec)
                    .map_err(serve_err)?
            }
        }
    };
    if arm_cache {
        service = service.with_cache(CacheConfig::default());
    }
    if let Some(p) = &events_path {
        let log = EventLog::create(p)
            .map_err(|e| CliError::Runtime(format!("cannot create event log {p}: {e}")))?;
        if let Some(r) = &recovery {
            log.recovery(r);
        }
        service.attach_event_log(log);
    }
    let start = std::time::Instant::now();
    let run_result = run_workload_with(&service, &cfg, exec, stats_interval, |done, s| {
        // Periodic in-flight report: peek (not drain) the histograms so
        // the final snapshot still covers the whole run.
        let mut parts: Vec<String> = Vec::new();
        for h in exec.histogram_snapshots() {
            if h.count > 0 && (h.name.starts_with("serve.query.") || h.name == "serve.apply") {
                parts.push(format!(
                    "{} p99={}",
                    h.name.trim_start_matches("serve."),
                    fmt_ns(h.quantile(0.99) as f64)
                ));
            }
        }
        println!(
            "in-flight        = op {done}/{} gen {} | {}",
            cfg.ops,
            s.final_generation,
            parts.join(" | ")
        );
    })
    .map_err(serve_err);
    let elapsed = start.elapsed();
    // Drain the executor exactly once; the same JSON document feeds the
    // latency report below and the optional --metrics file, and — like
    // `with_metrics` — is written even when the run failed.
    let json = exec.take_metrics().to_json();
    let mut doc_result: Result<(), CliError> = Ok(());
    if let Some(p) = &metrics_path {
        doc_result = doc_result.and(write_doc("metrics", p, &json));
    }
    if let Some(p) = &trace_path {
        let trace_json = exec.take_trace().to_chrome_json();
        doc_result = doc_result.and(write_doc("trace", p, &trace_json));
    }
    // A run failure takes precedence over an observability-write failure.
    let summary = run_result?;
    doc_result?;
    println!("graph            = {path}");
    if let Some(dir) = &durable_dir {
        println!("durable dir      = {dir}");
    }
    println!("ops              = {}", cfg.ops);
    println!("batch size       = {}", cfg.batch_size);
    println!("read ratio       = {}", cfg.read_ratio);
    println!("queries          = {}", summary.queries);
    println!("single queries   = {}", summary.single_queries);
    println!("query batches    = {}", summary.query_batches);
    println!("update batches   = {}", summary.update_batches);
    println!("no-op batches    = {}", summary.noop_update_batches);
    println!("updates applied  = {}", summary.updates_applied);
    println!("updates skipped  = {}", summary.updates_skipped);
    println!("positive answers = {}", summary.positive_answers);
    println!("final generation = {}", summary.final_generation);
    println!("elapsed          = {:.3}s", elapsed.as_secs_f64());
    if let Some(stats) = service.cache_stats() {
        println!(
            "cache            = hits {} misses {} evictions {} entries {} bytes {}",
            stats.hits, stats.misses, stats.evictions, stats.entries, stats.bytes
        );
    }
    // The latency report is read back out of the emitted JSON snapshot
    // (not the live executor), so what is printed is exactly what a
    // metrics-diff against the same file would gate on.
    let snap = Snapshot::parse(&json)
        .map_err(|e| CliError::Runtime(format!("emitted metrics snapshot did not parse: {e}")))?;
    let mut hists: Vec<&SnapshotHistogram> = snap
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("serve."))
        .collect();
    hists.sort_by(|a, b| a.name.cmp(&b.name));
    if !hists.is_empty() {
        println!("latency (p50/p99/p999/max from the emitted hcd-metrics-v1 histograms)");
        for h in hists {
            println!(
                "  {:<18} p50={:<8} p99={:<8} p999={:<8} max={:<8} n={}",
                h.name,
                fmt_ns(h.p50_ns),
                fmt_ns(h.p99_ns),
                fmt_ns(h.p999_ns),
                fmt_ns(h.max_ns),
                h.count as u64
            );
        }
    }
    if let Some(p) = &events_path {
        let lines = std::fs::read_to_string(p).map_or(0, |s| s.lines().count());
        println!("events           = {lines} line(s) -> {p}");
    }
    // The run itself succeeded; surface a tail truncation as the
    // distinct warning exit code after everything is printed.
    if let Some(r) = recovery {
        if r.tail_was_truncated() {
            return Err(CliError::TornTail(format!(
                "recovered after truncating {} byte(s) of torn WAL tail",
                r.truncated_bytes
            )));
        }
    }
    Ok(())
}

/// The open-loop multi-tenant `serve-bench` mode (`--tenants` /
/// `--offered-qps`). Registers N tenant copies of the graph in one
/// `ServiceRegistry` (each with its own epoch cell, `serve.<tenant>.*`
/// counter namespace, optional per-tenant cache, and — with
/// `--durable` — its own WAL subdirectory), then offers load at a
/// fixed virtual rate through each tenant's bounded ingress queue.
/// Reports offered rate, achieved throughput, shed fraction, cache
/// hits, and p50/p99 from the shared histogram layer. The arrival
/// schedule and every shed decision are pure functions of the seed and
/// knobs under `--mode seq -p 1`; a fully-shed run exits 5.
fn serve_bench_open_loop(
    path: &str,
    g: &CsrGraph,
    args: &[String],
    exec: &Executor,
) -> Result<(), CliError> {
    let tenants: usize = num_flag(args, "--tenants", 2usize)?;
    if tenants == 0 || tenants > 64 {
        return Err(usage(format!("bad --tenants {tenants} (1..=64)")));
    }
    let olcfg = OpenLoopConfig {
        seed: num_flag(args, "--seed", 42u64)?,
        offered_qps: num_flag(args, "--offered-qps", 10_000u64)?,
        ticks: num_flag(args, "--ticks", 1000u64)?,
        drain_batch: num_flag(args, "--batch", 32usize)?,
        watermark: num_flag(args, "--watermark", 256usize)?,
        deadline_ms: match flag_value(args, "--deadline-ms")? {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|e| usage(format!("bad --deadline-ms: {e}")))?,
            ),
        },
        update_every: num_flag(args, "--update-every", 100u64)?,
        // Same headroom rule as the closed loop.
        universe: (g.num_vertices() as VertexId).max(2).saturating_mul(2),
        hot_fraction: num_flag(args, "--hot-fraction", 0.5f64)?,
    };
    if olcfg.offered_qps == 0 {
        return Err(usage("--offered-qps must be > 0"));
    }
    if olcfg.ticks == 0 {
        return Err(usage("--ticks must be > 0"));
    }
    if !(0.0..=1.0).contains(&olcfg.hot_fraction) {
        return Err(usage(format!(
            "bad --hot-fraction {} (0..=1)",
            olcfg.hot_fraction
        )));
    }
    let no_cache = has_flag(args, "--no-cache");
    let durable_dir = flag_value(args, "--durable")?;
    let metrics_path = flag_value(args, "--metrics")?;
    exec.set_metrics_enabled(true);
    exec.arm_histograms();
    let mut reg = match &durable_dir {
        Some(dir) => ServiceRegistry::with_base_dir(dir),
        None => ServiceRegistry::new(),
    };
    let tcfg = TenantConfig {
        cache: (!no_cache).then(CacheConfig::default),
        durability: durable_dir.as_ref().map(|_| DurabilityConfig::default()),
    };
    let names: Vec<String> = (0..tenants).map(|i| format!("t{i}")).collect();
    for name in &names {
        reg.try_register(name, g, &tcfg, exec)
            .map_err(|e| CliError::Runtime(format!("cannot register tenant {name}: {e}")))?;
    }
    println!("graph            = {path}");
    if let Some(dir) = &durable_dir {
        println!("durable dir      = {dir} (one subdirectory per tenant)");
    }
    println!("tenants          = {tenants}");
    println!(
        "offered          = {} qps x {:.3} virtual s per tenant",
        olcfg.offered_qps,
        olcfg.ticks as f64 / 1000.0
    );
    println!("drain batch      = {}", olcfg.drain_batch);
    println!("watermark        = {}", olcfg.watermark);
    println!(
        "deadline         = {}",
        olcfg
            .deadline_ms
            .map_or("none".to_string(), |ms| format!("{ms}ms"))
    );
    println!(
        "cache            = {}",
        if no_cache { "disarmed" } else { "armed" }
    );
    let start = std::time::Instant::now();
    let mut rows: Vec<(String, OpenLoopSummary, Option<CacheStats>)> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let svc = reg.get(name).expect("registered above");
        let ingress = IngressQueue::for_tenant(
            AdmissionConfig {
                watermark: olcfg.watermark,
                default_deadline: None,
            },
            name,
        );
        // Per-tenant seed offset: distinct but reproducible streams.
        let cfg = OpenLoopConfig {
            seed: olcfg.seed.wrapping_add(i as u64),
            ..olcfg
        };
        let s = run_open_loop(&svc, &ingress, &cfg, exec).map_err(serve_err)?;
        rows.push((name.clone(), s, svc.cache_stats()));
    }
    let elapsed = start.elapsed();
    // One drain feeds both the latency report and the optional file,
    // exactly like the closed loop.
    let json = exec.take_metrics().to_json();
    if let Some(p) = &metrics_path {
        write_doc("metrics", p, &json)?;
    }
    let (mut offered, mut answered, mut shed) = (0u64, 0u64, 0u64);
    for (name, s, cache) in &rows {
        offered += s.offered;
        answered += s.answered;
        shed += s.shed();
        let cache_col = cache.map_or("-".to_string(), |c| {
            format!("hits {}/{}", c.hits, c.hits + c.misses)
        });
        println!(
            "tenant {name:<10}= offered {} answered {} shed {} ({:.2}%) maxdepth {} gen {} cache {}",
            s.offered,
            s.answered,
            s.shed(),
            100.0 * s.shed_fraction(),
            s.max_depth,
            s.final_generation,
            cache_col
        );
    }
    let virtual_secs = olcfg.ticks as f64 / 1000.0;
    println!("offered total    = {offered}");
    println!("answered total   = {answered}");
    println!(
        "achieved         = {:.1} qps per tenant (virtual time)",
        answered as f64 / (tenants as f64 * virtual_secs)
    );
    println!(
        "shed fraction    = {:.4}",
        if offered == 0 {
            0.0
        } else {
            shed as f64 / offered as f64
        }
    );
    println!("elapsed          = {:.3}s (wall)", elapsed.as_secs_f64());
    let snap = Snapshot::parse(&json)
        .map_err(|e| CliError::Runtime(format!("emitted metrics snapshot did not parse: {e}")))?;
    let mut hists: Vec<&SnapshotHistogram> = snap
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("serve."))
        .collect();
    hists.sort_by(|a, b| a.name.cmp(&b.name));
    if !hists.is_empty() {
        println!("latency (p50/p99/p999/max from the emitted hcd-metrics-v1 histograms)");
        for h in hists {
            println!(
                "  {:<18} p50={:<8} p99={:<8} p999={:<8} max={:<8} n={}",
                h.name,
                fmt_ns(h.p50_ns),
                fmt_ns(h.p99_ns),
                fmt_ns(h.p999_ns),
                fmt_ns(h.max_ns),
                h.count as u64
            );
        }
    }
    if offered > 0 && answered == 0 {
        return Err(CliError::Saturated);
    }
    Ok(())
}

/// `wal-inspect <dir|wal.log>` — scans a write-ahead log (read-only)
/// and reports its records and tail state. Exit 0 for a clean log, 4
/// for a torn tail, 1 for mid-log corruption.
fn wal_inspect(path: &str) -> Result<(), CliError> {
    use hcd::serve::wal::scan_wal_file;
    let p = std::path::Path::new(path);
    let wal_path = if p.is_dir() {
        p.join(WAL_FILE_NAME)
    } else {
        p.to_path_buf()
    };
    if p.is_dir() {
        let ckpts = hcd::serve::checkpoint::list_checkpoints(p)
            .map_err(|e| CliError::Runtime(format!("cannot list {path}: {e}")))?;
        let seqs: Vec<String> = ckpts.iter().map(|(s, _)| s.to_string()).collect();
        println!("checkpoints      = [{}]", seqs.join(", "));
    }
    let scan = scan_wal_file(&wal_path)
        .map_err(|e| CliError::Runtime(format!("cannot read {}: {e}", wal_path.display())))?;
    println!("wal              = {}", wal_path.display());
    println!("records          = {}", scan.records.len());
    let updates: usize = scan.records.iter().map(|r| r.updates.len()).sum();
    println!("updates          = {updates}");
    if let (Some(first), Some(last)) = (scan.records.first(), scan.records.last()) {
        println!("seq range        = {}..={}", first.seq, last.seq);
    }
    println!("valid bytes      = {}", scan.valid_len());
    // One trailing machine-grepable roll-up of everything above.
    let payload_bytes: u64 = scan
        .records
        .iter()
        .map(|r| hcd::serve::wal::encode_payload(r.seq, &r.updates).len() as u64)
        .sum();
    let seq_range = match (scan.records.first(), scan.records.last()) {
        (Some(first), Some(last)) => format!("seq {}..={}", first.seq, last.seq),
        _ => "seq -".to_string(),
    };
    let tail_word = match scan.tail {
        TailStatus::Clean => "clean",
        TailStatus::TornTail { .. } => "torn",
        TailStatus::Corrupt { .. } => "corrupt",
    };
    let summary = format!(
        "summary          = {} record(s), {} payload byte(s), {}, tail {}",
        scan.records.len(),
        payload_bytes,
        seq_range,
        tail_word
    );
    match scan.tail {
        TailStatus::Clean => {
            println!("tail             = clean");
            println!("{summary}");
            Ok(())
        }
        TailStatus::TornTail {
            torn_bytes,
            valid_len,
        } => {
            println!("tail             = torn ({torn_bytes} byte(s) past offset {valid_len})");
            println!("{summary}");
            Err(CliError::TornTail(format!(
                "torn WAL tail: {torn_bytes} byte(s) would be truncated on recovery"
            )))
        }
        TailStatus::Corrupt { offset, reason } => {
            println!("tail             = corrupt at byte {offset}: {reason}");
            println!("{summary}");
            Err(CliError::Runtime(format!(
                "corrupt WAL record at byte {offset}: {reason}"
            )))
        }
    }
}

fn gen(model: &str, out: &str, seed: Option<String>) -> Result<(), CliError> {
    let seed: u64 = seed
        .map(|s| s.parse().map_err(|e| usage(format!("bad --seed: {e}"))))
        .transpose()?
        .unwrap_or(42);
    let g = match model {
        "rmat" => rmat(14, 8, None, seed),
        "ba" => barabasi_albert(10_000, 4, seed),
        "er" => gnp(10_000, 0.001, seed),
        "ws" => watts_strogatz(10_000, 8, 0.05, seed),
        "tree" => core_tree(3, 4, 16, seed),
        other => {
            return Err(usage(format!(
                "unknown model {other:?} (rmat|ba|er|ws|tree)"
            )))
        }
    };
    let file = std::fs::File::create(out)
        .map_err(|e| CliError::Runtime(format!("cannot create {out}: {e}")))?;
    hcd::graph::io::write_edge_list(&g, file).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!(
        "wrote {} ({} vertices, {} edges)",
        out,
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}
