//! Offline shim for `rayon`: the subset this workspace uses —
//! `ThreadPoolBuilder` / `ThreadPool::scope` / `Scope::spawn` —
//! implemented on `std::thread::scope`.
//!
//! The `par` crate spawns at most one task per logical worker per region,
//! so mapping each `spawn` to one OS thread preserves the execution model
//! (real concurrency, OS-scheduled interleavings) without a work-stealing
//! runtime. Panics in spawned tasks propagate when the scope joins, like
//! rayon; the fault-tolerant executor catches them before they reach the
//! scope boundary.

use std::fmt;

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of logical workers (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |v| v.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Error building a pool. The shim's build cannot fail, but the type is
/// kept so callers handle the real rayon's failure mode.
pub struct ThreadPoolBuildError(String);

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreadPoolBuildError({})", self.0)
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A pool of `num_threads` logical workers. Threads are spawned per
/// scope rather than kept hot; capacity is a bookkeeping number.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with a scope on which tasks can be spawned; returns when
    /// every spawned task has completed. Panics if any task panicked.
    pub fn scope<'env, OP, R>(&self, op: OP) -> R
    where
        OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
        R: Send,
    {
        std::thread::scope(|s| op(&Scope { inner: s }))
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreadPool(num_threads={})", self.num_threads)
    }
}

/// Scope handle passed to [`ThreadPool::scope`] closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; the owning
    /// `scope` call joins it before returning.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.into_inner(), 4);
    }

    #[test]
    fn nested_spawn_works() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.into_inner(), 2);
    }

    #[test]
    fn panic_in_task_propagates_at_scope_exit() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("task failure"));
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn zero_threads_defaults_to_available() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
