//! Offline shim for `rand_chacha`: a real ChaCha8 keystream generator
//! behind the workspace `rand` shim's traits.
//!
//! The block function is the standard ChaCha construction (RFC 8439
//! layout, 8 rounds), keyed from a 32-byte seed with a zero nonce and a
//! 64-bit block counter. Streams are deterministic per seed but not
//! bit-compatible with the real `rand_chacha` (which the workspace never
//! relies on).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// Deterministic seedable RNG over a ChaCha8 keystream.
#[derive(Clone)]
pub struct ChaCha8Rng {
    /// Constant + key words; counter and nonce are tracked separately.
    key: [u32; 8],
    counter: u64,
    /// Keystream words of the current block not yet consumed.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "refill".
    idx: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, inp) in state.iter_mut().zip(input) {
            *w = w.wrapping_add(inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_has_reasonable_bit_balance() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64_000 bits total; a real keystream stays near half ones.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn works_with_rng_helpers() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let x = rng.gen_range(0..10u32);
            assert!(x < 10);
        }
    }
}
