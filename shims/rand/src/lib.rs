//! Offline shim for `rand`: the trait surface this workspace uses
//! (`Rng::gen`, `gen_range`, `gen_bool`; `SeedableRng::seed_from_u64`).
//!
//! Generators implement [`RngCore`]; the blanket [`Rng`] impl supplies the
//! sampling helpers. Value streams are *not* bit-compatible with the real
//! `rand` crate — every consumer in this workspace only relies on
//! determinism for a fixed seed, which this shim preserves.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, with the `seed_from_u64` convenience expanding
/// a word into a full seed via SplitMix64 (same approach as real rand).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        sm.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed-expansion generator (public: the fault-injection
/// planner in `hcd-par` reuses the same construction without a dep).
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 only when the range covers the whole domain;
                // then any word is a valid sample.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10u32);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5..=5usize);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
