//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! exposing the API subset used by `crates/bench` (`criterion_group!`,
//! `criterion_main!`, `Criterion`, benchmark groups, `Bencher::iter`).
//!
//! Reports mean time per iteration to stdout; no statistics, plots, or
//! baselines. Good enough to keep the bench targets compiling and
//! runnable offline.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measure: self.measurement_time,
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!("{id}: {:.1} ns/iter", b.mean_ns);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget is spent.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Estimate iterations per sample from the warm-up rate.
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measure.as_secs_f64() / self.samples.max(1) as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        let mut total_ns = 0.0;
        let mut total_iters: u64 = 0;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total_ns += t0.elapsed().as_nanos() as f64;
            total_iters += iters_per_sample;
        }
        self.mean_ns = total_ns / total_iters.max(1) as f64;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_function("noop2", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    fn target(c: &mut Criterion) {
        c.bench_function("t", |b| b.iter(|| black_box(0)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = target
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
