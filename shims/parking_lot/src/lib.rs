//! Offline shim for `parking_lot`: the subset this workspace uses
//! (`Mutex`, `RwLock`), implemented on `std::sync`.
//!
//! Matches parking_lot's API shape — `lock()` returns a guard directly,
//! not a `Result` — and its no-poisoning semantics: a lock held across a
//! panic is recovered, not poisoned. That behaviour is load-bearing for
//! the fault-tolerant executor in `crates/par`, which catches panics in
//! worker chunks and must keep shared accumulators usable afterwards.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion lock, parking_lot-style (no lock poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock, parking_lot-style (no lock poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is recovered, not poisoned.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        assert_eq!(l.into_inner(), 7);
    }
}
