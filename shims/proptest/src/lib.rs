//! Offline shim for `proptest`: seeded random-input testing with the
//! `proptest!` / `prop_assert!` macro surface this workspace uses.
//!
//! Inputs are drawn from [`Strategy`] values with a deterministic
//! per-test RNG (seeded from the test path and case index), so failures
//! reproduce across runs. No shrinking: a failing case reports its inputs
//! via the assertion message and its case number instead.

use std::ops::Range;

/// Deterministic per-case RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's path and the case index, so every test gets
    /// an independent, reproducible stream.
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize, u8, u16);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
        )
    }
}

/// Types with a canonical whole-domain strategy, used via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `T` (`any::<bool>()` etc.).
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element count for [`vec`]: an exact count or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `prop::` paths as in the real crate.
pub mod prop {
    pub use crate::collection;
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (what `prop_assert!` returns early with).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::new_value(&$strat, &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
    )*};
}

/// Everything the `proptest::prelude::*` glob is expected to provide.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::TestRng::deterministic("x", 3);
        let mut b = crate::TestRng::deterministic("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..10u32, y in 0..5usize) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5, "y = {}", y);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec((0..7u32, 0..7u32), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 7 && b < 7);
            }
        }

        #[test]
        fn exact_size_and_any(picks in prop::collection::vec(any::<bool>(), 25)) {
            prop_assert_eq!(picks.len(), 25);
        }

        #[test]
        fn early_return_ok_is_supported(x in 0..2u32) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1, "only 0 and 1 possible, got {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    // The nested #[test] produced by the macro expansion is deliberately
    // unreachable by the harness; we call it by hand below.
    #[allow(unnameable_test_items)]
    fn failing_assert_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            #[test]
            fn inner(x in 0..1u32) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
