//! Shared harness for the table/figure benchmark targets.
//!
//! Every `benches/*.rs` target regenerates one table or figure of the
//! paper. Configuration comes from the environment:
//!
//! * `HCD_BENCH_SCALE` — `tiny` | `small` (default) | `full`: stand-in
//!   dataset sizes.
//! * `HCD_BENCH_MODE` — `sim` (default) | `real` | `assist`: how
//!   parallel runtimes are obtained. `sim` uses the work-span
//!   simulation of `hcd-par` (required on single-core machines, see
//!   DESIGN.md substitution 1); `real` measures wall time on actual
//!   rayon threads with the static chunk schedule; `assist` measures
//!   wall time on the work-assisting self-scheduling pool.
//! * `HCD_BENCH_DATASETS` — comma-separated abbreviations to restrict
//!   the dataset list.
//! * `HCD_BENCH_REPS` — repetitions per measurement (default 1; the
//!   minimum is reported).
//! * `HCD_BENCH_METRICS` — base path for per-region observability
//!   snapshots: executors from [`executor`] run with region metering
//!   enabled, and targets call [`dump_metrics`] to write
//!   `<base>.<label>.json` (schema `hcd-metrics-v1`) per measurement.
//! * `HCD_BENCH_TRACE` — base path for per-thread span timelines:
//!   executors from [`executor`] run with tracing armed, and targets
//!   call [`dump_trace`] to write `<base>.<label>.json` (schema
//!   `hcd-trace-v1`, Chrome trace-event JSON) per measurement.

use std::time::{Duration, Instant};

use hcd_datasets::{Dataset, Scale, DATASETS};
use hcd_par::{Executor, RunMetrics, Trace};

/// The thread counts swept in the paper's figures.
pub const THREAD_SWEEP: [usize; 5] = [1, 5, 10, 20, 40];

/// The six datasets the paper plots in its figures.
pub const FIGURE_DATASETS: [&str; 6] = ["LJ", "H", "O", "FS", "SK", "UK"];

/// How parallel runtimes are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// Work-span simulation (single-core friendly).
    Sim,
    /// Real wall time on rayon threads (static chunk schedule).
    Real,
    /// Real wall time on the work-assisting self-scheduling pool.
    Assist,
}

impl BenchMode {
    /// Reads `HCD_BENCH_MODE`.
    pub fn from_env() -> BenchMode {
        match std::env::var("HCD_BENCH_MODE").as_deref() {
            Ok("real") => BenchMode::Real,
            Ok("assist") => BenchMode::Assist,
            _ => BenchMode::Sim,
        }
    }
}

/// Repetitions per measurement (minimum is reported).
pub fn reps() -> usize {
    std::env::var("HCD_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(1)
}

/// An executor for `p` logical threads under the ambient bench mode.
/// `p == 1` always runs truly sequentially. With `HCD_BENCH_METRICS`
/// set, the executor records per-region metrics (see [`dump_metrics`]).
pub fn executor(p: usize) -> Executor {
    let exec = if p == 1 {
        Executor::sequential()
    } else {
        match BenchMode::from_env() {
            BenchMode::Sim => Executor::simulated(p),
            BenchMode::Real => Executor::rayon(p),
            BenchMode::Assist => Executor::assist(p),
        }
    };
    if metrics_base().is_some() {
        exec.set_metrics_enabled(true);
    }
    if trace_base().is_some() {
        exec.arm_trace();
    }
    exec
}

/// The `HCD_BENCH_METRICS` base path, if observability is requested.
pub fn metrics_base() -> Option<String> {
    std::env::var("HCD_BENCH_METRICS")
        .ok()
        .filter(|s| !s.is_empty())
}

/// The `HCD_BENCH_TRACE` base path, if span timelines are requested.
pub fn trace_base() -> Option<String> {
    std::env::var("HCD_BENCH_TRACE")
        .ok()
        .filter(|s| !s.is_empty())
}

/// Sanitizes a measurement label into a filename fragment.
fn safe_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Drains the executor's accumulated region metrics and, when
/// `HCD_BENCH_METRICS` is set, writes them to `<base>.<label>.json`
/// (label sanitized to `[A-Za-z0-9._-]`). Always returns the snapshot,
/// so targets can also inspect imbalance ratios programmatically.
pub fn dump_metrics(exec: &Executor, label: &str) -> RunMetrics {
    let m = exec.take_metrics();
    if let Some(base) = metrics_base() {
        let path = format!("{base}.{}.json", safe_label(label));
        if let Err(e) = std::fs::write(&path, m.to_json()) {
            eprintln!("warning: cannot write metrics to {path}: {e}");
        }
    }
    m
}

/// Drains the executor's trace buffers and, when `HCD_BENCH_TRACE` is
/// set, writes the Chrome trace-event JSON to `<base>.<label>.json`
/// (label sanitized as in [`dump_metrics`]). Taking a trace disarms the
/// session, so when the env var is set the executor is re-armed for the
/// next measurement — mirroring how metering stays enabled across
/// [`dump_metrics`] calls. Always returns the trace, so targets can
/// also inspect the event stream programmatically.
pub fn dump_trace(exec: &Executor, label: &str) -> Trace {
    let t = exec.take_trace();
    if let Some(base) = trace_base() {
        let path = format!("{base}.{}.json", safe_label(label));
        if let Err(e) = std::fs::write(&path, t.to_chrome_json()) {
            eprintln!("warning: cannot write trace to {path}: {e}");
        }
        exec.arm_trace();
    }
    t
}

/// Runs `f(exec)` and returns its (simulated or wall) duration plus the
/// result. In simulation mode, parallel regions are re-priced at their
/// critical path; in real/sequential mode this is plain wall time.
pub fn time_once<T>(exec: &Executor, f: impl FnOnce(&Executor) -> T) -> (T, Duration) {
    exec.take_sim_stats(); // reset
    let t0 = Instant::now();
    let out = f(exec);
    let wall = t0.elapsed();
    let dur = if exec.is_simulated() {
        exec.take_sim_stats().simulated_time(wall)
    } else {
        wall
    };
    (out, dur)
}

/// Best-of-`reps()` timing.
pub fn time_best<T>(exec: &Executor, mut f: impl FnMut(&Executor) -> T) -> (T, Duration) {
    let (mut out, mut best) = time_once(exec, &mut f);
    for _ in 1..reps() {
        let (o, d) = time_once(exec, &mut f);
        if d < best {
            best = d;
            out = o;
        }
    }
    (out, best)
}

/// The dataset list honoring `HCD_BENCH_DATASETS`, restricted to
/// `wanted` when that is non-empty.
pub fn datasets(wanted: &[&str]) -> Vec<&'static Dataset> {
    let filter = std::env::var("HCD_BENCH_DATASETS").ok();
    DATASETS
        .iter()
        .filter(|d| {
            let in_wanted = wanted.is_empty() || wanted.contains(&d.abbrev);
            let in_env = filter
                .as_deref()
                .map_or(true, |f| f.split(',').any(|a| a.trim() == d.abbrev));
            in_wanted && in_env
        })
        .collect()
}

/// The ambient scale.
pub fn scale() -> Scale {
    Scale::from_env()
}

/// Prints the standard header every target emits.
pub fn banner(what: &str) {
    println!("==========================================================");
    println!("{what}");
    println!(
        "scale={:?} mode={:?} reps={}",
        scale(),
        BenchMode::from_env(),
        reps()
    );
    println!("==========================================================");
}

/// Formats a duration in seconds with three significant decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// A speedup ratio `base / other`, guarded against zero.
pub fn ratio(base: Duration, other: Duration) -> f64 {
    let o = other.as_secs_f64();
    if o <= 0.0 {
        f64::NAN
    } else {
        base.as_secs_f64() / o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_p1_is_sequential() {
        assert_eq!(executor(1).mode_name(), "seq");
    }

    #[test]
    fn time_once_sim_reprices() {
        let exec = Executor::simulated(4);
        let (sum, d) = time_once(&exec, |e| {
            let acc = std::sync::atomic::AtomicU64::new(0);
            e.for_each_index(10_000, |i| {
                acc.fetch_add(i as u64, std::sync::atomic::Ordering::Relaxed);
            });
            acc.into_inner()
        });
        assert_eq!(sum, 10_000u64 * 9_999 / 2);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn dataset_filter() {
        let all = datasets(&[]);
        assert_eq!(all.len(), 10);
        let figs = datasets(&FIGURE_DATASETS);
        assert_eq!(figs.len(), 6);
    }

    #[test]
    fn dump_metrics_returns_snapshot_without_env() {
        let exec = Executor::sequential().with_metrics();
        exec.region("bench.test").for_each_chunk(
            8,
            || (),
            |_, _, range| {
                std::hint::black_box(range.len());
            },
        );
        let m = dump_metrics(&exec, "unit");
        assert!(m.get("bench.test").is_some());
        // Drained: a second dump is empty.
        assert!(dump_metrics(&exec, "unit").is_empty());
    }

    #[test]
    fn dump_trace_returns_events_without_env() {
        let exec = Executor::sequential().with_trace();
        exec.region("bench.trace").for_each_chunk(
            8,
            || (),
            |_, _, range| {
                std::hint::black_box(range.len());
            },
        );
        let t = dump_trace(&exec, "unit");
        assert!(
            t.events
                .iter()
                .any(|e| e.kind == hcd_par::EventKind::RegionEnter),
            "span events recorded"
        );
        // Drained and (without HCD_BENCH_TRACE) left disarmed.
        assert!(dump_trace(&exec, "unit").events.is_empty());
        assert!(!exec.trace_armed());
    }

    #[test]
    fn ratio_guards_zero() {
        assert!(ratio(Duration::from_secs(1), Duration::ZERO).is_nan());
        assert_eq!(ratio(Duration::from_secs(2), Duration::from_secs(1)), 2.0);
    }
}
