//! Extension: incremental core maintenance vs recomputation.
//!
//! For each dataset, applies a mixed batch of edge insertions and
//! removals, maintaining coreness incrementally, and compares the
//! per-update cost with one full Batagelj-Zaversnik recomputation —
//! the headline economics of dynamic maintenance ([15] in the paper's
//! references).

use std::time::Instant;

use hcd_bench::{banner, datasets, scale, secs};
use hcd_decomp::core_decomposition;
use hcd_dynamic::DynamicCore;
use rand::{Rng, SeedableRng};

fn main() {
    banner("Extension: incremental core maintenance vs recomputation");
    println!(
        "{:<8} {:>9} {:>14} {:>14} {:>10}",
        "Dataset", "updates", "per-update", "recompute(s)", "advantage"
    );
    for d in datasets(&[]) {
        let g = d.generate(scale());
        let mut dc = DynamicCore::from_csr(&g);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xD1);
        let n = g.num_vertices() as u32;
        let mut known: Vec<(u32, u32)> = g.edges().collect();

        let updates = 1_000usize;
        let t0 = Instant::now();
        for _ in 0..updates {
            if rng.gen_bool(0.6) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if dc.insert_edge(u, v) {
                    known.push((u, v));
                }
            } else {
                let i = rng.gen_range(0..known.len());
                let (u, v) = known.swap_remove(i);
                dc.remove_edge(u, v);
            }
        }
        let incremental = t0.elapsed();

        let snapshot = dc.graph().to_csr();
        let t0 = Instant::now();
        let fresh = core_decomposition(&snapshot);
        let recompute = t0.elapsed();
        assert_eq!(dc.coreness_slice(), fresh.as_slice(), "{}", d.abbrev);

        let per_update = incremental / updates as u32;
        println!(
            "{:<8} {:>9} {:>12}us {:>14} {:>9.0}x",
            d.abbrev,
            updates,
            per_update.as_micros(),
            secs(recompute),
            recompute.as_secs_f64() / per_update.as_secs_f64().max(1e-12),
        );
    }
    println!("\n(expected: per-update cost orders of magnitude below one");
    println!(" recomputation — updates touch only the local subcore.)");
}
