//! Table IV: PBKS-D on densest subgraph & maximum clique.
//!
//! Columns: CoreApp davg and time; Opt-D time (its davg equals PBKS-D's
//! by construction); PBKS-D davg and time; whether the maximum clique is
//! contained in PBKS-D's output S*; and |S*|/n.

use hcd_bench::{banner, datasets, executor, scale, secs, time_best, THREAD_SWEEP};
use hcd_core::phcd;
use hcd_decomp::core_decomposition;
use hcd_search::clique::{contained_in, max_clique};
use hcd_search::densest::{coreapp, opt_d, pbks_d};
use hcd_search::SearchContext;

fn main() {
    banner("Table IV: PBKS-D on densest subgraph & maximum clique");
    let p_max = *THREAD_SWEEP.last().unwrap();
    println!(
        "{:<8} | {:>9} {:>8} | {:>8} | {:>9} {:>8} | {:>6} {:>9}",
        "Dataset", "CoreApp", "time(s)", "OptD(s)", "PBKS-D", "time(s)", "MC⊆S*", "|S*|/n"
    );
    for d in datasets(&[]) {
        let g = d.generate(scale());
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &executor(p_max));
        let ctx = SearchContext::with_executor(&g, &cores, &hcd, &executor(p_max));

        let (capp, capp_t) = time_best(&executor(1), |_| coreapp(&g, &cores));
        let capp_davg = capp.map(|(_, d)| d).unwrap_or(f64::NAN);

        let (od, od_t) = time_best(&executor(1), |_| opt_d(&ctx));
        let od = od.expect("non-empty graph");

        let par = executor(p_max);
        let (pd, pd_t) = time_best(&par, |e| pbks_d(&ctx, e));
        let pd = pd.expect("non-empty graph");
        assert_eq!(od.score, pd.score, "Opt-D and PBKS-D must agree");
        assert!(
            pd.score >= capp_davg - 1e-9,
            "PBKS-D must match/beat CoreApp"
        );

        let s_star = hcd.subtree_vertices(pd.node);
        let mc = max_clique(&g, &cores);
        let contained = contained_in(&mc, &s_star);

        println!(
            "{:<8} | {:>9.2} {:>8} | {:>8} | {:>9.2} {:>8} | {:>6} {:>8.3}%",
            d.abbrev,
            capp_davg,
            secs(capp_t),
            secs(od_t),
            pd.score,
            secs(pd_t),
            if contained { "yes" } else { "no" },
            100.0 * s_star.len() as f64 / g.num_vertices() as f64,
        );
    }
    println!("\n(paper shape: PBKS-D davg >= CoreApp davg, equal to Opt-D; PBKS-D");
    println!(" fastest; MC ⊆ S* on most datasets; |S*| a small fraction of n.)");
}
