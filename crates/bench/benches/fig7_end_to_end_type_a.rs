//! Figure 7: end-to-end type-A search — (PKC + PHCD + PBKS)'s speedup
//! over (PKC + LCPS + BKS), inputs included.

use hcd_bench::{
    banner, datasets, executor, ratio, scale, time_best, FIGURE_DATASETS, THREAD_SWEEP,
};
use hcd_core::{lcps, phcd};
use hcd_decomp::pkc_core_decomposition;
use hcd_search::bks::bks_scores;
use hcd_search::pbks::pbks_scores;
use hcd_search::{Metric, SearchContext};

fn main() {
    banner("Figure 7: (PKC+PHCD+PBKS)'s speedup to (PKC+LCPS+BKS), type-A");
    let metric = Metric::AverageDegree;
    print!("{:<8}", "Dataset");
    for p in THREAD_SWEEP {
        print!(" {:>8}", format!("p={p}"));
    }
    println!();
    for d in datasets(&FIGURE_DATASETS) {
        let g = d.generate(scale());
        // Serial baseline pipeline.
        let seq = executor(1);
        let (cores, pkc1) = time_best(&seq, |e| pkc_core_decomposition(&g, e));
        let (hcd1, lcps1) = time_best(&seq, |_| lcps(&g, &cores));
        let (ctx1, pre1) = time_best(&seq, |e| SearchContext::with_executor(&g, &cores, &hcd1, e));
        let (_, bks1) = time_best(&seq, |_| bks_scores(&ctx1, &metric));
        let base = pkc1 + lcps1 + pre1 + bks1;

        print!("{:<8}", d.abbrev);
        for p in THREAD_SWEEP {
            let exec = executor(p);
            let (cores_p, t_pkc) = time_best(&exec, |e| pkc_core_decomposition(&g, e));
            let (hcd_p, t_phcd) = time_best(&exec, |e| phcd(&g, &cores_p, e));
            let (ctx_p, t_pre) = time_best(&exec, |e| {
                SearchContext::with_executor(&g, &cores_p, &hcd_p, e)
            });
            let (_, t_pbks) = time_best(&exec, |e| pbks_scores(&ctx_p, &metric, e));
            print!(" {:>8.2}", ratio(base, t_pkc + t_phcd + t_pre + t_pbks));
        }
        println!();
    }
    println!("\n(paper shape: ~8-18x at 40 threads — lower than Figure 6 because");
    println!(" the input computation (CD + HCD) scales worse than PBKS itself.)");
}
