//! Produces the committed metrics baseline for the serving layer.
//!
//! Drives the seeded mixed read/update workload from `hcd-serve`
//! against a deterministic BA graph with region metering and latency
//! histograms enabled and writes one `hcd-metrics-v1` snapshot. CI
//! regenerates the snapshot on the same runner and diffs it against the
//! committed copy with `hcd-cli metrics-diff` under a generous
//! threshold: the counters are bit-reproducible and the histogram p99s
//! catch order-of-magnitude latency cliffs.
//!
//! * `HCD_BENCH_BASELINE_OUT` — output path
//!   (default `bench/baselines/serve-small.json`).
//!
//! The executor is **sequential**: the workload's operation stream is a
//! pure function of the seed, so every counter — `serve.queries`,
//! `serve.batches`, `serve.swaps`, plus the `pkc.*`/`phcd.*` traffic of
//! the rebuilds — is bit-reproducible across machines. Only the
//! nanosecond timings vary, which `--counters-only` ignores.
//!
//! The service runs **durable** (WAL + checkpoints in a scratch
//! directory) so the `serve.wal_appends` / `serve.wal_bytes` /
//! `serve.checkpoints` counters are covered by the same gate: the WAL
//! byte traffic is a pure function of the update stream, so it is as
//! reproducible as the rest.
//!
//! The generation-keyed query cache is **armed** with a hot query set
//! (`hot_fraction`), so `serve.cache.hits` / `serve.cache.misses` are
//! nonzero, deterministic, and gated like every other counter: a cache
//! that silently stops hitting (or starts hitting when it must not)
//! moves a gated counter by far more than the threshold.

use hcd_bench::banner;
use hcd_datasets::barabasi_albert;
use hcd_par::Executor;
use hcd_serve::{run_workload, CacheConfig, DurabilityConfig, HcdService, WorkloadConfig};

fn main() {
    banner("serve baseline: BA-small mixed read/update workload metrics");
    let out = std::env::var("HCD_BENCH_BASELINE_OUT")
        .ok()
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| {
            format!(
                "{}/../../bench/baselines/serve-small.json",
                env!("CARGO_MANIFEST_DIR")
            )
        });

    let g = barabasi_albert(2_000, 4, 42);
    let exec = Executor::sequential().with_metrics().with_histograms();
    let scratch = std::env::temp_dir().join(format!("hcd-serve-baseline-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let service = HcdService::try_new_durable(&g, &scratch, DurabilityConfig::default(), &exec)
        .expect("initial build")
        .with_cache(CacheConfig::default());
    let cfg = WorkloadConfig {
        seed: 42,
        ops: 48,
        batch_size: 24,
        read_ratio: 0.75,
        universe: g.num_vertices() as u32 + 64,
        hot_fraction: 0.5,
    };
    let summary = run_workload(&service, &cfg, &exec).expect("workload");
    let cache = service.cache_stats().expect("cache is armed");
    assert!(cache.hits > 0, "the hot set must produce cache hits");
    drop(service);
    std::fs::remove_dir_all(&scratch).ok();

    let m = exec.take_metrics();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create baseline dir");
    }
    std::fs::write(&out, m.to_json()).expect("write baseline");

    println!(
        "n={} m={} queries={} swaps={} applied={} final_gen={} cache_hits={} cache_misses={}",
        g.num_vertices(),
        g.num_edges(),
        summary.queries,
        summary.update_batches,
        summary.updates_applied,
        summary.final_generation,
        cache.hits,
        cache.misses,
    );
    println!(
        "wrote {out}: {} regions, {} counters, {} histograms",
        m.regions.len(),
        m.counters.len(),
        m.histograms.len()
    );
}
