//! Produces the committed metrics baseline for regression diffing.
//!
//! Runs the full pipeline (PKC core decomposition → PHCD construction →
//! PBKS search) on the small deterministic RMAT graph with region
//! metering enabled and writes one `hcd-metrics-v1` snapshot. CI diffs
//! fresh runs against the committed copy with `hcd-cli metrics-diff`.
//!
//! * `HCD_BENCH_BASELINE_OUT` — output path
//!   (default `bench/baselines/rmat-small.json`).
//! * `HCD_BENCH_BASELINE_MODE` — `rayon` (default) | `assist`: the
//!   executor the pipeline runs on. Both modes walk identical chunk
//!   tables, so algorithm counters are comparable across the two
//!   baselines with `metrics-diff --counters-only`; the assist snapshot
//!   additionally records the self-scheduling imbalance ratios.
//!
//! The graph is generated from a fixed seed, so counter values
//! (peeling rounds, union counts, triangle probes) are reproducible;
//! only the nanosecond timings vary between machines, which the diff
//! threshold absorbs.

use hcd_bench::banner;
use hcd_core::phcd;
use hcd_datasets::rmat;
use hcd_decomp::try_pkc_core_decomposition;
use hcd_par::Executor;
use hcd_search::{try_pbks, Metric, SearchContext};

fn main() {
    banner("baseline snapshot: RMAT-small pipeline metrics");
    // Cargo runs bench binaries from the package dir, so anchor the
    // default at the workspace root rather than the current directory.
    let out = std::env::var("HCD_BENCH_BASELINE_OUT")
        .ok()
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| {
            format!(
                "{}/../../bench/baselines/rmat-small.json",
                env!("CARGO_MANIFEST_DIR")
            )
        });

    let g = rmat(12, 8, None, 42);
    let mode = std::env::var("HCD_BENCH_BASELINE_MODE").unwrap_or_default();
    let exec = match mode.as_str() {
        "assist" => Executor::assist(4),
        "" | "rayon" => Executor::rayon(4),
        other => panic!("bad HCD_BENCH_BASELINE_MODE {other:?} (rayon|assist)"),
    }
    .with_metrics();
    let cores = try_pkc_core_decomposition(&g, &exec).expect("pkc");
    let hcd = phcd(&g, &cores, &exec);
    let ctx = SearchContext::try_with_executor(&g, &cores, &hcd, &exec).expect("search context");
    let best = try_pbks(&ctx, &Metric::AverageDegree, &exec).expect("pbks");

    let m = exec.take_metrics();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create baseline dir");
    }
    std::fs::write(&out, m.to_json()).expect("write baseline");

    println!(
        "n={} m={} kmax={} nodes={} best_k={}",
        g.num_vertices(),
        g.num_edges(),
        cores.kmax(),
        hcd.num_nodes(),
        best.map_or(0, |b| b.k),
    );
    println!(
        "wrote {out}: {} regions, {} counters",
        m.regions.len(),
        m.counters.len()
    );
}
