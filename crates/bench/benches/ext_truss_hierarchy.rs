//! Extension (paper §VI): parallel hierarchical truss decomposition.
//!
//! Reports, per dataset: truss decomposition time, serial PHTD time, and
//! PHTD's simulated/real speedup across the thread sweep — demonstrating
//! that the PHCD paradigm transfers to the k-truss model as §VI claims.

use hcd_bench::{banner, datasets, executor, ratio, scale, secs, time_best, THREAD_SWEEP};
use hcd_truss::{phtd, truss_decomposition};

fn main() {
    banner("Extension (SVI): parallel hierarchical truss decomposition");
    print!("{:<8} {:>10} {:>10}", "Dataset", "decomp(s)", "PHTD(1)s");
    for p in &THREAD_SWEEP[1..] {
        print!(" {:>8}", format!("p={p}"));
    }
    println!("  (speedup over PHTD(1))");
    for d in datasets(&["LJ", "H", "O", "SK"]) {
        let g = d.generate(scale());
        let (td_out, td_t) = time_best(&executor(1), |_| truss_decomposition(&g));
        let (idx, truss) = td_out;
        let (_, t1) = time_best(&executor(1), |e| phtd(&g, &idx, &truss, e));
        print!("{:<8} {:>10} {:>10}", d.abbrev, secs(td_t), secs(t1));
        for &p in &THREAD_SWEEP[1..] {
            let exec = executor(p);
            let (_, tp) = time_best(&exec, |e| phtd(&g, &idx, &truss, e));
            print!(" {:>8.2}", ratio(t1, tp));
        }
        println!();
    }
    println!("\n(expected: the same scaling behaviour as PHCD — the union-find-");
    println!(" with-pivot paradigm is model-agnostic, as the paper's SVI argues.)");
}
