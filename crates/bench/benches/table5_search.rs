//! Table V: runtime of subgraph search — max-thread PBKS time and its
//! speedup over serial BKS, for a type-A and a type-B metric.

use hcd_bench::{banner, datasets, executor, ratio, scale, secs, time_best, THREAD_SWEEP};
use hcd_core::phcd;
use hcd_decomp::core_decomposition;
use hcd_par::Executor;
use hcd_search::bks::{bks_scores_with, SortedAdjacency};
use hcd_search::pbks::pbks_scores;
use hcd_search::{Metric, SearchContext};

fn main() {
    banner("Table V: runtime of subgraph search (PBKS vs serial BKS)");
    let p_max = *THREAD_SWEEP.last().unwrap();
    println!(
        "{:<8} | {:>12} {:>8} | {:>12} {:>8}",
        "Dataset", "TypeA p(s)", "vs BKS", "TypeB p(s)", "vs BKS"
    );
    let type_a = Metric::AverageDegree;
    let type_b = Metric::ClusteringCoefficient;
    for d in datasets(&[]) {
        let g = d.generate(scale());
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &executor(p_max));
        let ctx = SearchContext::with_executor(&g, &cores, &hcd, &executor(p_max));
        let sorted = SortedAdjacency::build(&g, cores.as_slice());
        let par: Executor = executor(p_max);

        let (sa, a_t) = time_best(&par, |e| pbks_scores(&ctx, &type_a, e));
        let (sa_serial, a_bks) =
            time_best(&executor(1), |_| bks_scores_with(&ctx, &sorted, &type_a));
        assert_eq!(sa.1, sa_serial.1, "type-A results diverge on {}", d.abbrev);

        let (sb, b_t) = time_best(&par, |e| pbks_scores(&ctx, &type_b, e));
        let (sb_serial, b_bks) =
            time_best(&executor(1), |_| bks_scores_with(&ctx, &sorted, &type_b));
        assert_eq!(sb.1, sb_serial.1, "type-B results diverge on {}", d.abbrev);

        println!(
            "{:<8} | {:>12} {:>7.2}x | {:>12} {:>7.2}x",
            d.abbrev,
            secs(a_t),
            ratio(a_bks, a_t),
            secs(b_t),
            ratio(b_bks, b_t),
        );
    }
    println!("\n(paper shape: type-A speedups 20-50x at 40 threads; type-B 15-25x;");
    println!(" type-B absolute times orders of magnitude above type-A.)");
}
