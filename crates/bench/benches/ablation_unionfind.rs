//! Ablation: sequential vs lock-free union-find on the LB workload.
//!
//! PHCD uses the lock-free structure in every mode; this target measures
//! the single-thread overhead of its atomics against the plain `Cell`
//! based sequential structure, on the pure connection workload (LB).

use hcd_bench::{banner, datasets, ratio, scale, secs};
use hcd_unionfind::{ConcurrentPivotUnionFind, PivotUnionFind, UnionFindPivot};
use std::time::Instant;

fn main() {
    banner("Ablation: sequential vs lock-free union-find (1 thread, LB workload)");
    println!(
        "{:<8} | {:>12} {:>12} {:>10}",
        "Dataset", "seq UF (s)", "lockfree(s)", "overhead"
    );
    for d in datasets(&[]) {
        let g = d.generate(scale());
        let n = g.num_vertices();

        let t0 = Instant::now();
        let seq = PivotUnionFind::new_identity(n);
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                if u > v {
                    seq.union(v, u);
                }
            }
        }
        let seq_t = t0.elapsed();

        let t0 = Instant::now();
        let conc = ConcurrentPivotUnionFind::new_identity(n);
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                if u > v {
                    conc.union(v, u);
                }
            }
        }
        let conc_t = t0.elapsed();

        assert_eq!(seq.num_components(), conc.num_components(), "{}", d.abbrev);
        println!(
            "{:<8} | {:>12} {:>12} {:>9.2}x",
            d.abbrev,
            secs(seq_t),
            secs(conc_t),
            ratio(conc_t, seq_t),
        );
    }
    println!("\n(expected: modest single-thread overhead from the atomics —");
    println!(" the price PHCD pays for running identically in every mode.)");
    let _ = scale();
}
