//! Criterion microbenchmarks of the substrates: union-find throughput,
//! the three core-decomposition algorithms, Algorithm 1 (vertex ranks),
//! BKS's adjacency sort, and the tree accumulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hcd_core::{phcd, VertexRanks};
use hcd_datasets::rmat;
use hcd_decomp::{core_decomposition, hindex_core_decomposition, pkc_core_decomposition};
use hcd_par::Executor;
use hcd_search::accumulate::accumulate_bottom_up;
use hcd_search::bks::SortedAdjacency;
use hcd_truss::truss_decomposition;
use hcd_unionfind::{ConcurrentPivotUnionFind, PivotUnionFind, UnionFindPivot};

fn bench_unionfind(c: &mut Criterion) {
    let g = rmat(12, 8, None, 1);
    let n = g.num_vertices();
    let mut group = c.benchmark_group("unionfind");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let uf = PivotUnionFind::new_identity(n);
            for v in g.vertices() {
                for &u in g.neighbors(v) {
                    if u > v {
                        uf.union(v, u);
                    }
                }
            }
            black_box(uf.num_components())
        })
    });
    group.bench_function("lockfree_1thread", |b| {
        b.iter(|| {
            let uf = ConcurrentPivotUnionFind::new_identity(n);
            for v in g.vertices() {
                for &u in g.neighbors(v) {
                    if u > v {
                        uf.union(v, u);
                    }
                }
            }
            black_box(uf.num_components())
        })
    });
    group.finish();
}

fn bench_core_decomposition(c: &mut Criterion) {
    let g = rmat(12, 8, None, 2);
    let exec = Executor::sequential();
    let mut group = c.benchmark_group("core_decomposition");
    group.bench_function("bz_serial", |b| {
        b.iter(|| black_box(core_decomposition(&g)))
    });
    group.bench_function("pkc_1thread", |b| {
        b.iter(|| black_box(pkc_core_decomposition(&g, &exec)))
    });
    group.bench_function("hindex_1thread", |b| {
        b.iter(|| black_box(hindex_core_decomposition(&g, &exec)))
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let g = rmat(12, 8, None, 3);
    let cores = core_decomposition(&g);
    let exec = Executor::sequential();
    let mut group = c.benchmark_group("hcd_construction");
    group.bench_function("vertex_ranks", |b| {
        b.iter(|| black_box(VertexRanks::compute(&cores, &exec)))
    });
    group.bench_function("phcd_serial", |b| {
        b.iter(|| black_box(phcd(&g, &cores, &exec)))
    });
    group.bench_function("lcps", |b| b.iter(|| black_box(hcd_core::lcps(&g, &cores))));
    group.finish();
}

fn bench_truss(c: &mut Criterion) {
    let g = rmat(10, 8, None, 6);
    let mut group = c.benchmark_group("truss");
    group.bench_function("truss_decomposition", |b| {
        b.iter(|| black_box(truss_decomposition(&g)))
    });
    let (idx, td) = truss_decomposition(&g);
    let exec = Executor::sequential();
    group.bench_function("phtd_serial", |b| {
        b.iter(|| black_box(hcd_truss::phtd(&g, &idx, &td, &exec)))
    });
    group.finish();
}

fn bench_search_substrates(c: &mut Criterion) {
    let g = rmat(12, 8, None, 4);
    let cores = core_decomposition(&g);
    let exec = Executor::sequential();
    let hcd = phcd(&g, &cores, &exec);
    let mut group = c.benchmark_group("search_substrates");
    group.bench_function("bks_adjacency_sort", |b| {
        b.iter(|| black_box(SortedAdjacency::build(&g, cores.as_slice())))
    });
    group.bench_function("tree_accumulation", |b| {
        b.iter(|| {
            let mut vals: Vec<u64> = hcd
                .nodes()
                .iter()
                .map(|n| n.vertices.len() as u64)
                .collect();
            accumulate_bottom_up(&hcd, &mut vals, |a, x| *a += *x, &exec);
            black_box(vals)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_unionfind, bench_core_decomposition, bench_construction, bench_search_substrates, bench_truss
}
criterion_main!(benches);
