//! Table II: statistics of the (stand-in) datasets — n, m, davg, kmax, |T|.

use hcd_bench::{banner, datasets, scale};
use hcd_core::phcd;
use hcd_decomp::core_decomposition;
use hcd_par::Executor;

fn main() {
    banner("Table II: statistics of datasets (synthetic stand-ins)");
    println!(
        "{:<14} {:>10} {:>12} {:>8} {:>7} {:>8}",
        "Dataset", "n", "m", "davg", "kmax", "|T|"
    );
    let exec = Executor::sequential();
    for d in datasets(&[]) {
        let g = d.generate(scale());
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &exec);
        println!(
            "{:<14} {:>10} {:>12} {:>8.1} {:>7} {:>8}",
            d.abbrev,
            g.num_vertices(),
            g.num_edges(),
            g.avg_degree(),
            cores.kmax(),
            hcd.num_nodes()
        );
    }
    println!("\n(paper: As-Skitter .. UK-2007-05, n up to 105.9M, m up to 3.74B,");
    println!(" kmax 111..5704, |T| 253..79318 — stand-ins preserve the relative");
    println!(" shape: heavy tails, kmax >> davg on clique-overlay datasets,");
    println!(" FS-style graphs with few tree nodes.)");
}
