//! Figure 5: (PKC + PHCD)'s speedup over (PKC + LCPS), i.e. HCD
//! construction including the cost of computing the core decomposition.

use hcd_bench::{
    banner, datasets, executor, ratio, scale, time_best, FIGURE_DATASETS, THREAD_SWEEP,
};
use hcd_core::{lcps, phcd};
use hcd_decomp::pkc_core_decomposition;

fn main() {
    banner("Figure 5: (PKC + PHCD)'s speedup to (PKC + LCPS)");
    print!("{:<8}", "Dataset");
    for p in THREAD_SWEEP {
        print!(" {:>8}", format!("p={p}"));
    }
    println!();
    for d in datasets(&FIGURE_DATASETS) {
        let g = d.generate(scale());
        // Baseline: serial PKC + serial LCPS.
        let seq = executor(1);
        let (cores, pkc1) = time_best(&seq, |e| pkc_core_decomposition(&g, e));
        let (_, lcps1) = time_best(&seq, |_| lcps(&g, &cores));
        let base = pkc1 + lcps1;

        print!("{:<8}", d.abbrev);
        for p in THREAD_SWEEP {
            let exec = executor(p);
            let (cores_p, pkc_t) = time_best(&exec, |e| pkc_core_decomposition(&g, e));
            let (_, phcd_t) = time_best(&exec, |e| phcd(&g, &cores_p, e));
            print!(" {:>8.2}", ratio(base, pkc_t + phcd_t));
        }
        println!();
    }
    println!("\n(paper shape: like Figure 4 but with a slightly lower ratio,");
    println!(" because parallel core decomposition scales worse than PHCD.)");
}
