//! Figure 4: PHCD's speedup over LCPS as threads grow.

use hcd_bench::{
    banner, datasets, executor, ratio, scale, time_best, FIGURE_DATASETS, THREAD_SWEEP,
};
use hcd_core::{lcps, phcd};
use hcd_decomp::core_decomposition;

fn main() {
    banner("Figure 4: PHCD's speedup to LCPS");
    print!("{:<8}", "Dataset");
    for p in THREAD_SWEEP {
        print!(" {:>8}", format!("p={p}"));
    }
    println!();
    for d in datasets(&FIGURE_DATASETS) {
        let g = d.generate(scale());
        let cores = core_decomposition(&g);
        let (_, lcps_t) = time_best(&executor(1), |_| lcps(&g, &cores));
        print!("{:<8}", d.abbrev);
        for p in THREAD_SWEEP {
            let exec = executor(p);
            let (_, t) = time_best(&exec, |e| phcd(&g, &cores, e));
            print!(" {:>8.2}", ratio(lcps_t, t));
        }
        println!();
    }
    println!("\n(paper shape: up to ~22x at 40 threads, larger graphs scale better;");
    println!(" the p=1 column is the serial 1.24-2.33x advantage of PHCD itself.)");
}
