//! Ablation: PBKS type-A with vs without the §IV-A preprocessing.
//!
//! The preprocessing (per-vertex greater/equal coreness neighbor counts)
//! costs one `O(m)` pass but turns every later type-A query into `O(n)`.
//! This target measures both variants per query, plus the one-off
//! preprocessing cost, showing the break-even point.

use hcd_bench::{banner, datasets, executor, ratio, scale, secs, time_best, THREAD_SWEEP};
use hcd_core::phcd;
use hcd_decomp::core_decomposition;
use hcd_search::ablation::type_a_scores_inline;
use hcd_search::pbks::pbks_scores;
use hcd_search::{Metric, SearchContext};

fn main() {
    banner("Ablation: PBKS type-A preprocessing on/off");
    let p = *THREAD_SWEEP.last().unwrap();
    println!(
        "{:<8} | {:>10} {:>12} {:>12} {:>9}",
        "Dataset", "prep(s)", "query+pre(s)", "query-raw(s)", "gain"
    );
    let metric = Metric::AverageDegree;
    for d in datasets(&[]) {
        let g = d.generate(scale());
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &executor(p));
        let par = executor(p);

        let (ctx, prep_t) = time_best(&par, |e| SearchContext::with_executor(&g, &cores, &hcd, e));
        let (_, with_t) = time_best(&par, |e| pbks_scores(&ctx, &metric, e));
        let (_, without_t) =
            time_best(&par, |e| type_a_scores_inline(&g, &cores, &hcd, &metric, e));

        println!(
            "{:<8} | {:>10} {:>12} {:>12} {:>8.2}x",
            d.abbrev,
            secs(prep_t),
            secs(with_t),
            secs(without_t),
            ratio(without_t, with_t),
        );
    }
    println!("\n(expected: the preprocessed query is several times faster; the");
    println!(" one-off preprocessing pays for itself after a couple of metrics.)");
}
