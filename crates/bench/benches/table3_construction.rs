//! Table III: time cost of HCD construction.
//!
//! Columns (as in the paper): serial PHCD runtime with its speedup
//! relative to LB (the union-find lower bound) and LCPS; then the
//! max-thread PHCD runtime with its speedup relative to LB and RC (the
//! local-core-search baseline). Ratios below 1 for LB mean PHCD is
//! slower than the bare lower bound, as expected.

use hcd_bench::{banner, datasets, executor, ratio, scale, secs, time_best, THREAD_SWEEP};
use hcd_core::rc::rc_confirm_parents;
use hcd_core::{lb::lb_union_all, lcps, phcd};
use hcd_decomp::core_decomposition;

fn main() {
    banner("Table III: time cost of HCD construction");
    let p_max = *THREAD_SWEEP.last().unwrap();
    println!(
        "{:<8} | {:>10} {:>8} {:>8} | {:>10} {:>8} {:>8}",
        "Dataset", "PHCD(1)s", "LB", "LCPS", "PHCD(p)s", "LB", "RC"
    );
    for d in datasets(&[]) {
        let g = d.generate(scale());
        let cores = core_decomposition(&g);

        // Serial column.
        let seq = executor(1);
        let (hcd, phcd1) = time_best(&seq, |e| phcd(&g, &cores, e));
        let (_, lb1) = time_best(&seq, |e| lb_union_all(&g, e));
        let (hcd_lcps, lcps1) = time_best(&seq, |_| lcps(&g, &cores));
        assert_eq!(
            hcd.canonicalize(),
            hcd_lcps.canonicalize(),
            "PHCD and LCPS disagree on {}",
            d.abbrev
        );

        // Parallel column at the paper's max thread count.
        let par = executor(p_max);
        let (_, phcd_p) = time_best(&par, |e| phcd(&g, &cores, e));
        let (_, lb_p) = time_best(&par, |e| lb_union_all(&g, e));
        let (_, rc_p) = time_best(&par, |e| rc_confirm_parents(&g, &cores, &hcd, e));

        println!(
            "{:<8} | {:>10} {:>7.2}x {:>7.2}x | {:>10} {:>7.2}x {:>7.2}x",
            d.abbrev,
            secs(phcd1),
            ratio(lb1, phcd1),
            ratio(lcps1, phcd1),
            secs(phcd_p),
            ratio(lb_p, phcd_p),
            ratio(rc_p, phcd_p),
        );
    }
    println!("\n(paper shape: serial PHCD beats LCPS 1.24-2.33x; PHCD within ~2x");
    println!(" of LB; RC one to two orders of magnitude slower than PHCD.)");
}
