//! Measures what arming the latency histograms costs on the serve-small
//! workload — the acceptance budget is 5% of disarmed wall time.
//!
//! Armed and disarmed runs are interleaved (one pair per rep) so CPU
//! frequency drift hits both sides equally, and the comparison uses the
//! min-of-reps for each side — the least-noisy estimator of the true
//! cost on a shared runner. The workload matches `serve_baseline`
//! (seeded BA graph, mixed read/update stream) but runs in-memory: WAL
//! fsyncs would drown the nanoseconds this bench is trying to see.
//!
//! Histograms are armed *without* metrics: the disarmed side then pays
//! exactly one relaxed load per timer site, which is the real cost of
//! shipping the instrumentation to users who never turn it on.
//!
//! * `HCD_BENCH_ASSERT_OVERHEAD=1` — fail (panic) when the armed min
//!   exceeds the disarmed min by more than 5%; CI sets this.

use std::time::Instant;

use hcd_bench::banner;
use hcd_datasets::barabasi_albert;
use hcd_par::Executor;
use hcd_serve::{run_workload, HcdService, WorkloadConfig};

const REPS: usize = 5;

fn main() {
    banner("histogram overhead: armed vs disarmed serve-small workload");
    let g = barabasi_albert(2_000, 4, 42);
    let cfg = WorkloadConfig {
        seed: 42,
        ops: 48,
        batch_size: 24,
        read_ratio: 0.75,
        universe: g.num_vertices() as u32 + 64,
        hot_fraction: 0.0,
    };

    let mut disarmed_min = f64::INFINITY;
    let mut armed_min = f64::INFINITY;
    for rep in 0..REPS {
        for armed in [false, true] {
            let exec = Executor::sequential();
            exec.set_histograms_armed(armed);
            let service = HcdService::try_new(&g, &exec).expect("initial build");
            let start = Instant::now();
            run_workload(&service, &cfg, &exec).expect("workload");
            let secs = start.elapsed().as_secs_f64();
            let side = if armed { "armed   " } else { "disarmed" };
            println!("rep {rep} {side} = {secs:.4}s");
            if armed {
                armed_min = armed_min.min(secs);
            } else {
                disarmed_min = disarmed_min.min(secs);
            }
        }
    }

    let overhead = armed_min / disarmed_min - 1.0;
    println!("disarmed min     = {disarmed_min:.4}s");
    println!("armed min        = {armed_min:.4}s");
    println!("overhead         = {:+.2}%", overhead * 100.0);
    if std::env::var("HCD_BENCH_ASSERT_OVERHEAD").as_deref() == Ok("1") {
        assert!(
            overhead <= 0.05,
            "armed histograms cost {:.2}% wall time, over the 5% budget",
            overhead * 100.0
        );
        println!("within the 5% budget (asserted)");
    }
}
