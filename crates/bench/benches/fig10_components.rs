//! Figure 10: speedup of each pipeline component at max threads —
//! CD (core decomposition), HCD (construction), SC-A and SC-B (score
//! computation, preprocessing excluded), each parallel algorithm against
//! its serial counterpart.

use hcd_bench::{
    banner, datasets, executor, ratio, scale, time_best, FIGURE_DATASETS, THREAD_SWEEP,
};
use hcd_core::{lcps, phcd};
use hcd_decomp::{core_decomposition, pkc_core_decomposition};
use hcd_search::bks::{bks_scores_with, SortedAdjacency};
use hcd_search::pbks::pbks_scores;
use hcd_search::{Metric, SearchContext};

fn main() {
    banner("Figure 10: per-component speedup at max threads");
    let p_max = *THREAD_SWEEP.last().unwrap();
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "Dataset", "CD", "HCD", "SC-A", "SC-B"
    );
    for d in datasets(&FIGURE_DATASETS) {
        let g = d.generate(scale());
        let par = executor(p_max);
        let seq = executor(1);

        // CD: parallel PKC vs serial Batagelj-Zaversnik.
        let (_, bz_t) = time_best(&seq, |_| core_decomposition(&g));
        let (cores, pkc_t) = time_best(&par, |e| pkc_core_decomposition(&g, e));

        // HCD: PHCD(p) vs LCPS.
        let (_, lcps_t) = time_best(&seq, |_| lcps(&g, &cores));
        let (hcd, phcd_t) = time_best(&par, |e| phcd(&g, &cores, e));

        // Score computation, preprocessing excluded on both sides.
        let ctx = SearchContext::with_executor(&g, &cores, &hcd, &par);
        let sorted = SortedAdjacency::build(&g, cores.as_slice());
        let (_, bks_a) = time_best(&seq, |_| {
            bks_scores_with(&ctx, &sorted, &Metric::AverageDegree)
        });
        let (_, pbks_a) = time_best(&par, |e| pbks_scores(&ctx, &Metric::AverageDegree, e));
        let (_, bks_b) = time_best(&seq, |_| {
            bks_scores_with(&ctx, &sorted, &Metric::ClusteringCoefficient)
        });
        let (_, pbks_b) = time_best(&par, |e| {
            pbks_scores(&ctx, &Metric::ClusteringCoefficient, e)
        });

        println!(
            "{:<8} {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x",
            d.abbrev,
            ratio(bz_t, pkc_t),
            ratio(lcps_t, phcd_t),
            ratio(bks_a, pbks_a),
            ratio(bks_b, pbks_b),
        );
    }
    println!("\n(paper shape: CD has the lowest speedup; SC-A the highest, over");
    println!(" 40x on large graphs; HCD and SC-B in between.)");
}
