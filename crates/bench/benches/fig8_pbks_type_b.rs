//! Figure 8: PBKS's speedup over BKS for type-B score computation
//! (triangle/triplet metrics).

use hcd_bench::{
    banner, datasets, executor, ratio, scale, time_best, FIGURE_DATASETS, THREAD_SWEEP,
};
use hcd_core::phcd;
use hcd_decomp::core_decomposition;
use hcd_search::bks::{bks_scores_with, SortedAdjacency};
use hcd_search::pbks::pbks_scores;
use hcd_search::{Metric, SearchContext};

fn main() {
    banner("Figure 8: PBKS's speedup to BKS (type-B)");
    let metric = Metric::ClusteringCoefficient;
    print!("{:<8}", "Dataset");
    for p in THREAD_SWEEP {
        print!(" {:>8}", format!("p={p}"));
    }
    println!();
    for d in datasets(&FIGURE_DATASETS) {
        let g = d.generate(scale());
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &executor(1));
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let sorted = SortedAdjacency::build(&g, cores.as_slice());
        let (_, bks_t) = time_best(&executor(1), |_| bks_scores_with(&ctx, &sorted, &metric));
        print!("{:<8}", d.abbrev);
        for p in THREAD_SWEEP {
            let exec = executor(p);
            let (_, t) = time_best(&exec, |e| pbks_scores(&ctx, &metric, e));
            print!(" {:>8.2}", ratio(bks_t, t));
        }
        println!();
    }
    println!("\n(paper shape: ~15-25x at 40 threads — lower than type-A because");
    println!(" high-order motif counting parallelizes less evenly.)");
}
