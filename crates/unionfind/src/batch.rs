//! Thread-local union batching for the concurrent union-find.
//!
//! In PHCD's union phase every worker streams the edges of its chunk
//! straight into [`ConcurrentPivotUnionFind::union`](crate::ConcurrentPivotUnionFind),
//! and most of those calls are redundant: inside a dense shell the same
//! components are re-merged over and over, each redundant call paying two
//! concurrent finds and contending on the shared parent words and pivot
//! slots. A [`UnionBatch`] filters that stream locally first — a small
//! private union-find over only the elements the chunk has touched — and
//! forwards just the *spanning* edges (those that connect two locally
//! distinct components) to the shared structure on
//! [`flush`](UnionBatch::flush).
//!
//! Correctness: an edge the local filter drops connects two elements
//! already joined by edges this batch *did* forward (union is
//! transitive), so the shared partition after a flush is identical to
//! the unbatched one. Pivots are maintained by the shared structure's
//! own min-merge protocol on every forwarded union and therefore still
//! converge at quiescence. The filter only ever *removes* redundant
//! calls; it never reorders surviving edges.
//!
//! The batch is bounded: once it has staged [`capacity`](UnionBatch::capacity)
//! spanning edges (or touched twice that many distinct elements) it
//! flushes itself, so memory stays O(capacity) regardless of chunk size.

use crate::UnionFindPivot;

/// Default spanning-edge capacity before a batch self-flushes.
const DEFAULT_CAPACITY: usize = 2048;

/// Sentinel marking a free slot in the open-addressed element table.
const EMPTY: u32 = u32::MAX;

/// Cumulative effectiveness counters of a [`UnionBatch`].
///
/// `flushed <= staged` always; the gap is exactly the number of
/// redundant concurrent `union` calls (and their CAS traffic) the batch
/// absorbed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Edges offered via [`UnionBatch::stage`].
    pub staged: u64,
    /// Unions actually forwarded to the shared structure.
    pub flushed: u64,
}

/// A thread-local edge coalescer in front of a shared
/// [`UnionFindPivot`].
///
/// # Examples
///
/// ```
/// use hcd_unionfind::{ConcurrentPivotUnionFind, UnionBatch, UnionFindPivot};
///
/// let uf = ConcurrentPivotUnionFind::new_identity(4);
/// let mut batch = UnionBatch::new();
/// batch.stage(&uf, 0, 1);
/// batch.stage(&uf, 1, 0); // locally redundant: dropped
/// batch.stage(&uf, 2, 3);
/// batch.flush(&uf);
/// assert!(uf.same_set(0, 1) && uf.same_set(2, 3));
/// let s = batch.stats();
/// assert_eq!((s.staged, s.flushed), (3, 2));
/// ```
pub struct UnionBatch {
    /// Open-addressed hash table mapping element id -> local slot;
    /// power-of-two length, `EMPTY` marks free entries.
    table: Vec<(u32, u32)>,
    /// Local union-find parent over slots (path halving, no ranks — the
    /// batch is tiny and short-lived).
    parent: Vec<u32>,
    /// Table index of each slot, for O(distinct) clearing on flush.
    table_pos: Vec<u32>,
    /// Spanning edges awaiting a flush, in original element ids and
    /// arrival order.
    pending: Vec<(u32, u32)>,
    capacity: usize,
    staged: u64,
    flushed: u64,
}

impl Default for UnionBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl UnionBatch {
    /// A batch with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A batch that self-flushes after `capacity` spanning edges (or
    /// `2 * capacity` distinct elements). `capacity` must be non-zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        // Table sized for 2*capacity elements at 50% max load.
        let table_len = (4 * capacity).next_power_of_two();
        UnionBatch {
            table: vec![(EMPTY, 0); table_len],
            parent: Vec::with_capacity(2 * capacity),
            table_pos: Vec::with_capacity(2 * capacity),
            pending: Vec::with_capacity(capacity),
            capacity,
            staged: 0,
            flushed: 0,
        }
    }

    /// The self-flush threshold in spanning edges.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of spanning edges currently awaiting a flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative counters (not reset by flushes).
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            staged: self.staged,
            flushed: self.flushed,
        }
    }

    /// Offers the edge `{x, y}` to the shared structure `uf`. Locally
    /// redundant edges are dropped immediately; spanning edges are
    /// queued and forwarded on the next [`flush`](UnionBatch::flush)
    /// (which this call performs itself at capacity).
    pub fn stage<U: UnionFindPivot + ?Sized>(&mut self, uf: &U, x: u32, y: u32) {
        self.staged += 1;
        let sx = self.slot_of(x);
        let sy = self.slot_of(y);
        let rx = self.find_local(sx);
        let ry = self.find_local(sy);
        if rx != ry {
            self.parent[rx as usize] = ry;
            self.pending.push((x, y));
        }
        if self.pending.len() >= self.capacity || self.parent.len() >= 2 * self.capacity {
            self.flush(uf);
        }
    }

    /// Forwards every pending spanning edge to `uf` and resets the local
    /// filter. Must be called before the shared structure is read (PHCD
    /// flushes at every chunk end, before the region barrier).
    pub fn flush<U: UnionFindPivot + ?Sized>(&mut self, uf: &U) {
        for &(x, y) in &self.pending {
            uf.union(x, y);
        }
        self.flushed += self.pending.len() as u64;
        self.pending.clear();
        for &pos in &self.table_pos {
            self.table[pos as usize].0 = EMPTY;
        }
        self.table_pos.clear();
        self.parent.clear();
    }

    /// The local slot of element `x`, inserting a fresh singleton on
    /// first sight.
    fn slot_of(&mut self, x: u32) -> u32 {
        debug_assert_ne!(x, EMPTY, "element id u32::MAX is reserved");
        let mask = self.table.len() - 1;
        // Fibonacci hashing; ids are dense, so any odd multiplier mixes
        // well enough for a 50%-max-load table.
        let mut i = (x as usize).wrapping_mul(0x9E37_79B9) & mask;
        loop {
            let (elem, slot) = self.table[i];
            if elem == x {
                return slot;
            }
            if elem == EMPTY {
                let slot = self.parent.len() as u32;
                self.table[i] = (x, slot);
                self.parent.push(slot);
                self.table_pos.push(i as u32);
                return slot;
            }
            i = (i + 1) & mask;
        }
    }

    /// Local find with path halving.
    fn find_local(&mut self, mut s: u32) -> u32 {
        loop {
            let p = self.parent[s as usize];
            if p == s {
                return s;
            }
            let gp = self.parent[p as usize];
            self.parent[s as usize] = gp;
            s = gp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcurrentPivotUnionFind, PivotUnionFind};

    #[test]
    fn redundant_edges_are_coalesced() {
        let uf = ConcurrentPivotUnionFind::new_identity(8).with_stats();
        let mut batch = UnionBatch::new();
        // A dense clique-like stream over {0..4}: 10 edges, 3 spanning.
        for x in 0..4u32 {
            for y in (x + 1)..4 {
                batch.stage(&uf, x, y);
            }
        }
        batch.flush(&uf);
        let s = batch.stats();
        assert_eq!(s.staged, 6);
        assert_eq!(s.flushed, 3);
        assert_eq!(uf.counts().unions, 3, "shared side saw only spanning edges");
        for v in 1..4 {
            assert!(uf.same_set(0, v));
        }
    }

    #[test]
    fn partition_matches_unbatched_reference() {
        use rand::{Rng, SeedableRng};
        let n = 500usize;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let edges: Vec<(u32, u32)> = (0..4 * n)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();

        let plain = PivotUnionFind::new_identity(n);
        for &(a, b) in &edges {
            if a != b {
                plain.union(a, b);
            }
        }

        let batched = ConcurrentPivotUnionFind::new_identity(n);
        let mut batch = UnionBatch::with_capacity(64); // force mid-stream flushes
        for &(a, b) in &edges {
            if a != b {
                batch.stage(&batched, a, b);
            }
        }
        batch.flush(&batched);

        for v in 0..n as u32 {
            assert!(
                batched.same_set(v, plain.find(v)),
                "partition mismatch at {v}"
            );
            assert_eq!(batched.get_pivot(v), plain.get_pivot(v), "pivot at {v}");
        }
        let s = batch.stats();
        assert!(s.flushed < s.staged, "batching must coalesce: {s:?}");
        batched.validate().unwrap();
    }

    #[test]
    fn self_flush_bounds_memory() {
        let uf = ConcurrentPivotUnionFind::new_identity(10_000);
        let mut batch = UnionBatch::with_capacity(8);
        for i in 0..5_000u32 {
            batch.stage(&uf, 2 * i, 2 * i + 1);
            assert!(batch.pending_len() < 8);
            assert!(batch.parent.len() <= 16);
        }
        batch.flush(&uf);
        assert_eq!(batch.pending_len(), 0);
        assert_eq!(batch.stats().flushed, 5_000);
        assert_eq!(uf.num_components(), 5_000);
    }

    #[test]
    fn reuse_after_flush_starts_clean() {
        let uf = ConcurrentPivotUnionFind::new_identity(6);
        let mut batch = UnionBatch::new();
        batch.stage(&uf, 0, 1);
        batch.flush(&uf);
        // After a flush the local filter forgets 0-1; the edge is staged
        // again but the shared union is a no-op merge.
        batch.stage(&uf, 0, 1);
        batch.stage(&uf, 1, 0);
        batch.flush(&uf);
        assert_eq!(batch.stats().staged, 3);
        assert_eq!(batch.stats().flushed, 2);
        assert_eq!(uf.num_components(), 5);
    }

    #[test]
    fn works_with_sequential_variant_too() {
        let uf = PivotUnionFind::new_identity(4);
        let mut batch = UnionBatch::new();
        batch.stage(&uf, 3, 2);
        batch.stage(&uf, 2, 3);
        batch.flush(&uf);
        assert!(uf.same_set(2, 3));
        assert_eq!(uf.get_pivot(3), 2);
    }

    #[test]
    fn concurrent_workers_with_private_batches_agree_with_sequential() {
        use rand::{Rng, SeedableRng};
        use std::sync::Arc;
        let n = if cfg!(miri) { 200 } else { 4_000usize };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        // Each edge appears from both endpoints, the way a symmetric CSR
        // scan stages it; the mirror lands in the same batch window and
        // must be coalesced locally.
        let mut ops: Vec<(u32, u32)> = Vec::with_capacity(4 * n);
        for _ in 0..2 * n {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            ops.push((a, b));
            ops.push((b, a));
        }

        let seq = PivotUnionFind::new_identity(n);
        for &(a, b) in &ops {
            if a != b {
                seq.union(a, b);
            }
        }

        let conc = Arc::new(ConcurrentPivotUnionFind::new_identity(n).with_stats());
        let threads = 4;
        let chunk = ops.len().div_ceil(threads);
        let ops = Arc::new(ops);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let conc = Arc::clone(&conc);
                let ops = Arc::clone(&ops);
                std::thread::spawn(move || {
                    let mut batch = UnionBatch::with_capacity(128);
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(ops.len());
                    for &(a, b) in &ops[start..end] {
                        if a != b {
                            batch.stage(&*conc, a, b);
                        }
                    }
                    batch.flush(&*conc);
                    batch.stats()
                })
            })
            .collect();
        let mut total = BatchStats::default();
        for h in handles {
            let s = h.join().unwrap();
            total.staged += s.staged;
            total.flushed += s.flushed;
        }
        assert!(
            total.flushed < total.staged,
            "coalescing happened: {total:?}"
        );
        // Forwarded calls upper-bound the shared structure's successful
        // unions; the partition itself must be exactly the sequential one.
        assert!(conc.counts().unions <= total.flushed);
        for v in 0..n as u32 {
            assert!(conc.same_set(v, seq.find(v)), "partition mismatch at {v}");
            assert_eq!(conc.get_pivot(v), seq.get_pivot(v), "pivot at {v}");
        }
        conc.validate().unwrap();
    }
}
