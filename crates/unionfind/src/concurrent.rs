//! Lock-free concurrent union-find with pivot.
//!
//! ## Linking protocol
//!
//! Each element packs `(rank, parent)` into one `AtomicU64`. `find` uses
//! path halving with CAS (failed compressions are harmless). `union` links
//! the lower-rank root under the higher-rank root with a CAS on the
//! loser's packed word; on a rank tie the loser is the root with the
//! larger id, and the winner's rank is bumped with a best-effort CAS.
//! This is the classic Anderson–Woll wait-free scheme: total work
//! `O(n√p + m·α(n) + F)` with `F` failed CASes.
//!
//! ## Pivot protocol
//!
//! The pivot (minimum-key member) of a component is stored at its root.
//! After a successful link of `loser` under `winner`, the linking thread
//! *min-merges* the loser's pivot into the winner: a CAS loop that
//! replaces the winner's pivot whenever the candidate has a smaller key.
//!
//! The subtle race: a min-merge can land on a root *after* that root has
//! itself been linked under another root, whose linker already read the
//! (then-stale) pivot. The fix, after every merge attempt, is to re-check
//! that the target is still a root; if not, re-find the current root and
//! repeat the merge there. Because parents only ever change from
//! self-pointing to other-pointing (roots never become roots again), this
//! loop terminates, and at quiescence every root's pivot is exactly the
//! minimum key of its component — which is when PHCD reads pivots
//! (its union phase and pivot-read phases are separated by barriers).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::{UfCounts, UnionFindPivot};

/// Relaxed atomic tallies shared by all mutator threads. Per-call hop
/// counts are accumulated locally and folded with a single `fetch_add`,
/// so enabled stats add O(1) atomics per operation, not per hop.
#[derive(Debug, Default)]
struct ConcStats {
    finds: AtomicU64,
    find_hops: AtomicU64,
    unions: AtomicU64,
    cas_retries: AtomicU64,
    pivot_merges: AtomicU64,
}

const PARENT_MASK: u64 = 0xFFFF_FFFF;

#[inline]
fn pack(rank: u32, parent: u32) -> u64 {
    ((rank as u64) << 32) | parent as u64
}

#[inline]
fn parent_of(word: u64) -> u32 {
    (word & PARENT_MASK) as u32
}

#[inline]
fn rank_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Lock-free union-find with per-root pivot, shareable across threads.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use hcd_unionfind::{ConcurrentPivotUnionFind, UnionFindPivot};
///
/// let uf = Arc::new(ConcurrentPivotUnionFind::new_identity(100));
/// let handles: Vec<_> = (0..4)
///     .map(|t| {
///         let uf = Arc::clone(&uf);
///         std::thread::spawn(move || {
///             for i in (t..99).step_by(4) {
///                 uf.union(i as u32, i as u32 + 1);
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert!(uf.same_set(0, 99));
/// assert_eq!(uf.get_pivot(42), 0);
/// ```
pub struct ConcurrentPivotUnionFind {
    entry: Vec<AtomicU64>,
    pivot: Vec<AtomicU32>,
    key: Vec<u32>,
    stats: Option<ConcStats>,
}

impl ConcurrentPivotUnionFind {
    /// `n` singleton components with keys equal to element ids.
    pub fn new_identity(n: usize) -> Self {
        Self::new((0..n as u32).collect())
    }

    /// Singleton components whose pivot ordering follows `keys`
    /// (distinct keys required for unique pivots).
    pub fn new(keys: Vec<u32>) -> Self {
        let n = keys.len();
        ConcurrentPivotUnionFind {
            entry: (0..n as u32).map(|i| AtomicU64::new(pack(0, i))).collect(),
            pivot: (0..n as u32).map(AtomicU32::new).collect(),
            key: keys,
            stats: None,
        }
    }

    /// Enables operation counting (builder form); see [`UfCounts`].
    /// Disabled (the default), every operation pays only one branch.
    pub fn with_stats(mut self) -> Self {
        self.stats = Some(ConcStats::default());
        self
    }

    /// A quiescent-or-approximate snapshot of the operation tallies;
    /// all-zero when stats are disabled. Exact once all mutator threads
    /// have joined (relaxed counters carry no ordering, only totals).
    pub fn counts(&self) -> UfCounts {
        match &self.stats {
            Some(s) => UfCounts {
                finds: s.finds.load(Ordering::Relaxed),
                find_hops: s.find_hops.load(Ordering::Relaxed),
                unions: s.unions.load(Ordering::Relaxed),
                cas_retries: s.cas_retries.load(Ordering::Relaxed),
                pivot_merges: s.pivot_merges.load(Ordering::Relaxed),
            },
            None => UfCounts::default(),
        }
    }

    /// Number of distinct components (quiescent snapshot).
    pub fn num_components(&self) -> usize {
        (0..self.len())
            .filter(|&x| parent_of(self.entry[x].load(Ordering::Acquire)) == x as u32)
            .count()
    }

    /// Checks structural invariants at quiescence (no concurrent
    /// mutators): every parent chain reaches a root within `len()` steps
    /// (no cycles), and every root's pivot is a member of its own
    /// component with the minimum key. Used by fault-injection tests to
    /// prove that a panicked or cancelled parallel union phase leaves no
    /// poisoned state behind.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        let parent = |x: usize| parent_of(self.entry[x].load(Ordering::Acquire)) as usize;
        let mut root_of = vec![usize::MAX; n];
        for (x, slot) in root_of.iter_mut().enumerate() {
            let mut cur = x;
            let mut steps = 0usize;
            while parent(cur) != cur {
                cur = parent(cur);
                steps += 1;
                if steps > n {
                    return Err(format!("parent chain from {x} does not terminate (cycle)"));
                }
            }
            *slot = cur;
        }
        // Minimum key per component, computed from scratch.
        let mut min_member = vec![usize::MAX; n];
        for (x, &r) in root_of.iter().enumerate() {
            if min_member[r] == usize::MAX || self.key[x] < self.key[min_member[r]] {
                min_member[r] = x;
            }
        }
        for r in 0..n {
            if root_of[r] != r {
                continue;
            }
            let pv = self.pivot[r].load(Ordering::Acquire) as usize;
            if pv >= n {
                return Err(format!("root {r} has out-of-range pivot {pv}"));
            }
            if root_of[pv] != r {
                return Err(format!("root {r} pivot {pv} is not in its component"));
            }
            if self.key[pv] != self.key[min_member[r]] {
                return Err(format!(
                    "root {r} pivot {pv} (key {}) is not the minimum key {} of its component",
                    self.key[pv], self.key[min_member[r]]
                ));
            }
        }
        Ok(())
    }

    /// Min-merges candidate pivot `pv` into the component currently
    /// containing `root`, chasing root changes until the write sticks on a
    /// live root.
    fn merge_pivot(&self, mut root: u32, pv: u32) {
        // Retries (failed pivot CAS) and chases (root relinked under a
        // new root mid-merge) both measure pivot-protocol contention.
        let mut retries = 0u64;
        loop {
            let cur = self.pivot[root as usize].load(Ordering::Acquire);
            if self.key[pv as usize] < self.key[cur as usize]
                && self.pivot[root as usize]
                    .compare_exchange(cur, pv, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
            {
                retries += 1;
                continue; // someone else updated; re-evaluate
            }
            // If `root` was linked away (before or after our write), the
            // linker may have read a stale pivot — propagate to the live
            // root ourselves.
            let live = self.find(root);
            if live == root {
                break;
            }
            retries += 1;
            root = live;
        }
        if let Some(s) = &self.stats {
            if retries > 0 {
                s.pivot_merges.fetch_add(retries, Ordering::Relaxed);
            }
        }
    }
}

impl UnionFindPivot for ConcurrentPivotUnionFind {
    fn len(&self) -> usize {
        self.entry.len()
    }

    fn find(&self, mut x: u32) -> u32 {
        let mut hops = 0u64;
        let root = loop {
            let e = self.entry[x as usize].load(Ordering::Acquire);
            let p = parent_of(e);
            if p == x {
                break x;
            }
            hops += 1;
            let ep = self.entry[p as usize].load(Ordering::Acquire);
            let gp = parent_of(ep);
            if gp != p {
                // Path halving: x -> grandparent. Failure is benign.
                let _ = self.entry[x as usize].compare_exchange(
                    e,
                    pack(rank_of(e), gp),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            x = p;
        };
        if let Some(s) = &self.stats {
            s.finds.fetch_add(1, Ordering::Relaxed);
            if hops > 0 {
                s.find_hops.fetch_add(hops, Ordering::Relaxed);
            }
        }
        root
    }

    fn union(&self, x: u32, y: u32) -> bool {
        let mut retries = 0u64;
        let flush = |retries: u64, merged: bool| {
            if let Some(s) = &self.stats {
                if retries > 0 {
                    s.cas_retries.fetch_add(retries, Ordering::Relaxed);
                }
                if merged {
                    s.unions.fetch_add(1, Ordering::Relaxed);
                }
            }
        };
        loop {
            let rx = self.find(x);
            let ry = self.find(y);
            if rx == ry {
                flush(retries, false);
                return false;
            }
            let ex = self.entry[rx as usize].load(Ordering::Acquire);
            let ey = self.entry[ry as usize].load(Ordering::Acquire);
            // Re-validate rootness (entries may have changed since find).
            if parent_of(ex) != rx || parent_of(ey) != ry {
                retries += 1;
                continue;
            }
            let (kx, ky) = (rank_of(ex), rank_of(ey));
            // Loser: lower rank, ties broken toward the larger id.
            let (winner, loser, eloser, tie) = if kx < ky || (kx == ky && rx > ry) {
                (ry, rx, ex, kx == ky)
            } else {
                (rx, ry, ey, kx == ky)
            };
            if self.entry[loser as usize]
                .compare_exchange(
                    eloser,
                    pack(rank_of(eloser), winner),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                retries += 1;
                continue;
            }
            if tie {
                // Best-effort rank bump; failure means winner changed or
                // was bumped concurrently, both fine for balance.
                let ew = pack(rank_of(eloser), winner);
                let _ = self.entry[winner as usize].compare_exchange(
                    ew,
                    pack(rank_of(eloser) + 1, winner),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            let pl = self.pivot[loser as usize].load(Ordering::Acquire);
            self.merge_pivot(winner, pl);
            flush(retries, true);
            return true;
        }
    }

    fn get_pivot(&self, x: u32) -> u32 {
        let r = self.find(x);
        self.pivot[r as usize].load(Ordering::Acquire)
    }

    fn key(&self, x: u32) -> u32 {
        self.key[x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        let uf = ConcurrentPivotUnionFind::new_identity(6);
        assert!(uf.union(4, 5));
        assert!(uf.union(2, 4));
        assert!(!uf.union(5, 2));
        assert_eq!(uf.get_pivot(5), 2);
        assert_eq!(uf.num_components(), 4);
    }

    #[test]
    fn pivot_with_custom_keys() {
        let uf = ConcurrentPivotUnionFind::new(vec![10, 0, 20, 5]);
        uf.union(0, 2);
        assert_eq!(uf.get_pivot(2), 0);
        uf.union(2, 3);
        assert_eq!(uf.get_pivot(0), 3);
        uf.union(3, 1);
        assert_eq!(uf.get_pivot(0), 1);
    }

    /// Stress sizes shrink under Miri, whose interpreter is ~3 orders of
    /// magnitude slower; the interleavings it explores don't need large
    /// `n` to expose UB in the CAS protocols.
    fn sized(full: usize) -> usize {
        if cfg!(miri) {
            (full / 50).max(64)
        } else {
            full
        }
    }

    #[test]
    fn concurrent_chain_stress() {
        // Many threads build one long chain; pivot must be the global min.
        let n = sized(20_000);
        let uf = Arc::new(ConcurrentPivotUnionFind::new_identity(n));
        let threads = 8;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let uf = Arc::clone(&uf);
                std::thread::spawn(move || {
                    for i in (t..n - 1).step_by(threads) {
                        uf.union(i as u32, i as u32 + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.get_pivot((n - 1) as u32), 0);
    }

    #[test]
    fn concurrent_random_unions_match_sequential() {
        use rand::{Rng, SeedableRng};
        let n = sized(5_000);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let ops: Vec<(u32, u32)> = (0..4 * n)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();

        let seq = crate::PivotUnionFind::new_identity(n);
        for &(a, b) in &ops {
            seq.union(a, b);
        }

        let conc = Arc::new(ConcurrentPivotUnionFind::new_identity(n));
        let threads = 8;
        let chunk = ops.len().div_ceil(threads);
        let ops = Arc::new(ops);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let conc = Arc::clone(&conc);
                let ops = Arc::clone(&ops);
                std::thread::spawn(move || {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(ops.len());
                    for &(a, b) in &ops[start..end] {
                        conc.union(a, b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Same partition and same pivots as sequential execution.
        for v in 0..n as u32 {
            assert!(conc.same_set(v, seq.find(v)), "partition mismatch at {v}");
            assert_eq!(conc.get_pivot(v), seq.get_pivot(v), "pivot mismatch at {v}");
        }
    }

    #[test]
    fn validate_accepts_concurrent_result() {
        let n = sized(10_000);
        let uf = Arc::new(ConcurrentPivotUnionFind::new_identity(n));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let uf = Arc::clone(&uf);
                std::thread::spawn(move || {
                    for i in (t..n - 1).step_by(8) {
                        uf.union(i as u32, i as u32 + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        uf.validate().unwrap();
    }

    #[test]
    fn validate_after_worker_panics_mid_union_sequence() {
        // Workers union random pairs; some panic partway through. The
        // structure must stay merge-consistent: whatever unions landed
        // are fully applied, pivots included.
        let n = sized(4_000);
        let uf = Arc::new(ConcurrentPivotUnionFind::new_identity(n));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let uf = Arc::clone(&uf);
                std::thread::spawn(move || {
                    for i in (t..n - 1).step_by(8) {
                        if t % 2 == 1 && i > n / 2 {
                            panic!("worker {t} injected failure");
                        }
                        uf.union(i as u32, i as u32 + 1);
                    }
                })
            })
            .collect();
        let mut panics = 0;
        for h in handles {
            if h.join().is_err() {
                panics += 1;
            }
        }
        assert_eq!(panics, 4);
        uf.validate().unwrap();
        // The structure remains fully usable: finish the chain and check
        // the global pivot.
        for i in 0..n - 1 {
            uf.union(i as u32, i as u32 + 1);
        }
        uf.validate().unwrap();
        assert_eq!(uf.get_pivot((n - 1) as u32), 0);
    }

    #[test]
    fn stats_disabled_by_default_and_count_when_enabled() {
        let quiet = ConcurrentPivotUnionFind::new_identity(10);
        quiet.union(0, 1);
        assert!(quiet.counts().is_zero());

        let uf = ConcurrentPivotUnionFind::new_identity(100).with_stats();
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let c = uf.counts();
        assert_eq!(c.unions, 99);
        // Each union: two finds up front plus at least one inside
        // merge_pivot's root re-check.
        assert!(c.finds >= 297, "finds {}", c.finds);
        assert_eq!(c.cas_retries, 0, "no contention single-threaded");
    }

    #[test]
    fn stats_are_coherent_under_contention() {
        // 8 threads race on a dense merge pattern; totals must reflect
        // every successful union exactly once even though retries vary
        // run to run.
        let n = sized(10_000);
        let uf = Arc::new(ConcurrentPivotUnionFind::new_identity(n).with_stats());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let uf = Arc::clone(&uf);
                std::thread::spawn(move || {
                    for i in (t..n - 1).step_by(8) {
                        uf.union(i as u32, i as u32 + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let c = uf.counts();
        // Exactly n-1 merges happened in total, regardless of the race.
        assert_eq!(c.unions, (n - 1) as u64);
        assert!(c.finds >= 2 * c.unions);
        uf.validate().unwrap();
    }

    #[test]
    fn find_is_stable_after_quiescence() {
        let uf = ConcurrentPivotUnionFind::new_identity(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for v in 0..10 {
            assert_eq!(uf.find(v), r);
        }
    }
}
