//! Union-find with **pivot** maintenance (paper §III-B).
//!
//! The PHCD construction algorithm identifies each k-core tree node by its
//! *pivot* — the member with the lowest *vertex rank* (Definition 4/5). To
//! support this, both union-find variants in this crate maintain, at every
//! root, the minimum-key element of its component:
//!
//! * [`PivotUnionFind`] — sequential, path halving + union by rank; the
//!   classical `O(α(n))` amortized structure.
//! * [`ConcurrentPivotUnionFind`] — lock-free (CAS linking, path-halving
//!   finds), in the style of Anderson–Woll / Jayanti–Tarjan, with a pivot
//!   min-merge protocol that converges at quiescence (see module docs of
//!   [`concurrent`]).
//! * [`UnionBatch`] — a thread-local edge coalescer: workers pre-merge
//!   their chunk's edges in a private buffer and forward only spanning
//!   edges, cutting finds, CAS retries, and pivot-merge contention on
//!   the shared structure (see module docs of [`batch`]).
//!
//! Both structure variants implement the common [`UnionFindPivot`] trait
//! so the PHCD algorithm is generic over the execution mode.

pub mod batch;
pub mod concurrent;
pub mod seq;

pub use batch::{BatchStats, UnionBatch};
pub use concurrent::ConcurrentPivotUnionFind;
pub use seq::PivotUnionFind;

/// Operation counters of a union-find instance, collected when stats are
/// enabled with `with_stats()` on either variant (default off: the only
/// cost of disabled stats is one branch per operation).
///
/// These are the structure-level signals the paper's performance story
/// turns on: `find_hops` measures path-compression effectiveness,
/// `cas_retries` measures linking contention (always 0 for the
/// sequential variant), `pivot_merges` measures how often pivot
/// min-merges had to retry or chase relinked roots.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UfCounts {
    /// `find` calls (including those inside `union` / `get_pivot`).
    pub finds: u64,
    /// Parent-pointer hops taken across all finds; `finds > 0` with
    /// `find_hops == 0` means every element pointed straight at a root.
    pub find_hops: u64,
    /// Successful unions (calls that actually merged two components).
    pub unions: u64,
    /// Failed link/rank CAS attempts that forced the union loop to
    /// retry (concurrent variant only).
    pub cas_retries: u64,
    /// Pivot min-merge CAS retries plus root-chase iterations
    /// (sequential variant: pivot overwrites during unions).
    pub pivot_merges: u64,
}

impl UfCounts {
    /// Element-wise sum, for folding per-structure counts into one
    /// report.
    pub fn merged(self, other: UfCounts) -> UfCounts {
        UfCounts {
            finds: self.finds + other.finds,
            find_hops: self.find_hops + other.find_hops,
            unions: self.unions + other.unions,
            cas_retries: self.cas_retries + other.cas_retries,
            pivot_merges: self.pivot_merges + other.pivot_merges,
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == UfCounts::default()
    }
}

/// Common interface of the sequential and concurrent union-find.
///
/// Elements are dense ids `0..n`. Each element has a fixed *key*; the
/// pivot of a component is its minimum-key member. In PHCD the key of a
/// vertex is its vertex rank `r(v)`.
pub trait UnionFindPivot {
    /// Number of elements.
    fn len(&self) -> usize;

    /// Whether the structure is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Representative of `x`'s component.
    fn find(&self, x: u32) -> u32;

    /// Merges the components of `x` and `y`; returns `true` if they were
    /// previously distinct. The pivot of the merged component is the
    /// minimum-key pivot of the two inputs.
    fn union(&self, x: u32, y: u32) -> bool;

    /// Whether `x` and `y` are in the same component.
    fn same_set(&self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }

    /// The pivot (minimum-key member) of `x`'s component.
    ///
    /// For the concurrent variant this is only guaranteed accurate at
    /// quiescence (no concurrent `union` calls), which is how PHCD uses
    /// it: union phases and pivot-read phases are separated by barriers.
    fn get_pivot(&self, x: u32) -> u32;

    /// The fixed key of element `x`.
    fn key(&self, x: u32) -> u32;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<U: UnionFindPivot>(uf: U) {
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(0, 2));
        assert_eq!(uf.get_pivot(1), 0);
        assert!(uf.union(3, 4));
        assert_eq!(uf.get_pivot(4), 3);
        assert!(uf.union(1, 4));
        assert_eq!(uf.get_pivot(3), 0);
    }

    #[test]
    fn seq_implements_trait() {
        exercise(PivotUnionFind::new_identity(5));
    }

    #[test]
    fn concurrent_implements_trait() {
        exercise(ConcurrentPivotUnionFind::new_identity(5));
    }

    #[test]
    fn custom_keys_drive_pivot() {
        // Element 2 has the smallest key, so it wins every merge.
        let keys = vec![5, 4, 0, 3, 1];
        let seq = PivotUnionFind::new(keys.clone());
        seq.union(0, 1);
        seq.union(1, 2);
        assert_eq!(seq.get_pivot(0), 2);

        let conc = ConcurrentPivotUnionFind::new(keys);
        conc.union(0, 1);
        conc.union(1, 2);
        assert_eq!(conc.get_pivot(0), 2);
    }
}
