//! Sequential union-find with pivot.

use std::cell::Cell;

use crate::{UfCounts, UnionFindPivot};

/// `Cell`-based operation tallies (single-threaded, like the structure).
#[derive(Debug, Default)]
struct SeqStats {
    finds: Cell<u64>,
    find_hops: Cell<u64>,
    unions: Cell<u64>,
    pivot_merges: Cell<u64>,
}

/// Sequential union-find with path halving, union by rank, and per-root
/// pivot (minimum-key member) maintenance.
///
/// `find` uses interior mutability (path halving mutates parents) so the
/// structure can be shared immutably by algorithms that interleave finds
/// and unions, matching the concurrent variant's `&self` API.
///
/// # Examples
///
/// ```
/// use hcd_unionfind::{PivotUnionFind, UnionFindPivot};
///
/// let uf = PivotUnionFind::new_identity(4);
/// uf.union(2, 3);
/// uf.union(1, 2);
/// assert!(uf.same_set(1, 3));
/// assert_eq!(uf.get_pivot(3), 1); // smallest key in {1,2,3}
/// ```
pub struct PivotUnionFind {
    parent: Vec<Cell<u32>>,
    rank: Vec<Cell<u8>>,
    pivot: Vec<Cell<u32>>,
    key: Vec<u32>,
    stats: Option<SeqStats>,
}

impl PivotUnionFind {
    /// `n` singleton components with keys equal to element ids.
    pub fn new_identity(n: usize) -> Self {
        Self::new((0..n as u32).collect())
    }

    /// Singleton components whose pivot ordering follows `keys`.
    ///
    /// `keys` must be distinct for pivots to be uniquely defined (PHCD's
    /// vertex rank is a permutation, so this always holds there).
    pub fn new(keys: Vec<u32>) -> Self {
        let n = keys.len();
        PivotUnionFind {
            parent: (0..n as u32).map(Cell::new).collect(),
            rank: vec![Cell::new(0); n],
            pivot: (0..n as u32).map(Cell::new).collect(),
            key: keys,
            stats: None,
        }
    }

    /// Enables operation counting (builder form); see [`UfCounts`].
    /// Disabled (the default), every operation pays only one branch.
    pub fn with_stats(mut self) -> Self {
        self.stats = Some(SeqStats::default());
        self
    }

    /// The operation tallies so far; all-zero when stats are disabled.
    pub fn counts(&self) -> UfCounts {
        match &self.stats {
            Some(s) => UfCounts {
                finds: s.finds.get(),
                find_hops: s.find_hops.get(),
                unions: s.unions.get(),
                cas_retries: 0,
                pivot_merges: s.pivot_merges.get(),
            },
            None => UfCounts::default(),
        }
    }

    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        (0..self.len() as u32)
            .filter(|&x| self.parent[x as usize].get() == x)
            .count()
    }

    /// Checks structural invariants: every parent chain reaches a root
    /// within `len()` steps (no cycles), and every root's pivot is a
    /// member of its own component with the minimum key. Mirrors
    /// [`ConcurrentPivotUnionFind::validate`](crate::ConcurrentPivotUnionFind::validate)
    /// so fault-injection tests can assert both variants stay consistent.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        let parent = |x: usize| self.parent[x].get() as usize;
        let mut root_of = vec![usize::MAX; n];
        for (x, slot) in root_of.iter_mut().enumerate() {
            let mut cur = x;
            let mut steps = 0usize;
            while parent(cur) != cur {
                cur = parent(cur);
                steps += 1;
                if steps > n {
                    return Err(format!("parent chain from {x} does not terminate (cycle)"));
                }
            }
            *slot = cur;
        }
        let mut min_member = vec![usize::MAX; n];
        for (x, &r) in root_of.iter().enumerate() {
            if min_member[r] == usize::MAX || self.key[x] < self.key[min_member[r]] {
                min_member[r] = x;
            }
        }
        for r in 0..n {
            if root_of[r] != r {
                continue;
            }
            let pv = self.pivot[r].get() as usize;
            if pv >= n {
                return Err(format!("root {r} has out-of-range pivot {pv}"));
            }
            if root_of[pv] != r {
                return Err(format!("root {r} pivot {pv} is not in its component"));
            }
            if self.key[pv] != self.key[min_member[r]] {
                return Err(format!(
                    "root {r} pivot {pv} (key {}) is not the minimum key {} of its component",
                    self.key[pv], self.key[min_member[r]]
                ));
            }
        }
        Ok(())
    }
}

impl UnionFindPivot for PivotUnionFind {
    fn len(&self) -> usize {
        self.parent.len()
    }

    fn find(&self, mut x: u32) -> u32 {
        let mut hops = 0u64;
        let root = loop {
            let p = self.parent[x as usize].get();
            if p == x {
                break x;
            }
            hops += 1;
            let gp = self.parent[p as usize].get();
            self.parent[x as usize].set(gp);
            x = gp;
        };
        if let Some(s) = &self.stats {
            s.finds.set(s.finds.get() + 1);
            s.find_hops.set(s.find_hops.get() + hops);
        }
        root
    }

    fn union(&self, x: u32, y: u32) -> bool {
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return false;
        }
        let (winner, loser) = match self.rank[rx as usize]
            .get()
            .cmp(&self.rank[ry as usize].get())
        {
            std::cmp::Ordering::Less => (ry, rx),
            std::cmp::Ordering::Greater => (rx, ry),
            std::cmp::Ordering::Equal => {
                self.rank[rx as usize].set(self.rank[rx as usize].get() + 1);
                (rx, ry)
            }
        };
        self.parent[loser as usize].set(winner);
        let pw = self.pivot[winner as usize].get();
        let pl = self.pivot[loser as usize].get();
        let pivot_updated = self.key[pl as usize] < self.key[pw as usize];
        if pivot_updated {
            self.pivot[winner as usize].set(pl);
        }
        if let Some(s) = &self.stats {
            s.unions.set(s.unions.get() + 1);
            if pivot_updated {
                s.pivot_merges.set(s.pivot_merges.get() + 1);
            }
        }
        true
    }

    fn get_pivot(&self, x: u32) -> u32 {
        let r = self.find(x);
        self.pivot[r as usize].get()
    }

    fn key(&self, x: u32) -> u32 {
        self.key[x as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_pivot() {
        let uf = PivotUnionFind::new_identity(3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.get_pivot(i), i);
        }
        assert_eq!(uf.num_components(), 3);
    }

    #[test]
    fn union_merges_and_counts() {
        let uf = PivotUnionFind::new_identity(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.num_components(), 3); // {0,1,2,3}, {4}, {5}
        assert!(uf.same_set(1, 2));
        assert!(!uf.same_set(1, 4));
    }

    #[test]
    fn pivot_is_min_key_after_chain_merges() {
        let uf = PivotUnionFind::new_identity(8);
        // Merge in an order that forces pivot propagation through winners.
        uf.union(7, 6);
        uf.union(5, 7);
        uf.union(4, 6);
        assert_eq!(uf.get_pivot(7), 4);
        uf.union(0, 7);
        assert_eq!(uf.get_pivot(5), 0);
    }

    #[test]
    fn union_is_idempotent() {
        let uf = PivotUnionFind::new_identity(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn path_halving_preserves_roots() {
        let uf = PivotUnionFind::new_identity(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.get_pivot(99), 0);
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn keys_reported() {
        let uf = PivotUnionFind::new(vec![9, 3, 7]);
        assert_eq!(uf.key(0), 9);
        assert_eq!(uf.key(1), 3);
    }

    #[test]
    fn stats_disabled_by_default_and_count_when_enabled() {
        let quiet = PivotUnionFind::new_identity(10);
        quiet.union(0, 1);
        assert!(quiet.counts().is_zero());

        let uf = PivotUnionFind::new_identity(100).with_stats();
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let c = uf.counts();
        assert_eq!(c.unions, 99);
        // Every union calls find twice.
        assert_eq!(c.finds, 198);
        assert_eq!(c.cas_retries, 0, "sequential variant never retries");
        // Chain merges keep pivot 0 at the root without new minima after
        // the first few unions; pivot_merges counts actual overwrites.
        assert!(c.pivot_merges <= c.unions);
        // Redundant unions count finds but no union.
        let before = uf.counts();
        assert!(!uf.union(0, 99));
        let after = uf.counts();
        assert_eq!(after.unions, before.unions);
        assert_eq!(after.finds, before.finds + 2);
        // find_hops shrink to zero as path halving compresses.
        let _ = uf.find(0);
        let settled = uf.counts();
        uf.find(0);
        assert_eq!(uf.counts().find_hops, settled.find_hops);
    }

    #[test]
    fn validate_accepts_consistent_states() {
        let uf = PivotUnionFind::new_identity(50);
        uf.validate().unwrap();
        for i in 0..49 {
            uf.union(i, i + 1);
            uf.validate().unwrap();
        }
    }

    #[test]
    fn validate_detects_cycle_and_bad_pivot() {
        let uf = PivotUnionFind::new_identity(4);
        uf.union(0, 1);
        // Corrupt the pivot of the merged component's root.
        let root = uf.find(0) as usize;
        uf.pivot[root].set(3);
        assert!(uf.validate().unwrap_err().contains("not in its component"));
        uf.pivot[root].set(1);
        assert!(uf.validate().unwrap_err().contains("minimum key"));
        uf.pivot[root].set(0);
        uf.validate().unwrap();
        // Corrupt the parent pointers into a cycle.
        uf.parent[2].set(3);
        uf.parent[3].set(2);
        assert!(uf.validate().unwrap_err().contains("cycle"));
    }
}
