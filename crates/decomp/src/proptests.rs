//! Cross-algorithm property tests: three independent core decomposition
//! algorithms must agree on arbitrary graphs.

use proptest::prelude::*;

use hcd_graph::builder::build_from_edges;
use hcd_par::Executor;

use crate::{bz, hindex, pkc};

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bz_pkc_hindex_agree(edges in arb_edges(60, 400)) {
        let g = build_from_edges(edges, 0);
        let a = bz::core_decomposition(&g);
        let exec = Executor::rayon(4);
        let b = pkc::pkc_core_decomposition(&g, &exec);
        let c = hindex::hindex_core_decomposition(&g, &exec);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        prop_assert_eq!(b.as_slice(), c.as_slice());
    }

    #[test]
    fn coreness_is_feasible_and_bounded_by_degree(edges in arb_edges(50, 300)) {
        let g = build_from_edges(edges, 0);
        let cd = bz::core_decomposition(&g);
        prop_assert!(cd.check_feasible(&g).is_ok());
        for v in g.vertices() {
            prop_assert!(cd.coreness(v) as usize <= g.degree(v));
        }
    }

    #[test]
    fn removing_a_vertex_never_raises_coreness(edges in arb_edges(30, 150)) {
        // Monotonicity: coreness in a subgraph <= coreness in the graph.
        let g = build_from_edges(edges.clone(), 0);
        if g.num_vertices() < 2 {
            return Ok(());
        }
        let drop = (g.num_vertices() - 1) as u32;
        let filtered: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(u, v)| u != drop && v != drop)
            .collect();
        let h = build_from_edges(filtered, g.num_vertices());
        let cg = bz::core_decomposition(&g);
        let ch = bz::core_decomposition(&h);
        for v in h.vertices() {
            prop_assert!(ch.coreness(v) <= cg.coreness(v));
        }
    }
}
