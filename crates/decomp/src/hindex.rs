//! Iterative local h-index core decomposition (MPM-style).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use hcd_graph::CsrGraph;
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};

use crate::CoreDecomposition;

/// Core decomposition as the fixed point of the neighborhood h-index
/// operator (Montresor et al. \[21\]; Lü et al., Nature Comm. 2016).
///
/// Starting from `c⁰(v) = d(v)`, each round recomputes
/// `cᵗ⁺¹(v) = H({cᵗ(u) : u ∈ N(v)})`, the largest `h` such that `v` has at
/// least `h` neighbors of value `≥ h`. Values decrease monotonically and
/// converge to the coreness in at most `kmax` rounds (usually far fewer).
/// Used both as a secondary parallel baseline and as an *independent
/// oracle* to cross-check BZ and PKC in tests.
pub fn hindex_core_decomposition(g: &CsrGraph, exec: &Executor) -> CoreDecomposition {
    match try_hindex_core_decomposition(g, exec) {
        Ok(cores) => cores,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`hindex_core_decomposition`]: the per-round
/// neighborhood scan polls the executor's cancellation checkpoint at a
/// coarse edge stride, so deadlines and cancel tokens abort the
/// iteration promptly even on a single long round (see `hcd_par`
/// failure model).
pub fn try_hindex_core_decomposition(
    g: &CsrGraph,
    exec: &Executor,
) -> Result<CoreDecomposition, ParError> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok(CoreDecomposition::from_coreness(Vec::new()));
    }

    let values: Vec<AtomicU32> = (0..n as u32)
        .map(|v| AtomicU32::new(g.degree(v) as u32))
        .collect();
    let changed = AtomicBool::new(true);
    let max_deg = g.max_degree();

    let mut rounds = 0usize;
    while changed.swap(false, Ordering::AcqRel) {
        rounds += 1;
        exec.region("hindex.round").try_for_each_chunk(
            n,
            // Scratch: counting array for the h-index computation.
            || vec![0u32; max_deg + 1],
            |_, counts, range| {
                let mut since = 0usize;
                for v in range {
                    let d = g.degree(v as u32) as u32;
                    if d == 0 {
                        continue;
                    }
                    since += d as usize;
                    if since >= CHECKPOINT_STRIDE {
                        exec.checkpoint()?;
                        since = 0;
                    }
                    // Count neighbor values clamped at d.
                    let mut touched: Vec<u32> = Vec::with_capacity(g.degree(v as u32));
                    for &u in g.neighbors(v as u32) {
                        let val = values[u as usize].load(Ordering::Relaxed).min(d);
                        counts[val as usize] += 1;
                        touched.push(val);
                    }
                    // h-index: largest h with at least h neighbors >= h.
                    let mut h = 0u32;
                    let mut cum = 0u32;
                    let mut k = d;
                    loop {
                        cum += counts[k as usize];
                        if cum >= k {
                            h = k;
                            break;
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    for val in touched {
                        counts[val as usize] = 0;
                    }
                    let old = values[v].load(Ordering::Relaxed);
                    if h < old {
                        values[v].store(h, Ordering::Relaxed);
                        changed.store(true, Ordering::Release);
                    }
                }
                Ok(())
            },
        )?;
        debug_assert!(rounds <= n + 1, "h-index iteration failed to converge");
    }

    let coreness: Vec<u32> = values.into_iter().map(AtomicU32::into_inner).collect();
    Ok(CoreDecomposition::from_coreness(coreness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::core_decomposition;
    use hcd_graph::GraphBuilder;

    #[test]
    fn matches_bz_on_mixed_graph() {
        let g = GraphBuilder::new()
            .edges([
                (0, 1),
                (0, 2),
                (1, 2), // triangle
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 2), // cycle through 2
                (6, 7), // isolated edge
            ])
            .min_vertices(10)
            .build();
        let expected = core_decomposition(&g);
        for exec in [Executor::sequential(), Executor::rayon(3)] {
            assert_eq!(hindex_core_decomposition(&g, &exec), expected);
        }
    }

    #[test]
    fn clique_converges_immediately() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b = b.edge(u, v);
            }
        }
        let g = b.build();
        let cd = hindex_core_decomposition(&g, &Executor::sequential());
        assert!(cd.as_slice().iter().all(|&c| c == 5));
    }

    #[test]
    fn long_path_requires_many_rounds_but_converges() {
        let mut b = GraphBuilder::new();
        for i in 0..200u32 {
            b = b.edge(i, i + 1);
        }
        let g = b.build();
        let cd = hindex_core_decomposition(&g, &Executor::simulated(4));
        assert!(cd.as_slice().iter().all(|&c| c == 1));
    }

    #[test]
    fn empty_and_isolated() {
        let g = GraphBuilder::new().min_vertices(5).build();
        let cd = hindex_core_decomposition(&g, &Executor::sequential());
        assert_eq!(cd.as_slice(), &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn respects_cancellation() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0)]).build();
        let exec = Executor::sequential();
        let token = hcd_par::CancelToken::new();
        exec.set_cancel(token.clone());
        token.cancel();
        assert_eq!(
            try_hindex_core_decomposition(&g, &exec).map(|_| ()),
            Err(hcd_par::ParError::Cancelled)
        );
        // Clean rerun after clearing converges to the right answer.
        exec.clear_cancel();
        assert_eq!(hindex_core_decomposition(&g, &exec), core_decomposition(&g));
    }
}
