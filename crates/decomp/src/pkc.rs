//! Parallel level-synchronous core decomposition (ParK/PKC style).

use std::sync::atomic::{AtomicU32, Ordering};

use hcd_graph::{CsrGraph, VertexId};
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};

use crate::CoreDecomposition;

/// Parallel peeling in the style of ParK \[24\] / PKC \[20\].
///
/// For each level `k = 0, 1, …` the frontier of vertices whose current
/// degree equals `k` is peeled; removing a frontier vertex decrements its
/// neighbors' degrees with a CAS loop that never drops a degree below the
/// current level, and the thread whose decrement lands a neighbor exactly
/// on the level claims it for the next frontier (so every vertex is
/// peeled exactly once).
///
/// ## Bucket-major frontier layout
///
/// Instead of rescanning a compacted alive list at every level (the
/// original PKC strategy, `O(n·kmax)` scan work), vertices are kept in
/// *degree buckets*: the initial fill places `v` in `bucket[deg(v)]`, and
/// every decrement that lands above the current level re-files the vertex
/// lazily by appending a `(new_degree, v)` entry. Level `k` then drains
/// only `bucket[k]`, so same-level vertices are scanned contiguously and
/// total scan work is `O(n + m)` — each vertex contributes one entry per
/// degree value it passes through. Entries whose recorded degree no
/// longer matches (the vertex was decremented further before its bucket
/// came up) are stale and skipped; at most one entry per `(degree,
/// vertex)` pair exists, so no vertex is ever peeled twice.
///
/// Re-filed entries are appended serially in chunk order after each
/// wave. Entry *order* inside a bucket still depends on how the wave was
/// chunked (worker count varies by mode), but the *sets* do not: CAS
/// decrements serialize, so each intermediate degree value is observed by
/// exactly one decrement regardless of interleaving. Wave membership,
/// wave counts, coreness output, and all `pkc.*` counters are therefore
/// identical across executor modes.
pub fn pkc_core_decomposition(g: &CsrGraph, exec: &Executor) -> CoreDecomposition {
    match try_pkc_core_decomposition(g, exec) {
        Ok(cores) => cores,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`pkc_core_decomposition`]: returns `Err` if any
/// region panics, is cancelled, or exceeds the executor's deadline. On
/// `Err` all intermediate peeling state is discarded and the executor
/// stays usable (see `hcd_par` failure model).
pub fn try_pkc_core_decomposition(
    g: &CsrGraph,
    exec: &Executor,
) -> Result<CoreDecomposition, ParError> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok(CoreDecomposition::from_coreness(Vec::new()));
    }

    let deg: Vec<AtomicU32> = (0..n as VertexId)
        .map(|v| AtomicU32::new(g.degree(v) as u32))
        .collect();

    // Degree buckets: bucket[d] holds candidates whose degree was last
    // seen as d. Initial fill in id order keeps the drain deterministic.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); g.max_degree() + 1];
    for v in 0..n as VertexId {
        buckets[g.degree(v)].push(v);
    }

    let mut processed = 0usize;
    let mut level: u32 = 0;
    // Observability: peeling rounds, per-wave frontier sizes, and the
    // bucket queue's lazy re-file traffic.
    let mut levels_run = 0u64;
    let mut waves_run = 0u64;
    let mut bucket_pushes = 0u64;
    let mut bucket_skips = 0u64;

    while processed < n {
        levels_run += 1;
        // Drain this level's bucket: entries still at the level seed the
        // frontier; stale entries (vertex decremented past this bucket
        // before it came up) are dropped.
        let bucket = std::mem::take(&mut buckets[level as usize]);
        let parts = exec
            .region("pkc.scan")
            .try_map_chunks(bucket.len(), |_, range| {
                let mut frontier = Vec::new();
                let mut skipped = 0u64;
                for &v in &bucket[range] {
                    if deg[v as usize].load(Ordering::Relaxed) == level {
                        frontier.push(v);
                    } else {
                        skipped += 1;
                    }
                }
                Ok((frontier, skipped))
            })?;
        let mut frontier: Vec<VertexId> = Vec::new();
        for (f, skipped) in parts {
            frontier.extend(f);
            bucket_skips += skipped;
        }

        // Peel the frontier in waves until it drains. Wave work is
        // proportional to frontier degrees, so chunk by degree weight.
        while !frontier.is_empty() {
            waves_run += 1;
            // Frontier-size samples: high-water mark in the metrics
            // snapshot, one counter-track point per wave in the trace.
            exec.gauge("pkc.frontier", frontier.len() as u64);
            processed += frontier.len();
            let wave_prefix: Vec<u64> = {
                let mut p = Vec::with_capacity(frontier.len() + 1);
                p.push(0u64);
                for &v in &frontier {
                    p.push(p.last().unwrap() + g.degree(v) as u64 + 1);
                }
                p
            };
            // The CAS decrement loop is the hot path, so it polls the
            // cancellation checkpoint at a coarse edge stride.
            let waves =
                exec.region("pkc.wave")
                    .try_map_chunks_weighted(&wave_prefix, |_, range| {
                        let mut next = Vec::new();
                        let mut refile: Vec<(u32, VertexId)> = Vec::new();
                        let mut since = 0usize;
                        for &v in &frontier[range] {
                            since += g.degree(v);
                            if since >= CHECKPOINT_STRIDE {
                                exec.checkpoint()?;
                                since = 0;
                            }
                            for &u in g.neighbors(v) {
                                // Decrement u unless it is already at (or below)
                                // the level; the decrement that lands exactly on
                                // `level` claims u for the next wave, any other
                                // landing re-files u under its new degree.
                                let mut d = deg[u as usize].load(Ordering::Relaxed);
                                while d > level {
                                    match deg[u as usize].compare_exchange_weak(
                                        d,
                                        d - 1,
                                        Ordering::AcqRel,
                                        Ordering::Acquire,
                                    ) {
                                        Ok(_) => {
                                            if d - 1 == level {
                                                next.push(u);
                                            } else {
                                                refile.push((d - 1, u));
                                            }
                                            break;
                                        }
                                        Err(cur) => d = cur,
                                    }
                                }
                            }
                        }
                        Ok((next, refile))
                    })?;
            let mut next_frontier: Vec<VertexId> = Vec::new();
            for (next, refile) in waves {
                next_frontier.extend(next);
                bucket_pushes += refile.len() as u64;
                for (d, u) in refile {
                    buckets[d as usize].push(u);
                }
            }
            frontier = next_frontier;
        }
        level += 1;
    }
    debug_assert_eq!(processed, n, "every vertex peeled exactly once");
    exec.add_counter("pkc.levels", levels_run);
    exec.add_counter("pkc.waves", waves_run);
    exec.add_counter("pkc.bucket_pushes", bucket_pushes);
    exec.add_counter("pkc.bucket_skips", bucket_skips);

    let coreness: Vec<u32> = deg.into_iter().map(AtomicU32::into_inner).collect();
    Ok(CoreDecomposition::from_coreness(coreness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::core_decomposition;
    use hcd_graph::GraphBuilder;

    fn check_matches_bz(g: &CsrGraph) {
        let expected = core_decomposition(g);
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(3),
        ] {
            let got = pkc_core_decomposition(g, &exec);
            assert_eq!(got, expected, "mode {}", exec.mode_name());
        }
    }

    #[test]
    fn matches_bz_on_small_graphs() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build();
        check_matches_bz(&g);
    }

    #[test]
    fn matches_bz_on_clique_chain() {
        let mut b = GraphBuilder::new();
        // Chain of K4s sharing one vertex each.
        for c in 0..5u32 {
            let base = c * 3;
            let ids = [base, base + 1, base + 2, base + 3];
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b = b.edge(ids[i], ids[j]);
                }
            }
        }
        check_matches_bz(&b.build());
    }

    #[test]
    fn matches_bz_with_isolated_vertices() {
        let g = GraphBuilder::new().edge(0, 1).min_vertices(50).build();
        check_matches_bz(&g);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let cd = pkc_core_decomposition(&g, &Executor::sequential());
        assert!(cd.is_empty());
    }

    #[test]
    fn star_graph_parallel() {
        let mut b = GraphBuilder::new();
        for i in 1..100u32 {
            b = b.edge(0, i);
        }
        check_matches_bz(&b.build());
    }

    #[test]
    fn bucket_counters_are_coherent() {
        // K5 on {0..4} plus vertex 5 with three clique edges and two
        // pendant leaves: peeling the leaves at level 1 re-files vertex 5
        // through buckets 4 and 3, and the bucket-4 entry goes stale by
        // the time level 4 drains it — so both counters are exercised.
        let mut b = GraphBuilder::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b = b.edge(i, j);
            }
        }
        let g = b.edges([(5, 0), (5, 1), (5, 2), (5, 6), (5, 7)]).build();
        let mut seen: Option<(u64, u64)> = None;
        for exec in [
            Executor::sequential().with_metrics(),
            Executor::rayon(4).with_metrics(),
            Executor::simulated(3).with_metrics(),
        ] {
            let cd = pkc_core_decomposition(&g, &exec);
            assert_eq!(cd.kmax(), 4);
            let m = exec.take_metrics();
            let by_name = |name: &str| {
                m.counters
                    .iter()
                    .find(|c| c.name == name)
                    .unwrap_or_else(|| panic!("counter {name} missing"))
                    .value
            };
            let pushes = by_name("pkc.bucket_pushes");
            let skips = by_name("pkc.bucket_skips");
            assert!(pushes > 0, "re-filing happened");
            assert!(skips > 0, "a stale entry was drained");
            match seen {
                None => seen = Some((pushes, skips)),
                Some(prev) => assert_eq!(
                    prev,
                    (pushes, skips),
                    "bucket counters deterministic across modes ({})",
                    exec.mode_name()
                ),
            }
        }
    }
}
