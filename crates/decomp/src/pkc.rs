//! Parallel level-synchronous core decomposition (ParK/PKC style).

use std::sync::atomic::{AtomicU32, Ordering};

use hcd_graph::{CsrGraph, VertexId};
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};

use crate::CoreDecomposition;

/// Parallel peeling in the style of ParK \[24\] / PKC \[20\].
///
/// For each level `k = 0, 1, …` the frontier of vertices whose current
/// degree equals `k` is peeled; removing a frontier vertex decrements its
/// neighbors' degrees with a CAS loop that never drops a degree below the
/// current level, and the thread whose decrement lands a neighbor exactly
/// on the level claims it for the next frontier (so every vertex is
/// peeled exactly once). Work is `O(n·kmax + m)`; the `n·kmax` term comes
/// from the per-level scans, mitigated — as in PKC — by compacting the
/// scan list to the still-alive vertices after every level.
pub fn pkc_core_decomposition(g: &CsrGraph, exec: &Executor) -> CoreDecomposition {
    match try_pkc_core_decomposition(g, exec) {
        Ok(cores) => cores,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`pkc_core_decomposition`]: returns `Err` if any
/// region panics, is cancelled, or exceeds the executor's deadline. On
/// `Err` all intermediate peeling state is discarded and the executor
/// stays usable (see `hcd_par` failure model).
pub fn try_pkc_core_decomposition(
    g: &CsrGraph,
    exec: &Executor,
) -> Result<CoreDecomposition, ParError> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok(CoreDecomposition::from_coreness(Vec::new()));
    }

    let deg: Vec<AtomicU32> = (0..n as VertexId)
        .map(|v| AtomicU32::new(g.degree(v) as u32))
        .collect();

    let mut processed = 0usize;
    let mut level: u32 = 0;
    // Alive vertices, compacted after each level (the PKC optimization).
    let mut alive: Vec<VertexId> = (0..n as VertexId).collect();
    // Observability: peeling rounds and per-wave frontier sizes.
    let mut levels_run = 0u64;
    let mut waves_run = 0u64;

    while processed < n {
        levels_run += 1;
        // Scan the alive list: vertices at the current level seed the
        // frontier; the rest survive into the next alive list.
        let parts = exec
            .region("pkc.scan")
            .try_map_chunks(alive.len(), |_, range| {
                let mut frontier = Vec::new();
                let mut keep = Vec::new();
                for &v in &alive[range] {
                    if deg[v as usize].load(Ordering::Relaxed) == level {
                        frontier.push(v);
                    } else {
                        keep.push(v);
                    }
                }
                Ok((frontier, keep))
            })?;
        let mut frontier: Vec<VertexId> = Vec::new();
        let mut next_alive: Vec<VertexId> = Vec::with_capacity(alive.len());
        for (f, k) in parts {
            frontier.extend(f);
            next_alive.extend(k);
        }
        alive = next_alive;

        // Peel the frontier in waves until it drains. Wave work is
        // proportional to frontier degrees, so chunk by degree weight.
        while !frontier.is_empty() {
            waves_run += 1;
            // Frontier-size samples: high-water mark in the metrics
            // snapshot, one counter-track point per wave in the trace.
            exec.gauge("pkc.frontier", frontier.len() as u64);
            processed += frontier.len();
            let wave_prefix: Vec<u64> = {
                let mut p = Vec::with_capacity(frontier.len() + 1);
                p.push(0u64);
                for &v in &frontier {
                    p.push(p.last().unwrap() + g.degree(v) as u64 + 1);
                }
                p
            };
            // The CAS decrement loop is the hot path, so it polls the
            // cancellation checkpoint at a coarse edge stride.
            let waves =
                exec.region("pkc.wave")
                    .try_map_chunks_weighted(&wave_prefix, |_, range| {
                        let mut next = Vec::new();
                        let mut since = 0usize;
                        for &v in &frontier[range] {
                            since += g.degree(v);
                            if since >= CHECKPOINT_STRIDE {
                                exec.checkpoint()?;
                                since = 0;
                            }
                            for &u in g.neighbors(v) {
                                // Decrement u unless it is already at (or below)
                                // the level; the decrement that lands exactly on
                                // `level` claims u for the next wave.
                                let mut d = deg[u as usize].load(Ordering::Relaxed);
                                while d > level {
                                    match deg[u as usize].compare_exchange_weak(
                                        d,
                                        d - 1,
                                        Ordering::AcqRel,
                                        Ordering::Acquire,
                                    ) {
                                        Ok(_) => {
                                            if d - 1 == level {
                                                next.push(u);
                                            }
                                            break;
                                        }
                                        Err(cur) => d = cur,
                                    }
                                }
                            }
                        }
                        Ok(next)
                    })?;
            frontier = waves.into_iter().flatten().collect();
        }
        // Vertices claimed mid-level were removed from neither `alive`
        // nor double-counted: their degree now equals `level`, so the
        // next level's scan would re-seed them — filter them out by
        // degree < next level check. They were already processed, so
        // drop them from `alive` now.
        alive.retain(|&v| deg[v as usize].load(Ordering::Relaxed) > level);
        level += 1;
    }
    exec.add_counter("pkc.levels", levels_run);
    exec.add_counter("pkc.waves", waves_run);

    let coreness: Vec<u32> = deg.into_iter().map(AtomicU32::into_inner).collect();
    Ok(CoreDecomposition::from_coreness(coreness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::core_decomposition;
    use hcd_graph::GraphBuilder;

    fn check_matches_bz(g: &CsrGraph) {
        let expected = core_decomposition(g);
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(3),
        ] {
            let got = pkc_core_decomposition(g, &exec);
            assert_eq!(got, expected, "mode {}", exec.mode_name());
        }
    }

    #[test]
    fn matches_bz_on_small_graphs() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build();
        check_matches_bz(&g);
    }

    #[test]
    fn matches_bz_on_clique_chain() {
        let mut b = GraphBuilder::new();
        // Chain of K4s sharing one vertex each.
        for c in 0..5u32 {
            let base = c * 3;
            let ids = [base, base + 1, base + 2, base + 3];
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b = b.edge(ids[i], ids[j]);
                }
            }
        }
        check_matches_bz(&b.build());
    }

    #[test]
    fn matches_bz_with_isolated_vertices() {
        let g = GraphBuilder::new().edge(0, 1).min_vertices(50).build();
        check_matches_bz(&g);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let cd = pkc_core_decomposition(&g, &Executor::sequential());
        assert!(cd.is_empty());
    }

    #[test]
    fn star_graph_parallel() {
        let mut b = GraphBuilder::new();
        for i in 1..100u32 {
            b = b.edge(0, i);
        }
        check_matches_bz(&b.build());
    }
}
