//! Core decomposition algorithms.
//!
//! The coreness `c(v)` of a vertex is the largest `k` such that `v`
//! belongs to a k-core (a maximal connected subgraph of minimum degree
//! `k`). Computing `c(v)` for all vertices is the *core decomposition*,
//! the mandatory input of both HCD construction (paper §III) and subgraph
//! search (§IV).
//!
//! Three independent implementations are provided and cross-checked in
//! tests:
//!
//! * [`bz::core_decomposition`] — the serial Batagelj–Zaversnik bin-sort
//!   peeling algorithm, `O(m)` \[19\].
//! * [`pkc::pkc_core_decomposition`] — parallel level-synchronous peeling
//!   in the style of ParK/PKC \[20\], \[24\]: `O(n·kmax + m)` work with
//!   frontier expansion via atomic degree decrements, plus the PKC
//!   remaining-vertex compaction optimization.
//! * [`hindex::hindex_core_decomposition`] — the iterative local h-index
//!   fixed point (MPM-style \[21\]), converging from degrees downward.

pub mod bz;
pub mod hindex;
pub mod pkc;

pub use bz::core_decomposition;
pub use hindex::{hindex_core_decomposition, try_hindex_core_decomposition};
pub use pkc::{pkc_core_decomposition, try_pkc_core_decomposition};

use hcd_graph::{CsrGraph, VertexId};

/// The result of a core decomposition.
///
/// # Examples
///
/// ```
/// use hcd_graph::GraphBuilder;
/// use hcd_decomp::core_decomposition;
///
/// // Triangle with a pendant vertex.
/// let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0), (2, 3)]).build();
/// let cores = core_decomposition(&g);
/// assert_eq!(cores.coreness(0), 2);
/// assert_eq!(cores.coreness(3), 1);
/// assert_eq!(cores.kmax(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    coreness: Vec<u32>,
    kmax: u32,
}

impl CoreDecomposition {
    /// Wraps a raw coreness array.
    pub fn from_coreness(coreness: Vec<u32>) -> Self {
        let kmax = coreness.iter().copied().max().unwrap_or(0);
        CoreDecomposition { coreness, kmax }
    }

    /// Coreness of `v`.
    #[inline]
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.coreness[v as usize]
    }

    /// The graph degeneracy: the largest `k` with a non-empty k-core.
    #[inline]
    pub fn kmax(&self) -> u32 {
        self.kmax
    }

    /// The raw coreness array.
    pub fn as_slice(&self) -> &[u32] {
        &self.coreness
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.coreness.len()
    }

    /// Whether the decomposition covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.coreness.is_empty()
    }

    /// Groups vertices into shells: `shells()[k]` lists the vertices of
    /// coreness `k` in ascending id (the k-shell `H_k`).
    pub fn shells(&self) -> Vec<Vec<VertexId>> {
        let mut shells = vec![Vec::new(); self.kmax as usize + 1];
        for (v, &c) in self.coreness.iter().enumerate() {
            shells[c as usize].push(v as VertexId);
        }
        shells
    }

    /// The vertices of the `k`-core set `K_k` (all vertices of coreness
    /// `>= k`), ascending.
    pub fn core_set(&self, k: u32) -> Vec<VertexId> {
        (0..self.coreness.len() as VertexId)
            .filter(|&v| self.coreness[v as usize] >= k)
            .collect()
    }

    /// Definitional sanity check: in the subgraph induced by vertices of
    /// coreness `>= c(v)`, `v` must keep at least `c(v)` neighbors. This
    /// is necessary (not sufficient) for correctness and cheap; full
    /// correctness is established in tests by cross-checking independent
    /// algorithms.
    pub fn check_feasible(&self, g: &CsrGraph) -> Result<(), String> {
        if self.coreness.len() != g.num_vertices() {
            return Err("coreness length mismatch".into());
        }
        for v in g.vertices() {
            let c = self.coreness(v);
            let supporters = g
                .neighbors(v)
                .iter()
                .filter(|&&u| self.coreness(u) >= c)
                .count();
            if (supporters as u32) < c {
                return Err(format!(
                    "vertex {v} has coreness {c} but only {supporters} supporters"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    #[test]
    fn shells_partition_vertices() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)])
            .build();
        let cd = core_decomposition(&g);
        let shells = cd.shells();
        let total: usize = shells.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_vertices());
        assert_eq!(shells[2], vec![0, 1, 2]);
        assert_eq!(shells[1], vec![3, 4, 5]);
    }

    #[test]
    fn core_set_is_suffix_union_of_shells() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let cd = core_decomposition(&g);
        assert_eq!(cd.core_set(2), vec![0, 1, 2]);
        assert_eq!(cd.core_set(1), vec![0, 1, 2, 3]);
        assert_eq!(cd.core_set(3), Vec::<VertexId>::new());
    }

    #[test]
    fn feasibility_check_passes_on_valid_input() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let cd = core_decomposition(&g);
        assert!(cd.check_feasible(&g).is_ok());
    }

    #[test]
    fn feasibility_check_catches_inflation() {
        let g = GraphBuilder::new().edges([(0, 1)]).build();
        let bogus = CoreDecomposition::from_coreness(vec![5, 5]);
        assert!(bogus.check_feasible(&g).is_err());
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = GraphBuilder::new().build();
        let cd = core_decomposition(&g);
        assert_eq!(cd.kmax(), 0);
        assert!(cd.is_empty());
        assert!(cd.shells().len() == 1 && cd.shells()[0].is_empty());
    }
}

#[cfg(test)]
mod proptests;
