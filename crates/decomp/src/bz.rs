//! Serial Batagelj–Zaversnik core decomposition.

use hcd_graph::{CsrGraph, VertexId};

use crate::CoreDecomposition;

/// The `O(m)` bin-sort peeling algorithm of Batagelj & Zaversnik \[19\].
///
/// Vertices are kept bucketed by their *current* degree; the algorithm
/// repeatedly removes a vertex of minimum current degree, assigns it that
/// degree as coreness (monotonically clamped), and decrements its
/// remaining neighbors, moving them between buckets in `O(1)` via the
/// classic `bin`/`pos`/`vert` swap trick.
pub fn core_decomposition(g: &CsrGraph) -> CoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return CoreDecomposition::from_coreness(Vec::new());
    }
    let max_deg = g.max_degree();

    // deg[v]: current degree during peeling.
    let mut deg: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v) as u32).collect();

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bin[i + 1] += bin[i];
    }
    let mut start = bin.clone(); // start[d] = first index of bucket d in vert
    let mut vert = vec![0 as VertexId; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n as VertexId {
            let d = deg[v as usize] as usize;
            vert[cursor[d]] = v;
            pos[v as usize] = cursor[d];
            cursor[d] += 1;
        }
    }

    let mut coreness = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        let dv = deg[v as usize];
        coreness[v as usize] = dv;
        // Peel v: decrement every neighbor of larger current degree.
        for &u in g.neighbors(v) {
            let du = deg[u as usize];
            if du > dv {
                // Swap u with the first element of its bucket, then shrink
                // the bucket boundary so u lands in bucket du-1.
                let pu = pos[u as usize];
                let pw = start[du as usize];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[w as usize] = pu;
                    pos[u as usize] = pw;
                }
                start[du as usize] += 1;
                deg[u as usize] = du - 1;
            }
        }
    }
    CoreDecomposition::from_coreness(coreness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    #[test]
    fn clique_coreness() {
        // K5: every vertex has coreness 4.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        let g = b.build();
        let cd = core_decomposition(&g);
        assert!(cd.as_slice().iter().all(|&c| c == 4));
        assert_eq!(cd.kmax(), 4);
    }

    #[test]
    fn path_coreness_is_one() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build();
        let cd = core_decomposition(&g);
        assert_eq!(cd.as_slice(), &[1, 1, 1, 1]);
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let g = GraphBuilder::new().edge(0, 1).min_vertices(4).build();
        let cd = core_decomposition(&g);
        assert_eq!(cd.coreness(2), 0);
        assert_eq!(cd.coreness(3), 0);
    }

    #[test]
    fn paper_figure_1_structure() {
        // A graph in the spirit of Figure 1: a 4-clique core (coreness >= 3
        // region) inside a sparser 2-core ring.
        let g = GraphBuilder::new()
            // K5 missing nothing: 5-clique => coreness 4 for 0..5
            .edges([
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
            ])
            // a triangle attached to vertex 0: coreness 2
            .edges([(5, 6), (6, 7), (7, 5), (5, 0), (6, 0)])
            // a pendant path: coreness 1
            .edges([(7, 8), (8, 9)])
            .build();
        let cd = core_decomposition(&g);
        for v in 0..5 {
            assert_eq!(cd.coreness(v), 4, "clique vertex {v}");
        }
        for v in 5..8 {
            assert_eq!(cd.coreness(v), 2, "triangle vertex {v}");
        }
        assert_eq!(cd.coreness(8), 1);
        assert_eq!(cd.coreness(9), 1);
        assert_eq!(cd.kmax(), 4);
    }

    #[test]
    fn star_center_coreness_one() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)])
            .build();
        let cd = core_decomposition(&g);
        assert!(cd.as_slice().iter().all(|&c| c == 1));
    }

    #[test]
    fn two_cliques_joined_by_bridge() {
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b = b.edge(u, v); // K4 on 0..4
            }
        }
        for u in 10..14u32 {
            for v in (u + 1)..14 {
                b = b.edge(u, v); // K4 on 10..14
            }
        }
        let g = b.edge(3, 10).build();
        let cd = core_decomposition(&g);
        for v in [0u32, 1, 2, 3, 10, 11, 12, 13] {
            assert_eq!(cd.coreness(v), 3);
        }
        // Unused ids 4..10 are isolated.
        assert_eq!(cd.coreness(5), 0);
    }
}
