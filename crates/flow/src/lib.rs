//! Max-flow and exact densest subgraph.
//!
//! The paper's densest-subgraph experiments (Table IV) compare
//! *approximate* algorithms; their quality claims rest on the classical
//! 0.5-approximation guarantee of core-based candidates. This crate
//! provides the exact optimum so the guarantee can be *verified* in
//! tests: [`dinic::Dinic`] is a standard max-flow implementation and
//! [`goldberg::densest_subgraph`] is Goldberg's binary-search reduction
//! of densest subgraph to min-cut.
//!
//! The crate also hosts the cut machinery for the third §VI model:
//! [`mincut::stoer_wagner`] (global minimum cut) and
//! [`kecc::k_edge_connected_components`] (k-ECC decomposition by
//! partition refinement).

pub mod dinic;
pub mod goldberg;
pub mod kecc;
pub mod mincut;

pub use dinic::Dinic;
pub use goldberg::densest_subgraph;
pub use kecc::{ecc_connectivity, k_edge_connected_components};
pub use mincut::stoer_wagner;
