//! Stoer–Wagner global minimum cut.

use hcd_graph::{CsrGraph, VertexId};

/// Computes a global minimum edge cut of a connected graph with unit
/// edge weights: returns `(cut_value, side)` where `side` is one shore
/// of the cut (original vertex ids of `g`).
///
/// Classic Stoer–Wagner (1997) over an adjacency matrix with vertex
/// merging: `O(n³)` time, `O(n²)` space — a reference implementation for
/// the k-ECC decomposition, not a scalable solver.
///
/// Returns `None` for graphs with fewer than 2 vertices.
pub fn stoer_wagner(g: &CsrGraph) -> Option<(u64, Vec<VertexId>)> {
    let n = g.num_vertices();
    if n < 2 {
        return None;
    }
    // Dense weight matrix.
    let mut w = vec![vec![0u64; n]; n];
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            w[v as usize][u as usize] += 1;
        }
    }
    // merged[i]: original vertices currently contracted into supernode i.
    let mut members: Vec<Vec<VertexId>> = (0..n as VertexId).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best: Option<(u64, Vec<VertexId>)> = None;
    while active.len() > 1 {
        // Maximum adjacency ordering ("minimum cut phase").
        let mut in_a = vec![false; n];
        let mut weight_to_a = vec![0u64; n];
        let mut order = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weight_to_a[v])
                .expect("active set non-empty");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weight_to_a[v] += w[next][v];
                }
            }
        }
        let t = *order.last().expect("phase visits every supernode");
        let s = order[order.len() - 2];
        let cut_of_phase = weight_to_a[t];
        let candidate = (cut_of_phase, members[t].clone());
        if best.as_ref().map_or(true, |(b, _)| candidate.0 < *b) {
            best = Some(candidate);
        }
        // Merge t into s.
        let moved = std::mem::take(&mut members[t]);
        members[s].extend(moved);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    #[test]
    fn bridge_has_cut_one() {
        // Two triangles joined by one edge.
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0)])
            .edges([(3, 4), (4, 5), (5, 3)])
            .edge(2, 3)
            .build();
        let (cut, side) = stoer_wagner(&g).unwrap();
        assert_eq!(cut, 1);
        let mut side = side;
        side.sort_unstable();
        assert!(side == vec![0, 1, 2] || side == vec![3, 4, 5]);
    }

    #[test]
    fn clique_cut_is_degree() {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        let (cut, side) = stoer_wagner(&b.build()).unwrap();
        assert_eq!(cut, 4);
        assert!(side.len() == 1 || side.len() == 4);
    }

    #[test]
    fn cycle_cut_is_two() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
            .build();
        let (cut, _) = stoer_wagner(&g).unwrap();
        assert_eq!(cut, 2);
    }

    #[test]
    fn matches_flow_based_connectivity_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..15 {
            let n = rng.gen_range(3..9u32);
            let mut b = GraphBuilder::new().min_vertices(n as usize);
            // Ensure connectivity with a cycle, then add noise.
            for i in 0..n {
                b = b.edge(i, (i + 1) % n);
            }
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.35) {
                        b = b.edge(u, v);
                    }
                }
            }
            let g = b.build();
            let (cut, _) = stoer_wagner(&g).unwrap();
            // Global min cut = min over t of maxflow(0, t).
            let mut expect = u64::MAX;
            for t in 1..n as usize {
                let mut net = crate::Dinic::new(g.num_vertices());
                for (a, bb) in g.edges() {
                    net.add_edge(a as usize, bb as usize, 1.0);
                    net.add_edge(bb as usize, a as usize, 1.0);
                }
                expect = expect.min(net.max_flow(0, t).round() as u64);
            }
            assert_eq!(cut, expect, "n={n}");
        }
    }

    #[test]
    fn tiny_graphs() {
        assert!(stoer_wagner(&GraphBuilder::new().min_vertices(1).build()).is_none());
        let g = GraphBuilder::new().edge(0, 1).build();
        let (cut, _) = stoer_wagner(&g).unwrap();
        assert_eq!(cut, 1);
    }
}
