//! k-edge-connected components (the third §VI model).
//!
//! A *k-ECC* is a maximal subgraph whose induced edge connectivity is at
//! least `k`; like k-cores and k-trusses, the k-ECCs of all levels nest
//! into a hierarchy (Chang et al. \[40\]). This module provides a
//! reference decomposition by cut-based partition refinement: while some
//! part has a global min cut below `k` (Stoer–Wagner), split it along
//! the cut. `O(splits · n³)` — definition-faithful and thoroughly
//! testable, not scalable; the paper's §VI remark that the PHCD
//! paradigm could parallelize such hierarchies is future work here too.

use hcd_graph::traversal::connected_components_filtered;
use hcd_graph::{CsrGraph, InducedSubgraph, VertexId};

use crate::mincut::stoer_wagner;

/// The maximal k-edge-connected components of `g`: disjoint vertex sets,
/// each sorted ascending, in deterministic (smallest-member) order.
///
/// Singleton vertices are k-ECCs vacuously for `k == 0` only; for
/// `k >= 1` a component must contain at least one edge, and singletons
/// are omitted (matching the convention of \[40\] where k-ECCs have at
/// least two vertices).
pub fn k_edge_connected_components(g: &CsrGraph, k: u32) -> Vec<Vec<VertexId>> {
    if k == 0 {
        let (labels, count) = hcd_graph::traversal::connected_components(g);
        let mut parts = vec![Vec::new(); count];
        for v in g.vertices() {
            parts[labels[v as usize] as usize].push(v);
        }
        return parts;
    }
    let mut result: Vec<Vec<VertexId>> = Vec::new();
    let mut queue: Vec<Vec<VertexId>> = initial_components(g);
    while let Some(part) = queue.pop() {
        if part.len() < 2 {
            continue;
        }
        let sub = InducedSubgraph::new(g, &part);
        match stoer_wagner(sub.graph()) {
            Some((cut, side)) if cut < k as u64 => {
                // Split along the cut and re-queue each shore's connected
                // pieces.
                let mut in_side = vec![false; sub.graph().num_vertices()];
                for &v in &side {
                    in_side[v as usize] = true;
                }
                for keep in [true, false] {
                    let (labels, count) =
                        connected_components_filtered(sub.graph(), |v| in_side[v as usize] == keep);
                    let mut pieces = vec![Vec::new(); count];
                    for v in sub.graph().vertices() {
                        let l = labels[v as usize];
                        if l != hcd_graph::traversal::NO_COMPONENT {
                            pieces[l as usize].push(sub.original_id(v));
                        }
                    }
                    queue.extend(pieces);
                }
            }
            Some(_) => result.push(part),
            None => {}
        }
    }
    for part in &mut result {
        part.sort_unstable();
    }
    result.sort_by_key(|p| p[0]);
    result
}

/// Connected components with at least 2 vertices, as the starting
/// partition.
fn initial_components(g: &CsrGraph) -> Vec<Vec<VertexId>> {
    let (labels, count) = hcd_graph::traversal::connected_components(g);
    let mut parts = vec![Vec::new(); count];
    for v in g.vertices() {
        parts[labels[v as usize] as usize].push(v);
    }
    parts.retain(|p| p.len() >= 2);
    parts
}

/// The edge-connectivity analogue of coreness: for every vertex, the
/// largest `k` such that some k-ECC contains it. Computed by running the
/// decomposition for increasing `k` until everything dissolves —
/// reference quality, `O(λmax)` decompositions.
pub fn ecc_connectivity(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut conn = vec![0u32; n];
    let mut k = 1u32;
    loop {
        let parts = k_edge_connected_components(g, k);
        if parts.is_empty() {
            break;
        }
        for part in &parts {
            for &v in part {
                conn[v as usize] = k;
            }
        }
        k += 1;
    }
    conn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dinic;
    use hcd_graph::GraphBuilder;

    /// Pairwise edge connectivity within an induced subgraph, via flow.
    fn subgraph_connectivity(g: &CsrGraph, part: &[VertexId]) -> u64 {
        let sub = InducedSubgraph::new(g, part);
        let sg = sub.graph();
        let n = sg.num_vertices();
        let mut min = u64::MAX;
        for t in 1..n {
            let mut net = Dinic::new(n);
            for (a, b) in sg.edges() {
                net.add_edge(a as usize, b as usize, 1.0);
                net.add_edge(b as usize, a as usize, 1.0);
            }
            min = min.min(net.max_flow(0, t).round() as u64);
        }
        min
    }

    #[test]
    fn two_cliques_with_bridge_split_at_k2() {
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b = b.edge(u, v);
            }
        }
        for u in 10..14u32 {
            for v in (u + 1)..14 {
                b = b.edge(u, v);
            }
        }
        let g = b.edge(0, 10).build();
        // k=1: one component (the bridge holds it together).
        let one = k_edge_connected_components(&g, 1);
        assert_eq!(one.len(), 1);
        // k=2: the bridge fails; two K4s remain.
        let two = k_edge_connected_components(&g, 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0], vec![0, 1, 2, 3]);
        assert_eq!(two[1], vec![10, 11, 12, 13]);
        // k=3: K4 is 3-edge-connected.
        assert_eq!(k_edge_connected_components(&g, 3).len(), 2);
        // k=4: everything dissolves.
        assert!(k_edge_connected_components(&g, 4).is_empty());
    }

    #[test]
    fn components_are_internally_k_connected_and_maximal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        for case in 0..10 {
            let n = rng.gen_range(5..12u32);
            let mut b = GraphBuilder::new().min_vertices(n as usize);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.4) {
                        b = b.edge(u, v);
                    }
                }
            }
            let g = b.build();
            for k in 1..4u32 {
                let parts = k_edge_connected_components(&g, k);
                // Disjointness.
                let mut seen = vec![false; g.num_vertices()];
                for part in &parts {
                    for &v in part {
                        assert!(!seen[v as usize], "case {case}: overlap at {v}");
                        seen[v as usize] = true;
                    }
                    // Internal connectivity >= k.
                    assert!(
                        subgraph_connectivity(&g, part) >= k as u64,
                        "case {case} k={k}: part {part:?} under-connected"
                    );
                }
            }
        }
    }

    #[test]
    fn connectivity_levels_nest() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]) // K4
            .edges([(3, 4), (4, 5), (5, 3)]) // triangle
            .edges([(5, 6)]) // pendant
            .build();
        let conn = ecc_connectivity(&g);
        for (v, &c) in conn.iter().enumerate().take(4) {
            assert_eq!(c, 3, "K4 member {v}");
        }
        assert_eq!(conn[4], 2);
        assert_eq!(conn[5], 2);
        assert_eq!(conn[6], 1);
        // Nesting: {c >= 2} components refine {c >= 1} components.
        let k1 = k_edge_connected_components(&g, 1);
        let k2 = k_edge_connected_components(&g, 2);
        for part in &k2 {
            let container = k1
                .iter()
                .filter(|p| part.iter().all(|v| p.contains(v)))
                .count();
            assert_eq!(container, 1, "k-ECC {part:?} not nested");
        }
    }

    #[test]
    fn k0_returns_plain_components() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (2, 3)])
            .min_vertices(5)
            .build();
        let parts = k_edge_connected_components(&g, 0);
        assert_eq!(parts.len(), 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn edgeless_graph() {
        let g = GraphBuilder::new().min_vertices(3).build();
        assert!(k_edge_connected_components(&g, 1).is_empty());
        assert_eq!(ecc_connectivity(&g), vec![0, 0, 0]);
    }
}
