//! Dinic's max-flow algorithm.

/// A max-flow network solved with Dinic's algorithm (`O(V²E)` in general,
/// far faster in practice on the sparse networks built here).
///
/// Capacities are `f64` (Goldberg's reduction needs fractional guesses);
/// comparisons use an epsilon to keep level graphs stable.
///
/// # Examples
///
/// ```
/// use hcd_flow::Dinic;
///
/// let mut net = Dinic::new(4);
/// net.add_edge(0, 1, 3.0);
/// net.add_edge(0, 2, 2.0);
/// net.add_edge(1, 3, 2.0);
/// net.add_edge(2, 3, 3.0);
/// net.add_edge(1, 2, 5.0);
/// assert!((net.max_flow(0, 3) - 5.0).abs() < 1e-9);
/// ```
pub struct Dinic {
    graph: Vec<Vec<usize>>, // adjacency: indices into edges
    edges: Vec<Edge>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

struct Edge {
    to: usize,
    cap: f64,
}

const EPS: f64 = 1e-9;

impl Dinic {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        Dinic {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from -> to` with the given capacity (and its
    /// zero-capacity reverse edge). Returns the edge index, usable with
    /// [`Dinic::flow_on`].
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) -> usize {
        let id = self.edges.len();
        self.graph[from].push(id);
        self.edges.push(Edge { to, cap });
        self.graph[to].push(id + 1);
        self.edges.push(Edge { to: from, cap: 0.0 });
        id
    }

    /// Flow currently routed through edge `id` (its reverse capacity).
    pub fn flow_on(&self, id: usize) -> f64 {
        self.edges[id ^ 1].cap
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.graph[v] {
                let e = &self.edges[eid];
                if e.cap > EPS && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.graph[v].len() {
            let eid = self.graph[v][self.iter[v]];
            let (to, cap) = {
                let e = &self.edges[eid];
                (e.to, e.cap)
            };
            if cap > EPS && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, f.min(cap));
                if d > EPS {
                    self.edges[eid].cap -= d;
                    self.edges[eid ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    /// Computes the maximum `s`-`t` flow, consuming residual capacity
    /// (call once per network).
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// The source side of a minimum cut, valid after [`Dinic::max_flow`]:
    /// all nodes reachable from `s` in the residual network.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.graph.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.graph[v] {
                let e = &self.edges[eid];
                if e.cap > EPS && !seen[e.to] {
                    seen[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = Dinic::new(2);
        net.add_edge(0, 1, 7.5);
        assert!((net.max_flow(0, 1) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = Dinic::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(2, 3, 2.0);
        assert!((net.max_flow(0, 3) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_limits_flow() {
        let mut net = Dinic::new(3);
        net.add_edge(0, 1, 10.0);
        net.add_edge(1, 2, 0.5);
        assert!((net.max_flow(0, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = Dinic::new(3);
        net.add_edge(0, 1, 5.0);
        assert_eq!(net.max_flow(0, 2), 0.0);
    }

    #[test]
    fn min_cut_separates_source_and_sink() {
        let mut net = Dinic::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(1, 2, 1.0); // bottleneck
        net.add_edge(2, 3, 3.0);
        net.max_flow(0, 3);
        let side = net.min_cut_side(0);
        assert!(side[0] && side[1]);
        assert!(!side[2] && !side[3]);
    }

    #[test]
    fn flow_conservation_on_classic_network() {
        // CLRS figure-style network.
        let mut net = Dinic::new(6);
        let e = [
            net.add_edge(0, 1, 16.0),
            net.add_edge(0, 2, 13.0),
            net.add_edge(1, 3, 12.0),
            net.add_edge(2, 1, 4.0),
            net.add_edge(3, 2, 9.0),
            net.add_edge(2, 4, 14.0),
            net.add_edge(4, 3, 7.0),
            net.add_edge(3, 5, 20.0),
            net.add_edge(4, 5, 4.0),
        ];
        let f = net.max_flow(0, 5);
        assert!((f - 23.0).abs() < 1e-9);
        // Outflow of source equals max flow.
        let out: f64 = net.flow_on(e[0]) + net.flow_on(e[1]);
        assert!((out - f).abs() < 1e-9);
    }
}
