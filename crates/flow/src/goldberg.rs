//! Goldberg's exact densest subgraph via parametric min-cut.

use hcd_graph::{CsrGraph, VertexId};

use crate::dinic::Dinic;

/// Finds the subgraph maximizing `m(S)/n(S)` exactly (note: *density*,
/// i.e. half the average degree).
///
/// Goldberg (1984): guess a density `g`; build a network with source
/// capacities `m`, sink capacities `m + 2g − d(v)`, and capacity-1
/// internal edges; the min cut reveals whether some subgraph has density
/// `> g`. Binary search over `g` needs only `O(log(n·(n−1)))` iterations
/// because two distinct achievable densities differ by at least
/// `1/(n(n−1))`.
///
/// Returns `(vertices, density)`; an empty graph yields `None`. Intended
/// as a test oracle at moderate scale.
pub fn densest_subgraph(g: &CsrGraph) -> Option<(Vec<VertexId>, f64)> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let m = g.num_edges();
    if m == 0 {
        // Any single vertex has density 0.
        return Some((vec![0], 0.0));
    }

    let mut lo = 0.0f64;
    let mut hi = m as f64;
    let mut best: Vec<VertexId> = g.vertices().collect(); // density >= m/n > 0 overall? keep safe default
    let min_gap = 1.0 / ((n as f64) * (n as f64 - 1.0).max(1.0));
    while hi - lo >= min_gap {
        let guess = (lo + hi) / 2.0;
        match cut_side(g, guess) {
            Some(side) if !side.is_empty() => {
                best = side;
                lo = guess;
            }
            _ => hi = guess,
        }
    }
    let dens = density(g, &best);
    Some((best, dens))
}

/// Density `m(S)/n(S)` of the sub-vertex-set `s`.
pub fn density(g: &CsrGraph, s: &[VertexId]) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    let mut inside = vec![false; g.num_vertices()];
    for &v in s {
        inside[v as usize] = true;
    }
    let mut m = 0u64;
    for &v in s {
        for &u in g.neighbors(v) {
            if u > v && inside[u as usize] {
                m += 1;
            }
        }
    }
    m as f64 / s.len() as f64
}

/// One Goldberg cut: the non-trivial source side for density guess `gd`,
/// or `None` when no subgraph beats `gd`.
fn cut_side(g: &CsrGraph, gd: f64) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    let m = g.num_edges() as f64;
    let source = n;
    let sink = n + 1;
    let mut net = Dinic::new(n + 2);
    for v in g.vertices() {
        net.add_edge(source, v as usize, m);
        net.add_edge(v as usize, sink, m + 2.0 * gd - g.degree(v) as f64);
        for &u in g.neighbors(v) {
            if u > v {
                net.add_edge(v as usize, u as usize, 1.0);
                net.add_edge(u as usize, v as usize, 1.0);
            }
        }
    }
    let flow = net.max_flow(source, sink);
    // If the min cut keeps any vertex on the source side, a subgraph of
    // density > gd exists.
    if (n as f64) * m - flow > 1e-7 {
        let side = net.min_cut_side(source);
        let vertices: Vec<VertexId> = g.vertices().filter(|&v| side[v as usize]).collect();
        if vertices.is_empty() {
            None
        } else {
            Some(vertices)
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    #[test]
    fn clique_is_its_own_densest_subgraph() {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        // Sparse tail.
        let g = b.edges([(0, 5), (5, 6)]).build();
        let (s, d) = densest_subgraph(&g).unwrap();
        let mut s = s;
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
        assert!((d - 2.0).abs() < 1e-6); // K5: 10 edges / 5 vertices
    }

    #[test]
    fn whole_graph_when_uniformly_dense() {
        // A cycle: density 1 everywhere; any subset has <= density 1.
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let (_, d) = densest_subgraph(&g).unwrap();
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn edgeless_graph() {
        let g = GraphBuilder::new().min_vertices(3).build();
        let (_, d) = densest_subgraph(&g).unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10 {
            let n = rng.gen_range(3..10u32);
            let mut b = GraphBuilder::new().min_vertices(n as usize);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.5) {
                        b = b.edge(u, v);
                    }
                }
            }
            let g = b.build();
            let (_, got) = densest_subgraph(&g).unwrap();
            // Brute force over all non-empty subsets.
            let mut want = 0.0f64;
            for mask in 1u32..(1 << n) {
                let s: Vec<u32> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
                want = want.max(density(&g, &s));
            }
            assert!(
                (got - want).abs() < 1e-6,
                "got {got}, brute force {want}, n={n}"
            );
        }
    }
}
