//! Synthetic graph generators and the paper-dataset stand-in registry.
//!
//! The paper evaluates on ten real networks of up to 3.7 billion edges
//! (SNAP, LAW, NetworkRepository). Those are unavailable at reproduction
//! scale, so this crate provides **seeded, deterministic** generators —
//! Erdős–Rényi, Barabási–Albert, R-MAT, Watts–Strogatz, clique overlays,
//! and a hierarchical "core tree" — and a [`registry`] of ten scaled
//! stand-ins, one per paper dataset, chosen to preserve the structural
//! properties the experiments exercise (heavy-tailed degrees, high
//! `kmax`, rich HCD forests, giant components). See DESIGN.md,
//! substitution 2.

pub mod ba;
pub mod er;
pub mod overlay;
pub mod planted;
pub mod registry;
pub mod rmat;
pub mod ws;

pub use ba::barabasi_albert;
pub use er::gnp;
pub use overlay::clique_overlay;
pub use planted::core_tree;
pub use registry::{Dataset, Scale, DATASETS};
pub use rmat::rmat;
pub use ws::watts_strogatz;
