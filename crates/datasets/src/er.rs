//! Erdős–Rényi `G(n, p)` graphs.

use hcd_graph::{CsrGraph, GraphBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Samples `G(n, p)` with geometric edge skipping (`O(n + m)` expected,
/// independent of `p` being small). Deterministic for a given seed.
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().min_vertices(n);
    if n >= 2 && p > 0.0 {
        if p >= 1.0 {
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    builder = builder.edge(u, v);
                }
            }
        } else {
            // Iterate the strictly-upper-triangular pairs lexicographically,
            // skipping a Geometric(p) count between successive edges.
            let log1p = (1.0 - p).ln();
            let mut idx: f64 = -1.0;
            let total = n as f64 * (n as f64 - 1.0) / 2.0;
            loop {
                let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                idx += 1.0 + (r.ln() / log1p).floor();
                if idx >= total {
                    break;
                }
                let (u, v) = pair_from_index(idx as u64, n as u64);
                builder = builder.edge(u as u32, v as u32);
            }
        }
    }
    builder.build()
}

/// Maps a linear index to the `idx`-th pair `(u, v)` with `u < v` in
/// lexicographic order.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+3)/2 ... solve approximately then fix.
    // Binary search for the row.
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let row_end = row_start(mid + 1, n);
        if idx < row_end {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let u = lo;
    let offset = row_start(u, n);
    let v = u + 1 + (idx - offset);
    (u, v)
}

/// Linear index of the first pair in row `u` (pairs (u, u+1..n)).
fn row_start(u: u64, n: u64) -> u64 {
    // sum_{i=0}^{u-1} (n-1-i) = u*(n-1) - u*(u-1)/2
    u * (n - 1) - u * (u.saturating_sub(1)) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = gnp(100, 0.05, 42);
        let b = gnp(100, 0.05, 42);
        assert_eq!(a, b);
        let c = gnp(100, 0.05, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_count_near_expectation() {
        let n = 400;
        let p = 0.02;
        let g = gnp(n, p, 7);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn p_zero_and_one() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn pair_indexing_is_bijective() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && v < n, "idx={idx} -> ({u},{v})");
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(gnp(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(gnp(1, 0.5, 1).num_vertices(), 1);
        assert_eq!(gnp(1, 0.5, 1).num_edges(), 0);
    }
}
