//! Core-tree generator: graphs with rich, deep HCD hierarchies.

use hcd_graph::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a graph whose HCD forest approximately follows a complete
/// tree of the given `branching` and `depth`.
///
/// Each tree position owns a gadget of `gadget_size` fresh vertices wired
/// as a random graph whose internal degree grows with depth (deeper
/// gadgets are denser, hence higher coreness), plus a couple of sparse
/// edges up into its parent gadget — enough to connect, too few to raise
/// coreness. The exact node set of the resulting HCD is determined by the
/// oracle in tests; this generator's job is workload richness (deep,
/// branchy hierarchies with many tree nodes), not exact shape control.
pub fn core_tree(branching: usize, depth: usize, gadget_size: usize, seed: u64) -> CsrGraph {
    assert!(branching >= 1 && depth >= 1 && gadget_size >= 4);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new();
    let mut next_id: u32 = 0;

    // BFS over tree positions: (parent gadget members, depth).
    let mut frontier: Vec<(Vec<VertexId>, usize)> = vec![(Vec::new(), 0)];
    while let Some((parent, d)) = frontier.pop() {
        if d == depth {
            continue;
        }
        let fanout = if d == 0 { 1 } else { branching };
        for _ in 0..fanout {
            // Fresh gadget vertices.
            let members: Vec<VertexId> = (0..gadget_size).map(|i| next_id + i as u32).collect();
            next_id += gadget_size as u32;
            // Internal wiring: target degree rises with depth.
            let target_deg = (2 + 3 * d).min(gadget_size - 1);
            for (i, &v) in members.iter().enumerate() {
                for j in 1..=target_deg {
                    let u = members[(i + j) % gadget_size];
                    if u != v {
                        builder = builder.edge(v, u);
                    }
                }
                // A sprinkle of random internal edges for irregularity.
                if rng.gen_bool(0.3) {
                    let u = members[rng.gen_range(0..gadget_size)];
                    if u != v {
                        builder = builder.edge(v, u);
                    }
                }
            }
            // Sparse uplinks into the parent gadget.
            if !parent.is_empty() {
                for _ in 0..2 {
                    let v = members[rng.gen_range(0..gadget_size)];
                    let u = parent[rng.gen_range(0..parent.len())];
                    builder = builder.edge(v, u);
                }
            }
            frontier.push((members, d + 1));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_decomp::core_decomposition;

    #[test]
    fn deterministic() {
        assert_eq!(core_tree(2, 3, 10, 4), core_tree(2, 3, 10, 4));
    }

    #[test]
    fn vertex_count_follows_tree_size() {
        // 1 + 2 + 4 gadgets of 10 vertices for branching 2, depth 3.
        let g = core_tree(2, 3, 10, 1);
        assert_eq!(g.num_vertices(), 70);
    }

    #[test]
    fn coreness_grows_with_depth() {
        let g = core_tree(2, 4, 12, 2);
        let cores = core_decomposition(&g);
        // Deeper gadgets are denser: kmax must exceed the root's degree.
        assert!(cores.kmax() >= 6, "kmax = {}", cores.kmax());
        // And multiple shells must exist (rich hierarchy).
        let shells = cores.shells();
        let nonempty = shells.iter().filter(|s| !s.is_empty()).count();
        assert!(nonempty >= 3, "only {nonempty} shells");
    }

    #[test]
    fn graph_is_connected() {
        let g = core_tree(3, 3, 8, 6);
        assert_eq!(
            hcd_graph::traversal::largest_component_size(&g),
            g.num_vertices()
        );
    }
}
