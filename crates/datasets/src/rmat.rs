//! R-MAT recursive-matrix graphs (Chakrabarti, Zhan, Faloutsos 2004).

use hcd_graph::{CsrGraph, GraphBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates an R-MAT graph with `2^scale` vertices and `edge_factor ·
/// 2^scale` sampled edges (duplicates and self-loops are cleaned up by
/// the builder, so the final count is slightly lower). The partition
/// probabilities `(a, b, c)` default to the Graph500 values when
/// `None` is passed (`a=0.57, b=0.19, c=0.19`); heavier `a` skews the
/// degree distribution harder. Models web and social networks.
pub fn rmat(scale: u32, edge_factor: usize, probs: Option<(f64, f64, f64)>, seed: u64) -> CsrGraph {
    let (a, b, c) = probs.unwrap_or((0.57, 0.19, 0.19));
    assert!(a + b + c < 1.0 + 1e-9, "probabilities must sum below 1");
    let n: usize = 1 << scale;
    let m = edge_factor * n;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().min_vertices(n);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder = builder.edge(u as u32, v as u32);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(rmat(10, 8, None, 2), rmat(10, 8, None, 2));
        assert_ne!(rmat(10, 8, None, 2), rmat(10, 8, None, 3));
    }

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(9, 4, None, 1);
        assert_eq!(g.num_vertices(), 512);
    }

    #[test]
    fn edge_count_close_to_target() {
        let g = rmat(12, 8, None, 5);
        let target = 8 * 4096;
        // Duplicates/self-loops remove some, but most survive.
        assert!(g.num_edges() > target / 2);
        assert!(g.num_edges() <= target);
    }

    #[test]
    fn skewed_degrees() {
        let g = rmat(12, 8, None, 7);
        assert!(g.max_degree() as f64 > 10.0 * g.avg_degree());
    }

    #[test]
    fn custom_probabilities_accepted() {
        let g = rmat(8, 4, Some((0.45, 0.25, 0.15)), 1);
        assert_eq!(g.num_vertices(), 256);
    }
}
