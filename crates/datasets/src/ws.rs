//! Watts–Strogatz small-world graphs.

use hcd_graph::{CsrGraph, GraphBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A ring of `n` vertices each connected to its `k` nearest neighbors
/// (`k` even), with every edge rewired to a random endpoint with
/// probability `beta`. High clustering coefficient at low `beta` — the
/// workload that stresses type-B (triangle-based) metrics.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k % 2 == 0, "k must be even");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().min_vertices(n);
    if n == 0 || k == 0 {
        return builder.build();
    }
    for v in 0..n {
        for j in 1..=(k / 2) {
            let mut u = (v + j) % n;
            if rng.gen_bool(beta) {
                u = rng.gen_range(0..n);
            }
            if u != v {
                builder = builder.edge(v as u32, u as u32);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            watts_strogatz(200, 6, 0.1, 4),
            watts_strogatz(200, 6, 0.1, 4)
        );
    }

    #[test]
    fn zero_beta_is_a_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_edges(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn rewiring_changes_structure() {
        let lattice = watts_strogatz(100, 4, 0.0, 2);
        let random = watts_strogatz(100, 4, 0.9, 2);
        assert_ne!(lattice, random);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(watts_strogatz(0, 2, 0.5, 1).num_vertices(), 0);
        let g = watts_strogatz(1, 2, 0.5, 1);
        assert_eq!(g.num_edges(), 0);
    }
}
