//! Clique overlays: collaboration-style graphs with very high `kmax`.

use hcd_graph::{CsrGraph, GraphBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Overlays `num_cliques` cliques, each on a uniformly sampled vertex
/// subset of size in `size_range`, on top of `base` extra random edges.
///
/// This is the structural model behind Hollywood-style collaboration
/// graphs and link-farm-heavy web crawls, whose enormous `kmax` (2208 for
/// Hollywood, 5704 for UK-2007-05) comes from large embedded cliques
/// rather than overall density. The result has high `kmax` relative to
/// its average degree, exercising deep HCD hierarchies.
pub fn clique_overlay(
    n: usize,
    num_cliques: usize,
    size_range: (usize, usize),
    base_edges: usize,
    seed: u64,
) -> CsrGraph {
    let (lo, hi) = size_range;
    assert!(
        2 <= lo && lo <= hi && hi <= n.max(2),
        "bad clique size range"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().min_vertices(n);
    for _ in 0..num_cliques {
        let size = rng.gen_range(lo..=hi);
        // Sample `size` distinct vertices.
        let mut members = Vec::with_capacity(size);
        while members.len() < size {
            let v = rng.gen_range(0..n as u32);
            if !members.contains(&v) {
                members.push(v);
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                builder = builder.edge(members[i], members[j]);
            }
        }
    }
    for _ in 0..base_edges {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        builder = builder.edge(u, v);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = clique_overlay(500, 20, (4, 12), 300, 8);
        let b = clique_overlay(500, 20, (4, 12), 300, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn kmax_reflects_largest_clique() {
        let g = clique_overlay(300, 5, (15, 15), 100, 3);
        let cores = hcd_decomp::core_decomposition(&g);
        // A 15-clique guarantees kmax >= 14.
        assert!(cores.kmax() >= 14, "kmax = {}", cores.kmax());
    }

    #[test]
    fn no_cliques_just_noise() {
        let g = clique_overlay(100, 0, (2, 5), 50, 1);
        assert!(g.num_edges() <= 50);
    }
}
