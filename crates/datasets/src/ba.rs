//! Barabási–Albert preferential attachment.

use hcd_graph::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Preferential attachment: each new vertex attaches `m_per_vertex` edges
/// to existing vertices chosen proportionally to their current degree
/// (implemented with the classical repeated-endpoint list, `O(n·m)`).
/// Produces the heavy-tailed degree distributions typical of citation and
/// collaboration networks.
pub fn barabasi_albert(n: usize, m_per_vertex: usize, seed: u64) -> CsrGraph {
    assert!(m_per_vertex >= 1, "need at least one edge per vertex");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = m_per_vertex;
    let mut builder = GraphBuilder::new().min_vertices(n);
    if n <= m {
        // Too small for attachment: just a clique.
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                builder = builder.edge(u, v);
            }
        }
        return builder.build();
    }

    // Seed core: clique on the first m+1 vertices.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            builder = builder.edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m + 1)..n {
        let v = v as u32;
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let u = endpoints[rng.gen_range(0..endpoints.len())];
            if u != v && !chosen.contains(&u) {
                chosen.push(u);
            }
        }
        for u in chosen {
            builder = builder.edge(v, u);
            endpoints.push(v);
            endpoints.push(u);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(200, 3, 5), barabasi_albert(200, 3, 5));
    }

    #[test]
    fn edge_count_is_exact() {
        let n = 300;
        let m = 4;
        let g = barabasi_albert(n, m, 1);
        // clique on m+1 = C(5,2)=10 edges, then (n-m-1)*m.
        assert_eq!(g.num_edges(), 10 + (n - m - 1) * m);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 3, 9);
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        assert!(max > 6.0 * avg, "max {max} should dwarf avg {avg}");
    }

    #[test]
    fn small_n_falls_back_to_clique() {
        let g = barabasi_albert(3, 5, 1);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn connected_giant_component() {
        let g = barabasi_albert(500, 2, 13);
        assert_eq!(
            hcd_graph::traversal::largest_component_size(&g),
            g.num_vertices()
        );
    }
}
