//! The ten paper-dataset stand-ins (DESIGN.md, substitution 2).

use hcd_graph::{CsrGraph, GraphBuilder};

use crate::{barabasi_albert, clique_overlay, core_tree, gnp, rmat};

/// Generation scale, selectable via the `HCD_BENCH_SCALE` environment
/// variable (`tiny` | `small` | `full`; default `small`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI smoke scale (hundreds of vertices).
    Tiny,
    /// Default benchmark scale (thousands to tens of thousands).
    Small,
    /// The largest scale that stays laptop-friendly.
    Full,
}

impl Scale {
    /// Reads `HCD_BENCH_SCALE`, defaulting to [`Scale::Small`].
    pub fn from_env() -> Scale {
        match std::env::var("HCD_BENCH_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("full") => Scale::Full,
            _ => Scale::Small,
        }
    }

    fn pick<T>(self, tiny: T, small: T, full: T) -> T {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// A stand-in for one of the paper's evaluation datasets.
pub struct Dataset {
    /// Paper abbreviation (Table II, bold).
    pub abbrev: &'static str,
    /// Full name of the original dataset.
    pub paper_name: &'static str,
    /// What the original is and which model replaces it.
    pub description: &'static str,
    generate: fn(Scale) -> CsrGraph,
}

impl Dataset {
    /// Generates the stand-in graph at the given scale (deterministic).
    pub fn generate(&self, scale: Scale) -> CsrGraph {
        (self.generate)(scale)
    }

    /// Looks a dataset up by abbreviation.
    pub fn by_abbrev(abbrev: &str) -> Option<&'static Dataset> {
        DATASETS.iter().find(|d| d.abbrev == abbrev)
    }
}

/// Merges the edge sets of two graphs over the larger vertex universe —
/// used to overlay clique structure on a power-law backbone.
fn union_graphs(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    GraphBuilder::new()
        .min_vertices(a.num_vertices().max(b.num_vertices()))
        .edges(a.edges())
        .edges(b.edges())
        .build()
}

/// The ten stand-ins, in the paper's Table II order (ascending edges).
pub static DATASETS: [Dataset; 10] = [
    Dataset {
        abbrev: "AS",
        paper_name: "As-Skitter",
        description: "internet topology -> R-MAT, power-law, moderate density",
        generate: |s| rmat(s.pick(9, 13, 15), 7, None, 0xA5),
    },
    Dataset {
        abbrev: "LJ",
        paper_name: "LiveJournal",
        description: "social network -> R-MAT, power-law, heavier tail",
        generate: |s| rmat(s.pick(9, 14, 16), 9, None, 0x17),
    },
    Dataset {
        abbrev: "H",
        paper_name: "Hollywood",
        description: "actor collaboration -> clique overlay (large embedded cliques, high kmax)",
        generate: |s| {
            let n = s.pick(600, 8_000, 40_000);
            clique_overlay(n, n / 30, (5, s.pick(25, 60, 100)), n, 0x48)
        },
    },
    Dataset {
        abbrev: "O",
        paper_name: "Orkut",
        description: "dense social network -> R-MAT with high edge factor",
        generate: |s| rmat(s.pick(9, 13, 15), 20, None, 0x0C),
    },
    Dataset {
        abbrev: "HJ",
        paper_name: "Human-Jung",
        description:
            "brain connectome (very dense, rich hierarchy) -> dense G(n,p) + clique overlay",
        generate: |s| {
            let n = s.pick(300, 1_500, 4_000);
            let avg = s.pick(25.0, 70.0, 130.0);
            let base = gnp(n, avg / (n as f64 - 1.0), 0xB1);
            let modules = clique_overlay(n, n / 25, (6, s.pick(20, 50, 90)), 0, 0xB2);
            union_graphs(&base, &modules)
        },
    },
    Dataset {
        abbrev: "A",
        paper_name: "Arabic-2005",
        description: "web crawl -> R-MAT backbone + clique overlay (link farms)",
        generate: |s| {
            let backbone = rmat(s.pick(9, 13, 15), 8, None, 0xA2);
            let n = backbone.num_vertices();
            let farms = clique_overlay(n, n / 60, (8, s.pick(12, 30, 50)), 0, 0xA3);
            union_graphs(&backbone, &farms)
        },
    },
    Dataset {
        abbrev: "IT",
        paper_name: "IT-2004",
        description: "web crawl -> larger R-MAT backbone + clique overlay",
        generate: |s| {
            let backbone = rmat(s.pick(9, 14, 16), 8, None, 0x11);
            let n = backbone.num_vertices();
            let farms = clique_overlay(n, n / 50, (8, s.pick(12, 34, 56)), 0, 0x12);
            union_graphs(&backbone, &farms)
        },
    },
    Dataset {
        abbrev: "FS",
        paper_name: "FriendSter",
        description: "social network, giant components & few tree nodes -> flatter R-MAT",
        generate: |s| rmat(s.pick(10, 14, 16), 14, Some((0.45, 0.22, 0.22)), 0xF5),
    },
    Dataset {
        abbrev: "SK",
        paper_name: "SK-2005",
        description: "web crawl, highest clique density -> R-MAT + heavy clique overlay",
        generate: |s| {
            let backbone = rmat(s.pick(9, 13, 15), 12, None, 0x5C);
            let n = backbone.num_vertices();
            let farms = clique_overlay(n, n / 40, (10, s.pick(14, 44, 80)), 0, 0x5D);
            union_graphs(&backbone, &farms)
        },
    },
    Dataset {
        abbrev: "UK",
        paper_name: "UK-2007-05",
        description: "largest web crawl -> largest R-MAT + clique overlay + deep core tree",
        generate: |s| {
            let backbone = rmat(s.pick(10, 14, 17), 9, None, 0xDE);
            let n = backbone.num_vertices();
            let farms = clique_overlay(n, n / 40, (10, s.pick(16, 48, 90)), 0, 0xDF);
            let deep = core_tree(3, s.pick(3, 5, 6), 24, 0xE0);
            union_graphs(&union_graphs(&backbone, &farms), &deep)
        },
    },
];

/// Other generators exposed for examples: a small Barabási–Albert graph.
pub fn example_social(seed: u64) -> CsrGraph {
    barabasi_albert(2_000, 4, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_at_tiny_scale() {
        for d in DATASETS.iter() {
            let g = d.generate(Scale::Tiny);
            assert!(g.num_vertices() > 0, "{}", d.abbrev);
            assert!(g.num_edges() > 0, "{}", d.abbrev);
            assert!(g.check_invariants().is_ok(), "{}", d.abbrev);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::by_abbrev("LJ").unwrap().generate(Scale::Tiny);
        let b = Dataset::by_abbrev("LJ").unwrap().generate(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn lookup_by_abbrev() {
        assert!(Dataset::by_abbrev("UK").is_some());
        assert!(Dataset::by_abbrev("XX").is_none());
    }

    #[test]
    fn hollywood_standin_has_outsized_kmax() {
        let g = Dataset::by_abbrev("H").unwrap().generate(Scale::Tiny);
        let cores = hcd_decomp::core_decomposition(&g);
        assert!(
            cores.kmax() as f64 > 1.2 * g.avg_degree(),
            "kmax {} vs avg degree {}",
            cores.kmax(),
            g.avg_degree()
        );
    }

    #[test]
    fn table2_ordering_roughly_ascending_in_edges() {
        // The paper lists datasets in ascending edge count; our stand-ins
        // should at least keep the extremes in order.
        let first = DATASETS[0].generate(Scale::Tiny).num_edges();
        let last = DATASETS[9].generate(Scale::Tiny).num_edges();
        assert!(first < last);
    }
}
