//! Structural statistics of a built HCD (for visualization and the
//! engagement analyses of §I).

use crate::index::{Hcd, NO_NODE};

/// Summary statistics of an HCD forest.
#[derive(Debug, Clone, PartialEq)]
pub struct HcdStats {
    /// Number of tree nodes `|T|`.
    pub num_nodes: usize,
    /// Number of roots (components plus isolated-vertex nodes).
    pub num_roots: usize,
    /// Maximum node depth.
    pub max_depth: usize,
    /// `depth_histogram[d]` = number of nodes at depth `d`.
    pub depth_histogram: Vec<usize>,
    /// Maximum number of children of any node.
    pub max_branching: usize,
    /// Mean number of children over internal (non-leaf) nodes.
    pub mean_branching: f64,
    /// Size of the largest node (`max |V(Ti)|`).
    pub largest_node: usize,
}

impl HcdStats {
    /// Computes all statistics in `O(|T|)`.
    pub fn compute(hcd: &Hcd) -> Self {
        let n = hcd.num_nodes();
        // Depths via one top-down pass over the bottom-up order reversed.
        let mut depth = vec![0usize; n];
        let mut order = hcd.bottom_up_order();
        order.reverse(); // parents before children
        for &i in &order {
            let p = hcd.node(i).parent;
            if p != NO_NODE {
                depth[i as usize] = depth[p as usize] + 1;
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut depth_histogram = vec![0usize; max_depth + 1];
        for &d in &depth {
            depth_histogram[d] += 1;
        }
        let internal: Vec<usize> = hcd
            .nodes()
            .iter()
            .map(|nd| nd.children.len())
            .filter(|&c| c > 0)
            .collect();
        let mean_branching = if internal.is_empty() {
            0.0
        } else {
            internal.iter().sum::<usize>() as f64 / internal.len() as f64
        };
        HcdStats {
            num_nodes: n,
            num_roots: hcd.roots().len(),
            max_depth,
            depth_histogram,
            max_branching: internal.iter().copied().max().unwrap_or(0),
            mean_branching,
            largest_node: hcd
                .nodes()
                .iter()
                .map(|nd| nd.vertices.len())
                .max()
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phcd::phcd;
    use crate::testutil::figure1_graph;
    use hcd_decomp::core_decomposition;
    use hcd_par::Executor;

    #[test]
    fn figure1_statistics() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let s = HcdStats::compute(&hcd);
        // Forest: T2 -> {T3.1 -> T4, T3.2}.
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_roots, 1);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.depth_histogram, vec![1, 2, 1]);
        assert_eq!(s.max_branching, 2);
        assert!((s.mean_branching - 1.5).abs() < 1e-12); // (2 + 1) / 2
        assert_eq!(s.largest_node, 6); // T4 holds S4's six vertices
    }

    #[test]
    fn empty_forest() {
        let hcd = Hcd::from_parts(Vec::new(), Vec::new());
        let s = HcdStats::compute(&hcd);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.mean_branching, 0.0);
    }

    #[test]
    fn flat_forest_has_depth_zero() {
        let g = hcd_graph::GraphBuilder::new()
            .edges([(0, 1), (2, 3)])
            .build();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let s = HcdStats::compute(&hcd);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.num_roots, s.num_nodes);
    }
}
