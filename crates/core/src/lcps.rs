//! LCPS: the serial state-of-the-art HCD construction (Matula–Beck \[7\]).

use hcd_decomp::CoreDecomposition;
use hcd_graph::{CsrGraph, VertexId};

use crate::index::{Hcd, TreeNode, NO_NODE};

/// Priority value for vertices not yet reachable.
const UNREACHED: u32 = u32::MAX;

/// Serial HCD construction by *level component priority search*.
///
/// The search repeatedly visits the reachable unvisited vertex `v` with
/// the highest priority `pri(v) = max over visited neighbors w of
/// min(c(v), c(w))`, maintaining a stack of open tree nodes (one per
/// level, strictly increasing `k`):
///
/// * visiting `v` with priority `p` closes every open node of level
///   `> p`; the closed chain parents bottom-up onto the node at level `p`
///   that survives or is opened by this very visit;
/// * `v` joins the open node at level `c(v)` if one survives, otherwise a
///   new node at level `c(v)` is opened.
///
/// Priorities live in bucket arrays indexed by priority with lazy
/// deletion — the "multiple dynamic arrays" whose constant-factor cost
/// the paper measures against PHCD in Table III. Runs in `O(m)` time.
pub fn lcps(g: &CsrGraph, cores: &CoreDecomposition) -> Hcd {
    let n = g.num_vertices();
    if n == 0 {
        return Hcd::from_parts(Vec::new(), Vec::new());
    }
    let kmax = cores.kmax();

    let mut pri = vec![UNREACHED; n];
    let mut visited = vec![false; n];
    // buckets[p] holds (vertex, priority-at-push); stale entries are
    // skipped on pop.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); kmax as usize + 1];
    let mut cur_max: usize = 0;

    let mut nodes: Vec<TreeNode> = Vec::new();
    let mut tid = vec![NO_NODE; n];
    // Stack of open nodes: (node id, level k), strictly increasing k.
    let mut stack: Vec<(u32, u32)> = Vec::new();
    let mut start_cursor: VertexId = 0;

    let mut remaining = n;
    while remaining > 0 {
        // Pop the highest-priority valid entry, or start a new component.
        let v = loop {
            if let Some(&cand) = buckets[cur_max].last() {
                buckets[cur_max].pop();
                if !visited[cand as usize] && pri[cand as usize] as usize == cur_max {
                    break Some(cand);
                }
                continue;
            }
            if cur_max == 0 {
                break None;
            }
            cur_max -= 1;
        };
        let (v, p) = match v {
            Some(v) => (v, pri[v as usize]),
            None => {
                // All open nodes belong to a finished component: close.
                close_chain(&mut stack, &mut nodes);
                // Seed the next component.
                while visited[start_cursor as usize] {
                    start_cursor += 1;
                }
                (start_cursor, 0)
            }
        };
        visited[v as usize] = true;
        remaining -= 1;
        let c = cores.coreness(v);
        debug_assert!(p <= c);

        // Close open nodes deeper than p; they parent onto the level-p
        // node this visit joins or creates.
        let needs_level_p_parent = stack.last().is_some_and(|&(_, k)| k > p);
        if needs_level_p_parent {
            // Find/create the node at level p first, so the closed chain
            // has its parent. Two cases (see module docs): either the
            // surviving top is at level p, or p == c and the new node is.
            close_chain_onto_level(&mut stack, &mut nodes, p, c);
        }

        // Join or open the node at level c(v).
        let target = match stack.last() {
            Some(&(id, k)) if k == c => id,
            _ => {
                debug_assert!(stack.last().map_or(true, |&(_, k)| k < c));
                let id = nodes.len() as u32;
                nodes.push(TreeNode {
                    k: c,
                    vertices: Vec::new(),
                    parent: NO_NODE, // set when closed
                    children: Vec::new(),
                });
                stack.push((id, c));
                id
            }
        };
        nodes[target as usize].vertices.push(v);
        tid[v as usize] = target;

        // Update priorities of unvisited neighbors.
        for &u in g.neighbors(v) {
            if visited[u as usize] {
                continue;
            }
            let np = c.min(cores.coreness(u));
            let old = pri[u as usize];
            if old == UNREACHED || np > old {
                pri[u as usize] = np;
                buckets[np as usize].push(u);
                cur_max = cur_max.max(np as usize);
            }
        }
    }
    // Close whatever remains open.
    close_chain(&mut stack, &mut nodes);

    // Finalize children lists (parents were assigned at close time).
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        if node.parent != NO_NODE {
            children[node.parent as usize].push(i as u32);
        }
    }
    for (node, ch) in nodes.iter_mut().zip(children) {
        node.children = ch;
        node.vertices.sort_unstable();
    }
    Hcd::from_parts(nodes, tid)
}

/// Closes every node of level `> p` on the stack. The closed chain
/// parents bottom-up; its shallowest node parents onto the level-`p`
/// node, which either survives on the stack or (when `p == c`) is opened
/// here so it can adopt the chain.
fn close_chain_onto_level(stack: &mut Vec<(u32, u32)>, nodes: &mut Vec<TreeNode>, p: u32, c: u32) {
    // Ensure a node at level p exists below the chain being closed.
    let surviving_at_p = {
        // Find the first stack entry (from top) with k <= p.
        stack
            .iter()
            .rev()
            .find(|&&(_, k)| k <= p)
            .map(|&(id, k)| (id, k))
    };
    let adopt = match surviving_at_p {
        Some((id, k)) if k == p => id,
        _ => {
            debug_assert_eq!(
                p, c,
                "priority search invariant: a drop below the open chain \
                 without a surviving level-p node implies p == c(v)"
            );
            // Open the level-p node now (the visit will join it).
            let id = nodes.len() as u32;
            nodes.push(TreeNode {
                k: p,
                vertices: Vec::new(),
                parent: NO_NODE,
                children: Vec::new(),
            });
            // Insert it below the chain that is about to close: pop the
            // chain, push the new node, re-push nothing (chain closes).
            let chain: Vec<(u32, u32)> = {
                let mut ch = Vec::new();
                while stack.last().is_some_and(|&(_, k)| k > p) {
                    ch.push(stack.pop().unwrap());
                }
                ch
            };
            stack.push((id, p));
            // chain[0] is the deepest node; parents go deepest -> next.
            for w in (0..chain.len()).rev() {
                let (nid, _) = chain[w];
                let par = if w == chain.len() - 1 {
                    id
                } else {
                    chain[w + 1].0
                };
                nodes[nid as usize].parent = par;
            }
            return;
        }
    };
    // Surviving node at level p exists: close the chain onto it.
    let mut below = adopt;
    let mut chain: Vec<u32> = Vec::new();
    while stack.last().is_some_and(|&(_, k)| k > p) {
        chain.push(stack.pop().unwrap().0);
    }
    // chain is deepest-last? stack pops give top (deepest) first.
    // Parents: deepest -> next deepest -> ... -> adopt.
    for w in (0..chain.len()).rev() {
        let nid = chain[w];
        nodes[nid as usize].parent = below;
        below = nid;
    }
}

/// Closes the whole stack (end of component / end of run): each node
/// parents onto the node beneath it.
fn close_chain(stack: &mut Vec<(u32, u32)>, nodes: &mut [TreeNode]) {
    while let Some((id, _)) = stack.pop() {
        if let Some(&(below, _)) = stack.last() {
            nodes[id as usize].parent = below;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::naive_hcd;
    use crate::testutil::figure1_graph;
    use hcd_decomp::core_decomposition;
    use hcd_graph::GraphBuilder;

    fn check(g: &CsrGraph) {
        let cores = core_decomposition(g);
        let got = lcps(g, &cores);
        let truth = naive_hcd(g, &cores);
        assert_eq!(got.canonicalize(), truth.canonicalize());
    }

    #[test]
    fn figure1() {
        check(&figure1_graph());
    }

    #[test]
    fn deep_core_start_reparents_correctly() {
        // 3-core inside a 2-core inside a 1-core chain: the search may
        // open the deep node first and must re-parent it when the
        // intermediate level appears.
        let g = GraphBuilder::new()
            // K4 (coreness 3)
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            // 2-core ring around it
            .edges([(4, 5), (5, 6), (6, 4), (4, 0), (5, 1)])
            // 1-core tail
            .edges([(6, 7), (7, 8)])
            .build();
        check(&g);
    }

    #[test]
    fn sibling_cores_through_low_hub() {
        // Two triangles joined by a coreness-1 hub: NA's parent must be
        // the hub's node, not the sibling triangle.
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0)]) // triangle A
            .edges([(3, 4), (4, 5), (5, 3)]) // triangle B
            .edges([(6, 0), (6, 3)]) // hub 6, coreness 1
            .build();
        check(&g);
    }

    #[test]
    fn disconnected_components_and_isolated() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0)])
            .edges([(5, 6)])
            .min_vertices(9)
            .build();
        check(&g);
    }

    #[test]
    fn uniform_coreness_single_node_per_component() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 3), (3, 0)]) // 4-cycle, coreness 2
            .build();
        let cores = core_decomposition(&g);
        let h = lcps(&g, &cores);
        assert_eq!(h.num_nodes(), 1);
        assert_eq!(h.node(0).k, 2);
        assert_eq!(h.node(0).vertices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let cores = core_decomposition(&g);
        let h = lcps(&g, &cores);
        assert_eq!(h.num_nodes(), 0);
    }

    #[test]
    fn visit_order_never_violates_priority_bound() {
        // pri(v) <= c(v) is asserted inside lcps (debug builds); smoke it
        // on a denser random-ish structure.
        let mut b = GraphBuilder::new();
        for i in 0..30u32 {
            b = b.edge(i, (i * 7 + 3) % 30).edge(i, (i * 5 + 11) % 30);
        }
        check(&b.build());
    }
}
