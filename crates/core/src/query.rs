//! Local queries on a built HCD (ShellStruct-style, paper §VII).

use hcd_decomp::CoreDecomposition;
use hcd_graph::VertexId;

use crate::index::{Hcd, NO_NODE};

/// The tree node whose subtree is the k-core containing `v`: the highest
/// ancestor of `tid(v)` whose level is still `>= k`. Returns `None` when
/// `k > c(v)`. `O(depth)` time, no allocation — the snapshot-friendly
/// entry point the serving layer uses to answer membership and identity
/// queries without materializing vertex sets.
pub fn core_node_at(hcd: &Hcd, cores: &CoreDecomposition, v: VertexId, k: u32) -> Option<u32> {
    if k > cores.coreness(v) {
        return None;
    }
    let mut node = hcd.tid(v);
    loop {
        let parent = hcd.node(node).parent;
        if parent == NO_NODE || hcd.node(parent).k < k {
            break;
        }
        node = parent;
    }
    Some(node)
}

/// Whether `v` belongs to some k-core, answered in `O(1)` from the
/// decomposition alone.
pub fn in_k_core(cores: &CoreDecomposition, v: VertexId, k: u32) -> bool {
    k <= cores.coreness(v)
}

/// Whether `u` and `v` lie in the *same* k-core, answered from the index
/// in `O(depth)` without materializing either core: two vertices share a
/// k-core exactly when their level-`k` ancestors coincide.
pub fn same_k_core(hcd: &Hcd, cores: &CoreDecomposition, u: VertexId, v: VertexId, k: u32) -> bool {
    match (
        core_node_at(hcd, cores, u, k),
        core_node_at(hcd, cores, v, k),
    ) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

/// The vertex set of the k-core containing `v`, answered from the index
/// alone in time linear in the output.
///
/// Walks up from `tid(v)` to the highest ancestor whose level is still
/// `>= k`; that ancestor's subtree is exactly the k-core (every k-core
/// with `k <= c(v)` containing `v` equals the original core of such an
/// ancestor — levels between two adjacent ancestors collapse onto the
/// deeper one). Returns `None` when `k > c(v)`.
pub fn core_containing(
    hcd: &Hcd,
    cores: &CoreDecomposition,
    v: VertexId,
    k: u32,
) -> Option<Vec<VertexId>> {
    core_node_at(hcd, cores, v, k).map(|node| hcd.subtree_vertices(node))
}

/// The *hierarchy position* of `v`: (depth of its tree node, subtree size
/// of its node). Used by the engagement-analysis example — the paper
/// notes \[15\] that engagement prediction improves when the position in
/// the HCD complements raw coreness.
pub fn hierarchy_position(hcd: &Hcd, v: VertexId) -> (usize, usize) {
    let t = hcd.tid(v);
    (hcd.depth(t), hcd.subtree_vertices(t).len())
}

/// Number of distinct k-cores (tree nodes) per level, `0..=kmax`.
pub fn cores_per_level(hcd: &Hcd, kmax: u32) -> Vec<usize> {
    let mut counts = vec![0usize; kmax as usize + 1];
    for node in hcd.nodes() {
        counts[node.k as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phcd::phcd;
    use crate::testutil::figure1_graph;
    use hcd_decomp::core_decomposition;
    use hcd_par::Executor;

    fn setup() -> (hcd_graph::CsrGraph, CoreDecomposition, Hcd) {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        (g, cores, hcd)
    }

    #[test]
    fn core_containing_matches_definition() {
        let (g, cores, hcd) = setup();
        use hcd_graph::traversal::bfs_filtered;
        for v in g.vertices() {
            for k in 0..=cores.coreness(v) {
                let mut got = core_containing(&hcd, &cores, v, k).unwrap();
                got.sort_unstable();
                let mut want = bfs_filtered(&g, v, |u| cores.coreness(u) >= k);
                want.sort_unstable();
                assert_eq!(got, want, "v={v} k={k}");
            }
        }
    }

    #[test]
    fn core_above_coreness_is_none() {
        let (_, cores, hcd) = setup();
        assert!(core_containing(&hcd, &cores, 15, 3).is_none());
        assert!(core_containing(&hcd, &cores, 0, 5).is_none());
    }

    #[test]
    fn positions_deepen_with_coreness() {
        let (_, _, hcd) = setup();
        let (d15, _) = hierarchy_position(&hcd, 15); // 2-shell
        let (d6, _) = hierarchy_position(&hcd, 6); // 3-shell
        let (d0, s0) = hierarchy_position(&hcd, 0); // 4-core
        assert!(d15 < d6 && d6 < d0);
        assert_eq!(s0, 6); // T4 is a leaf holding S4's six vertices
    }

    #[test]
    fn membership_and_identity_agree_with_materialized_cores() {
        let (g, cores, hcd) = setup();
        for v in g.vertices() {
            for k in 0..=cores.kmax() + 1 {
                assert_eq!(in_k_core(&cores, v, k), k <= cores.coreness(v));
                match core_containing(&hcd, &cores, v, k) {
                    None => assert!(core_node_at(&hcd, &cores, v, k).is_none()),
                    Some(members) => {
                        for u in g.vertices() {
                            let expect = members.contains(&u) && k <= cores.coreness(u);
                            assert_eq!(
                                same_k_core(&hcd, &cores, u, v, k),
                                expect,
                                "u={u} v={v} k={k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn level_histogram() {
        let (_, cores, hcd) = setup();
        let counts = cores_per_level(&hcd, cores.kmax());
        assert_eq!(counts, vec![0, 0, 1, 2, 1]);
    }
}
