//! Brute-force HCD construction — the test oracle.

use hcd_decomp::CoreDecomposition;
use hcd_graph::traversal::connected_components_filtered;
use hcd_graph::{CsrGraph, FxHashMap, VertexId};

use crate::index::{Hcd, TreeNode, NO_NODE};

/// Builds the HCD directly from Definitions 1–3: for every level `k`, the
/// connected components of the subgraph induced by `{v : c(v) >= k}` are
/// the k-cores; each k-core with a non-empty k-shell slice becomes a tree
/// node, and parents are found by locating the same component at the
/// largest smaller level that has a node.
///
/// `O(kmax · (n + m))` time and `O(kmax · n)` memory — test-scale only,
/// but its correctness is immediate from the definitions, which makes it
/// the ground truth every construction algorithm is checked against.
pub fn naive_hcd(g: &CsrGraph, cores: &CoreDecomposition) -> Hcd {
    let n = g.num_vertices();
    let kmax = cores.kmax();

    // Component labels per level.
    let mut labels_per_k: Vec<Vec<u32>> = Vec::with_capacity(kmax as usize + 1);
    for k in 0..=kmax {
        let (labels, _) = connected_components_filtered(g, |v| cores.coreness(v) >= k);
        labels_per_k.push(labels);
    }

    // Create nodes: one per (k, component) with a non-empty k-shell slice.
    let mut node_of: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    let mut nodes: Vec<TreeNode> = Vec::new();
    let mut representative: Vec<VertexId> = Vec::new();
    let mut tid = vec![NO_NODE; n];
    for v in 0..n as VertexId {
        let k = cores.coreness(v);
        let comp = labels_per_k[k as usize][v as usize];
        let id = *node_of.entry((k, comp)).or_insert_with(|| {
            nodes.push(TreeNode {
                k,
                vertices: Vec::new(),
                parent: NO_NODE,
                children: Vec::new(),
            });
            representative.push(v);
            (nodes.len() - 1) as u32
        });
        nodes[id as usize].vertices.push(v);
        tid[v as usize] = id;
    }

    // Parents: for each node, scan down from k-1 for the first level whose
    // component (containing the representative) also has a node.
    for i in 0..nodes.len() {
        let k = nodes[i].k;
        let u = representative[i];
        for kp in (0..k).rev() {
            let l = labels_per_k[kp as usize][u as usize];
            if let Some(&pid) = node_of.get(&(kp, l)) {
                nodes[i].parent = pid;
                nodes[pid as usize].children.push(i as u32);
                break;
            }
        }
    }

    Hcd::from_parts(nodes, tid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_decomp::core_decomposition;
    use hcd_graph::GraphBuilder;

    use crate::testutil::figure1_graph;

    #[test]
    fn figure1_hierarchy_shape() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        assert_eq!(cores.kmax(), 4);
        let hcd = naive_hcd(&g, &cores);
        // Nodes: T4 (k=4, 6 vertices), T3.1 (k=3, 3 vertices),
        // T3.2 (k=3, 4 vertices), T2 (k=2, 3 vertices).
        assert_eq!(hcd.num_nodes(), 4);
        let canon = hcd.canonicalize();
        let ks: Vec<u32> = canon.nodes.iter().map(|n| n.k).collect();
        assert_eq!(ks, vec![2, 3, 3, 4]);
        let sizes: Vec<usize> = canon.nodes.iter().map(|n| n.vertices.len()).collect();
        assert_eq!(sizes, vec![3, 3, 4, 6]);
        // Root is the 2-core node.
        assert_eq!(hcd.roots().len(), 1);
        assert_eq!(hcd.node(hcd.roots()[0]).k, 2);
        // T4's parent is T3.1 (the k=3 node with vertices {6,7,8}).
        let t4 = canon.nodes.iter().position(|n| n.k == 4).unwrap();
        let t4_parent = canon.nodes[t4].parent.unwrap() as usize;
        assert_eq!(canon.nodes[t4_parent].k, 3);
        assert_eq!(canon.nodes[t4_parent].vertices, vec![6, 7, 8]);
    }

    #[test]
    fn every_vertex_appears_once() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        let hcd = naive_hcd(&g, &cores);
        let total: usize = hcd.nodes().iter().map(|n| n.vertices.len()).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn parent_skips_missing_levels() {
        // K5 attached to a single degree-1 vertex: levels 4 and 1 only.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        let g = b.edge(0, 5).build();
        let cores = core_decomposition(&g);
        let hcd = naive_hcd(&g, &cores);
        assert_eq!(hcd.num_nodes(), 2);
        let canon = hcd.canonicalize();
        assert_eq!(canon.nodes[0].k, 1);
        assert_eq!(canon.nodes[1].k, 4);
        assert_eq!(canon.nodes[1].parent, Some(0));
    }

    #[test]
    fn disconnected_graph_gives_forest() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0)]) // triangle
            .edges([(3, 4)]) // edge
            .min_vertices(6) // vertex 5 isolated
            .build();
        let cores = core_decomposition(&g);
        let hcd = naive_hcd(&g, &cores);
        assert_eq!(hcd.num_nodes(), 3);
        assert_eq!(hcd.roots().len(), 3);
        let canon = hcd.canonicalize();
        assert_eq!(canon.nodes[0].k, 0);
        assert_eq!(canon.nodes[0].vertices, vec![5]);
    }

    #[test]
    fn isolated_vertices_form_separate_zero_nodes() {
        let g = GraphBuilder::new().min_vertices(3).build();
        let cores = core_decomposition(&g);
        let hcd = naive_hcd(&g, &cores);
        // 0-cores are maximal *connected* subgraphs: one node per vertex.
        assert_eq!(hcd.num_nodes(), 3);
        assert!(hcd
            .nodes()
            .iter()
            .all(|n| n.k == 0 && n.vertices.len() == 1));
    }

    #[test]
    fn nested_cliques_form_a_chain() {
        // K6 ⊃ inner structure: attach rings of decreasing density.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b = b.edge(u, v); // K6: coreness 5
            }
        }
        // Ring of 4 vertices each adjacent to 3 clique vertices: coreness 3.
        for (i, x) in (6..10u32).enumerate() {
            let j = 6 + ((i + 1) % 4) as u32;
            b = b.edge(x, j);
            b = b.edge(x, (i % 3) as u32);
            b = b.edge(x, ((i + 1) % 3) as u32);
        }
        let g = b.build();
        let cores = core_decomposition(&g);
        let hcd = naive_hcd(&g, &cores);
        // Chain: one node per present level, each parent of the next.
        let canon = hcd.canonicalize();
        for w in canon.nodes.windows(2) {
            assert!(w[0].k <= w[1].k);
        }
        assert_eq!(hcd.roots().len(), 1);
    }
}
