//! Hierarchical core decomposition (HCD): index and construction.
//!
//! The HCD of a graph organizes all k-cores into a forest (paper §II-B):
//! every k-core `S` whose k-shell slice `S ∩ H_k` is non-empty gets a
//! *tree node* holding exactly those vertices, and tree edges record
//! containment between k-cores of consecutive (present) levels.
//!
//! This crate provides:
//!
//! * [`Hcd`] — the index (`V(Ti)`, `P(Ti)`, `C(Ti)`, `tid(v)`), with full
//!   validation, canonical comparison, subtree/k-core reconstruction, and
//!   DOT export ([`index`], [`query`]).
//! * [`rank`] — Algorithm 1: parallel vertex-rank computation and shell
//!   bucketing.
//! * [`phcd()`](phcd::phcd) — **Algorithm 2 (PHCD)**: the paper's parallel construction
//!   via union-find with pivot, correct under sequential, real-thread,
//!   and simulated execution.
//! * [`ordered`] — locality-ordered construction: hub-first relabeling
//!   before the PKC + PHCD pipeline, with all outputs mapped back to
//!   original vertex ids (bit-identical to an unordered build).
//! * [`lcps()`](lcps::lcps) — the serial state-of-the-art baseline: Matula–Beck
//!   priority search \[7\].
//! * [`rc`] — local k-core search, the ingredient of the divide-and-
//!   conquer alternative (§III-E) benchmarked as `RC` in Table III.
//! * [`lb`] — the union-find lower bound (`LB` in Table III).
//! * [`oracle`] — brute-force HCD construction by repeated filtered
//!   connected components; the ground truth for every test.
//! * [`repair`] — surgical forest repair after a batch of edge updates:
//!   rebuilds only the tree nodes of the dirty region a maintenance
//!   batch reports, keeping the rest of the published forest verbatim.
//!
//! HCD construction is P-complete (paper Theorem 1), so a polylog-depth
//! parallelization is not expected; PHCD instead delivers near-linear
//! *work* with one parallel round per shell level.

pub mod index;
pub mod io;
pub mod lb;
pub mod lcps;
pub mod oracle;
pub mod ordered;
pub mod phcd;
pub mod query;
pub mod rank;
pub mod rc;
pub mod repair;
pub mod stats;

pub use index::{CanonicalHcd, Hcd, TreeNode, NO_NODE};
pub use lcps::lcps;
pub use oracle::naive_hcd;
pub use ordered::{build_with_order, try_build_with_order, VertexOrder};
pub use phcd::{phcd, try_phcd};
pub use rank::VertexRanks;

#[cfg(test)]
mod proptests;
#[cfg(test)]
pub(crate) mod testutil;
