//! Algorithm 2: PHCD — parallel HCD construction.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

use hcd_decomp::CoreDecomposition;
use hcd_graph::{CsrGraph, FxHashMap, VertexId};
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};
use hcd_unionfind::{ConcurrentPivotUnionFind, UnionBatch, UnionFindPivot};

use crate::index::{Hcd, TreeNode, NO_NODE};
use crate::rank::VertexRanks;

/// PHCD (paper Algorithm 2): builds the HCD bottom-up by adding k-shells
/// in descending `k`, maintaining connectivity and per-component *pivots*
/// in a concurrent union-find.
///
/// Per level `k` the four steps of the paper run as parallel regions over
/// the k-shell, separated by barriers:
///
/// 1. record the pivots of the existing k'-core components (`k' > k`)
///    adjacent to the shell — these are the tree nodes that will need a
///    parent at this level;
/// 2. union every shell vertex with its neighbors of coreness `>= k`;
/// 3. group shell vertices into new tree nodes by their component pivot
///    (the pivot of a freshly formed k-core is always in the k-shell,
///    so it uniquely names the new node);
/// 4. for every pivot recorded in step 1, its node's parent is the node
///    of its component's *current* pivot.
///
/// Work is `O(m·α(n))` union-find operations plus `O(n)` bookkeeping —
/// near-linear. Runs under any [`Executor`] mode;
/// `Executor::sequential()` is the serial PHCD variant the paper
/// compares against LCPS in Table III.
///
/// Output is deterministic across modes: node ids are assigned per level
/// in pivot-rank order and vertex lists are sorted at the end.
pub fn phcd(g: &CsrGraph, cores: &CoreDecomposition, exec: &Executor) -> Hcd {
    match try_phcd(g, cores, exec) {
        Ok(hcd) => hcd,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`phcd`]: returns `Err` if any region panics, is
/// cancelled, or exceeds the executor's deadline. On `Err` no partial
/// index escapes and the executor stays usable (see `hcd_par` failure
/// model).
pub fn try_phcd(g: &CsrGraph, cores: &CoreDecomposition, exec: &Executor) -> Result<Hcd, ParError> {
    let ranks = VertexRanks::try_compute(cores, exec)?;
    try_phcd_with_ranks(g, cores, &ranks, exec)
}

/// PHCD with a precomputed rank order (lets benchmarks separate the
/// Algorithm 1 cost).
pub fn phcd_with_ranks(
    g: &CsrGraph,
    cores: &CoreDecomposition,
    ranks: &VertexRanks,
    exec: &Executor,
) -> Hcd {
    match try_phcd_with_ranks(g, cores, ranks, exec) {
        Ok(hcd) => hcd,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`phcd_with_ranks`].
pub fn try_phcd_with_ranks(
    g: &CsrGraph,
    cores: &CoreDecomposition,
    ranks: &VertexRanks,
    exec: &Executor,
) -> Result<Hcd, ParError> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok(Hcd::from_parts(Vec::new(), Vec::new()));
    }
    let kmax = cores.kmax();

    // The union-find runs in *rank space*: element r is the vertex
    // vsort[r], so pivot keys are the identity (Definition 4's vertex
    // rank), shell elements are contiguous, and a single rank comparison
    // replaces the coreness filter (coreness(u) > k  <=>  rank(u) >= the
    // shell's upper bound).
    let rank = ranks.ranks();
    let vsort = ranks.vsort();
    // Union-find operation counts only when someone is looking (metrics
    // or an armed trace); disabled stats cost one branch per operation.
    let observed = exec.metrics_enabled() || exec.trace_armed();
    let uf = if observed {
        ConcurrentPivotUnionFind::new_identity(n).with_stats()
    } else {
        ConcurrentPivotUnionFind::new_identity(n)
    };
    let tid: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_NODE)).collect();
    // Node storage, appended level by level (serially, tiny).
    let mut node_k: Vec<u32> = Vec::new();
    let mut node_vertices: Vec<Mutex<Vec<VertexId>>> = Vec::new();
    let mut node_parent: Vec<AtomicU32> = Vec::new();
    let mut node_children: Vec<Mutex<Vec<u32>>> = Vec::new();
    // Dedup flags for kpc_pivot (step 1), cleared in step 4; indexed by rank.
    let in_kpc: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    // Level stamp per higher-coreness neighbor: step 1 is read-only, so a
    // vertex u reached twice in the same level has the same pivot — the
    // stamp skips the redundant `find`, a large saving around hubs.
    let u_stamp: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    // Degree prefix in rank order: shells are contiguous in vsort, so a
    // window of this array drives weight-balanced chunking of the
    // adjacency-scanning steps (hubs would otherwise pile into one chunk).
    let deg_prefix: Vec<u64> = {
        let mut p = Vec::with_capacity(n + 1);
        p.push(0u64);
        for &v in vsort {
            p.push(p.last().unwrap() + g.degree(v) as u64);
        }
        p
    };

    let mut union_phases = 0u64;
    // Batching traffic across all levels; each worker flushes its private
    // batch at chunk end, so these are exact once the region joins.
    let batch_staged = AtomicU64::new(0);
    let batch_flushed = AtomicU64::new(0);
    for k in (0..=kmax).rev() {
        let (lo, hi) = ranks.shell_bounds(k);
        if lo == hi {
            continue;
        }
        union_phases += 1;
        let shell_len = hi - lo;
        let shell_weights = &deg_prefix[lo..=hi];

        // Step 1: pivots of adjacent k'-cores (k' > k) — future children.
        // All quantities are ranks.
        let kpc_parts =
            exec.region("phcd.kpc")
                .try_map_chunks_weighted(shell_weights, |_, range| {
                    let mut local = Vec::new();
                    for i in range {
                        let v = vsort[lo + i];
                        for &u in g.neighbors(v) {
                            let ru = rank[u as usize] as usize;
                            if ru >= hi && u_stamp[ru].swap(k, Ordering::AcqRel) != k {
                                let pvt = uf.get_pivot(ru as u32);
                                if !in_kpc[pvt as usize].load(Ordering::Acquire)
                                    && !in_kpc[pvt as usize].swap(true, Ordering::AcqRel)
                                {
                                    local.push(pvt);
                                }
                            }
                        }
                    }
                    Ok(local)
                })?;
        let kpc_pivot: Vec<u32> = kpc_parts.into_iter().flatten().collect();

        // Step 2: connect the shell to the existing graph. Equal-coreness
        // edges appear in both endpoints' lists; process them once (from
        // the lower-rank side). Each worker stages its edges in a private
        // [`UnionBatch`] that locally coalesces redundant edges, so the
        // shared structure sees only spanning edges — far fewer finds,
        // link CASes, and pivot merges around hubs. Scratch is created
        // per chunk, so the batch is always flushed (and its counts
        // folded) before the chunk ends and the region barrier is
        // reached. This is the hot adjacency loop, so it polls the
        // cancellation checkpoint at a coarse edge stride.
        exec.region("phcd.union").try_for_each_chunk_weighted(
            shell_weights,
            UnionBatch::new,
            |_, batch, range| {
                let mut since = 0usize;
                for i in range {
                    let rv = (lo + i) as u32;
                    let v = vsort[lo + i];
                    for &u in g.neighbors(v) {
                        let ru = rank[u as usize];
                        if ru > rv {
                            batch.stage(&uf, rv, ru);
                        }
                    }
                    since += g.degree(v);
                    if since >= CHECKPOINT_STRIDE {
                        exec.checkpoint()?;
                        since = 0;
                    }
                }
                batch.flush(&uf);
                let s = batch.stats();
                batch_staged.fetch_add(s.staged, Ordering::Relaxed);
                batch_flushed.fetch_add(s.flushed, Ordering::Relaxed);
                Ok(())
            },
        )?;

        // Step 3a: resolve each shell vertex's pivot; claim new pivots.
        // The pivot of a fresh k-core is the min-rank member, always in
        // this shell, so `pivot - lo` indexes the shell.
        let mut pivot_of: Vec<u32> = vec![0; shell_len];
        {
            struct SendPtr(*mut u32);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let out = SendPtr(pivot_of.as_mut_ptr());
            let new_parts = exec
                .region("phcd.pivots")
                .try_map_chunks(shell_len, |_, range| {
                    let _ = &out;
                    let mut fresh = Vec::new();
                    for i in range {
                        let pvt = uf.get_pivot((lo + i) as u32);
                        // SAFETY: slot i is written by exactly one worker.
                        unsafe { *out.0.add(i) = pvt };
                        let pvt_vertex = vsort[pvt as usize];
                        if pivot_claim(&tid, pvt_vertex) {
                            fresh.push(pvt);
                        }
                    }
                    Ok(fresh)
                })?;
            // Deterministic node ids: sort fresh pivots by rank (they are
            // ranks already).
            let mut fresh: Vec<u32> = new_parts.into_iter().flatten().collect();
            fresh.sort_unstable();
            for pvt in fresh {
                let id = node_k.len() as u32;
                node_k.push(k);
                node_vertices.push(Mutex::new(Vec::new()));
                node_parent.push(AtomicU32::new(NO_NODE));
                node_children.push(Mutex::new(Vec::new()));
                tid[vsort[pvt as usize] as usize].store(id, Ordering::Release);
            }
        }

        // Step 3b: assign tids and fill vertex lists. Vertices are
        // grouped per chunk first so each node's mutex is taken once per
        // (chunk, node) instead of once per vertex.
        exec.region("phcd.assign").try_for_each_chunk(
            shell_len,
            FxHashMap::<u32, Vec<VertexId>>::default,
            |_, groups, range| {
                for i in range.clone() {
                    let v = vsort[lo + i];
                    let pvt_vertex = vsort[pivot_of[i] as usize];
                    let id = tid[pvt_vertex as usize].load(Ordering::Acquire);
                    debug_assert_ne!(id, NO_NODE);
                    debug_assert_ne!(id, RESERVED);
                    tid[v as usize].store(id, Ordering::Release);
                    groups.entry(id).or_default().push(v);
                }
                for (id, mut vs) in groups.drain() {
                    node_vertices[id as usize].lock().append(&mut vs);
                }
                Ok(())
            },
        )?;

        // Step 4: parents of the k'-core nodes recorded in step 1.
        exec.region("phcd.parents").try_for_each_chunk(
            kpc_pivot.len(),
            || (),
            |_, _, range| {
                for &pr in &kpc_pivot[range] {
                    in_kpc[pr as usize].store(false, Ordering::Relaxed);
                    let ch = tid[vsort[pr as usize] as usize].load(Ordering::Acquire);
                    let pa_rank = uf.get_pivot(pr);
                    let pa = tid[vsort[pa_rank as usize] as usize].load(Ordering::Acquire);
                    debug_assert_ne!(ch, NO_NODE);
                    debug_assert_ne!(pa, NO_NODE);
                    node_parent[ch as usize].store(pa, Ordering::Release);
                    node_children[pa as usize].lock().push(ch);
                }
                Ok(())
            },
        )?;
    }

    // Flush algorithm counters (no-ops unless metrics are enabled).
    exec.add_counter("phcd.union_phases", union_phases);
    let uc = uf.counts();
    exec.add_counter("phcd.uf.finds", uc.finds);
    exec.add_counter("phcd.uf.find_hops", uc.find_hops);
    exec.add_counter("phcd.uf.unions", uc.unions);
    exec.add_counter("phcd.uf.cas_retries", uc.cas_retries);
    exec.add_counter("phcd.uf.pivot_merges", uc.pivot_merges);
    exec.add_counter("phcd.uf.batch_staged", batch_staged.into_inner());
    exec.add_counter("phcd.uf.batch_flushed", batch_flushed.into_inner());

    // Finalize: sorted, deterministic index.
    let num_nodes = node_k.len();
    let mut nodes: Vec<TreeNode> = Vec::with_capacity(num_nodes);
    for i in 0..num_nodes {
        let mut vertices = std::mem::take(&mut *node_vertices[i].lock());
        vertices.sort_unstable();
        let mut children = std::mem::take(&mut *node_children[i].lock());
        children.sort_unstable();
        nodes.push(TreeNode {
            k: node_k[i],
            vertices,
            parent: node_parent[i].load(Ordering::Acquire),
            children,
        });
    }
    let tid: Vec<u32> = tid.into_iter().map(AtomicU32::into_inner).collect();
    Ok(Hcd::from_parts(nodes, tid))
}

/// Placeholder id marking a pivot whose node id is being assigned.
const RESERVED: u32 = u32::MAX - 1;

/// Atomically claims `pvt` as a fresh node pivot for this level. Exactly
/// one caller per pivot wins; the node id is assigned serially afterwards
/// (the winner leaves `RESERVED` in place, replaced before any step-3b or
/// step-4 read).
fn pivot_claim(tid: &[AtomicU32], pvt: VertexId) -> bool {
    tid[pvt as usize]
        .compare_exchange(NO_NODE, RESERVED, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::naive_hcd;
    use hcd_decomp::core_decomposition;
    use hcd_graph::GraphBuilder;

    fn check_all_modes(g: &CsrGraph) {
        let cores = core_decomposition(g);
        let truth = naive_hcd(g, &cores).canonicalize();
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(3),
        ] {
            let hcd = phcd(g, &cores, &exec);
            assert_eq!(
                hcd.canonicalize(),
                truth,
                "PHCD mismatch in mode {}",
                exec.mode_name()
            );
        }
    }

    #[test]
    fn figure1_graph_matches_oracle() {
        check_all_modes(&crate::testutil::figure1_graph());
    }

    #[test]
    fn small_structures() {
        // Triangle + tail + isolated.
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .min_vertices(6)
            .build();
        check_all_modes(&g);
    }

    #[test]
    fn nested_clique_chain() {
        let mut b = GraphBuilder::new();
        for u in 0..7u32 {
            for v in (u + 1)..7 {
                b = b.edge(u, v);
            }
        }
        // Pendant chain off the clique.
        let g = b.edges([(0, 7), (7, 8), (8, 9)]).build();
        check_all_modes(&g);
    }

    #[test]
    fn two_components_with_shared_levels() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0)]) // triangle A
            .edges([(10, 11), (11, 12), (12, 10)]) // triangle B
            .edges([(0, 3), (10, 13)]) // pendants
            .build();
        check_all_modes(&g);
    }

    #[test]
    fn star_of_triangles() {
        // Low-coreness hub with several 2-core satellites — exercises
        // sibling creation and parent detection at the same level.
        let mut b = GraphBuilder::new();
        for t in 0..5u32 {
            let base = 1 + t * 3;
            b = b
                .edge(base, base + 1)
                .edge(base + 1, base + 2)
                .edge(base + 2, base)
                .edge(0, base);
        }
        check_all_modes(&b.build());
    }

    #[test]
    fn deterministic_across_modes_and_runs() {
        let g = crate::testutil::figure1_graph();
        let cores = core_decomposition(&g);
        let a = phcd(&g, &cores, &Executor::sequential());
        for _ in 0..5 {
            let b = phcd(&g, &cores, &Executor::rayon(4));
            // Not just canonically equal: byte-for-byte identical index.
            assert_eq!(a.nodes(), b.nodes());
            assert_eq!(a.tids(), b.tids());
        }
    }

    #[test]
    fn validates_against_full_checker() {
        let g = crate::testutil::figure1_graph();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::rayon(3));
        hcd.validate(&g, &cores).unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        assert_eq!(hcd.num_nodes(), 0);
    }
}
