//! RC: local k-core search (paper §III-E).
//!
//! The divide-and-conquer alternative to PHCD needs, as its merge step, a
//! *local k-core search*: from a vertex `v`, collect the maximal connected
//! subgraph of vertices with coreness `>= k`. The paper evaluates this
//! ingredient (column `RC` of Table III) by using it to recompute the
//! parent-child relations of the HCD, and finds it one to two orders of
//! magnitude slower than PHCD — which is why the divide-and-conquer
//! paradigm is rejected.

use hcd_decomp::CoreDecomposition;
use hcd_graph::traversal::bfs_filtered;
use hcd_graph::{CsrGraph, VertexId};
use hcd_par::Executor;

use crate::index::{Hcd, NO_NODE};

/// The local k-core search primitive: BFS from `v` over vertices of
/// coreness `>= k`. Returns the visited set (the vertex set of the
/// k-core containing `v`), or empty if `c(v) < k`.
pub fn local_core_search(
    g: &CsrGraph,
    cores: &CoreDecomposition,
    v: VertexId,
    k: u32,
) -> Vec<VertexId> {
    bfs_filtered(g, v, |u| cores.coreness(u) >= k)
}

/// Recomputes (and verifies) every parent-child relation of `hcd` via
/// local k-core searches — the RC workload of Table III.
///
/// For each non-root node `Ti` at level `k` with parent at level `k_p`,
/// a local `k_p`-core search from `Ti`'s first vertex must reach a vertex
/// of coreness exactly `k_p`; the node of the first such vertex is the
/// parent. Returns the number of relations confirmed.
///
/// # Panics
///
/// Panics if a search contradicts the index (which would indicate a
/// corrupted HCD).
pub fn rc_confirm_parents(
    g: &CsrGraph,
    cores: &CoreDecomposition,
    hcd: &Hcd,
    exec: &Executor,
) -> usize {
    let parts = exec
        .region("rc.confirm")
        .map_chunks(hcd.num_nodes(), |_, range| {
            let mut confirmed = 0usize;
            for i in range {
                let node = hcd.node(i as u32);
                if node.parent == NO_NODE {
                    continue;
                }
                let kp = hcd.node(node.parent).k;
                let start = node.vertices[0];
                let reached = local_core_search(g, cores, start, kp);
                let witness = reached
                    .into_iter()
                    .find(|&u| cores.coreness(u) == kp)
                    .expect("parent level must be reachable");
                assert_eq!(
                    hcd.tid(witness),
                    node.parent,
                    "RC found a different parent for node {i}"
                );
                confirmed += 1;
            }
            confirmed
        });
    parts.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phcd::phcd;
    use crate::testutil::figure1_graph;
    use hcd_decomp::core_decomposition;
    use hcd_graph::GraphBuilder;

    #[test]
    fn local_search_returns_containing_core() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        // 3-core containing vertex 0 is S3.1 = {0..8}.
        let mut s = local_core_search(&g, &cores, 0, 3);
        s.sort_unstable();
        assert_eq!(s, (0..9).collect::<Vec<_>>());
        // 4-core containing vertex 0 is S4 = {0..5}.
        let mut s4 = local_core_search(&g, &cores, 0, 4);
        s4.sort_unstable();
        assert_eq!(s4, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn search_from_too_shallow_vertex_is_empty() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        assert!(local_core_search(&g, &cores, 15, 3).is_empty());
    }

    #[test]
    fn rc_confirms_all_relations() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let confirmed = rc_confirm_parents(&g, &cores, &hcd, &Executor::rayon(2));
        assert_eq!(confirmed, hcd.num_nodes() - hcd.roots().len());
    }

    #[test]
    fn rc_on_forest_with_no_edges() {
        let g = GraphBuilder::new().min_vertices(4).build();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        assert_eq!(
            rc_confirm_parents(&g, &cores, &hcd, &Executor::sequential()),
            0
        );
    }
}
