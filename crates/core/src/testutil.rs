//! Shared test fixtures (compiled only for tests).

use hcd_graph::{CsrGraph, GraphBuilder};

/// The paper's Figure 1 graph, reconstructed from the description: a
/// 4-core `S4` (vertices 0–5), two 3-cores `S3.1 = S4 + {6,7,8}` and
/// `S3.2 = {9..13}`, all inside the 2-core `S2` (the whole graph, whose
/// 2-shell is `{13,14,15}`).
pub fn figure1_graph() -> CsrGraph {
    GraphBuilder::new()
        // S4: 5-clique {0..5} plus vertex 5 with four clique edges.
        .edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (5, 0),
            (5, 1),
            (5, 2),
            (5, 3),
        ])
        // T3.1: coreness-3 triangle {6,7,8} each with one edge into S4.
        .edges([(6, 7), (7, 8), (8, 6), (6, 0), (7, 1), (8, 2)])
        // S3.2: a separate 3-core (K4 on {9..13}).
        .edges([(9, 10), (9, 11), (9, 12), (10, 11), (10, 12), (11, 12)])
        // 2-shell {13,14,15} tying the 3-cores together, peeling at k=3.
        .edges([(13, 9), (13, 5), (14, 10), (14, 6), (15, 13), (15, 14)])
        .build()
}
