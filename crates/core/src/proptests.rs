//! Property tests: all construction algorithms agree with the brute-force
//! oracle on arbitrary graphs, in every execution mode.

use proptest::prelude::*;

use hcd_decomp::core_decomposition;
use hcd_graph::builder::build_from_edges;
use hcd_par::Executor;

use crate::lcps::lcps;
use crate::oracle::naive_hcd;
use crate::phcd::phcd;
use crate::query::core_containing;
use crate::rc::rc_confirm_parents;

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m)
}

/// Denser strategy: biased toward multi-level hierarchies.
fn arb_dense_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..24u32, 0..24u32), 40..220)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn phcd_matches_oracle_all_modes(edges in arb_edges(40, 160)) {
        let g = build_from_edges(edges, 0);
        let cores = core_decomposition(&g);
        let truth = naive_hcd(&g, &cores).canonicalize();
        for exec in [Executor::sequential(), Executor::rayon(4), Executor::simulated(3)] {
            let got = phcd(&g, &cores, &exec);
            prop_assert_eq!(got.canonicalize(), truth.clone(), "mode {}", exec.mode_name());
        }
    }

    #[test]
    fn lcps_matches_oracle(edges in arb_edges(40, 160)) {
        let g = build_from_edges(edges, 0);
        let cores = core_decomposition(&g);
        prop_assert_eq!(
            lcps(&g, &cores).canonicalize(),
            naive_hcd(&g, &cores).canonicalize()
        );
    }

    #[test]
    fn phcd_matches_oracle_on_dense_graphs(edges in arb_dense_edges()) {
        let g = build_from_edges(edges, 0);
        let cores = core_decomposition(&g);
        let truth = naive_hcd(&g, &cores).canonicalize();
        prop_assert_eq!(phcd(&g, &cores, &Executor::rayon(4)).canonicalize(), truth.clone());
        prop_assert_eq!(lcps(&g, &cores).canonicalize(), truth);
    }

    #[test]
    fn rc_confirms_phcd_parents(edges in arb_dense_edges()) {
        let g = build_from_edges(edges, 0);
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let confirmed = rc_confirm_parents(&g, &cores, &hcd, &Executor::sequential());
        prop_assert_eq!(confirmed, hcd.num_nodes() - hcd.roots().len());
    }

    #[test]
    fn query_reconstructs_cores(edges in arb_edges(24, 120)) {
        let g = build_from_edges(edges, 0);
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        for v in g.vertices().step_by(3) {
            let k = cores.coreness(v);
            let mut got = core_containing(&hcd, &cores, v, k).unwrap();
            got.sort_unstable();
            let mut want = hcd_graph::traversal::bfs_filtered(&g, v, |u| cores.coreness(u) >= k);
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
