//! The HCD index structure (paper §II-B, Figure 2).

use hcd_decomp::CoreDecomposition;
use hcd_graph::{CsrGraph, VertexId};

/// Sentinel for "no tree node" (unset `tid`, or absent parent).
pub const NO_NODE: u32 = u32::MAX;

/// One k-core tree node `Ti` (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// The coreness `k` shared by every vertex in this node.
    pub k: u32,
    /// `V(Ti)`: the vertices of coreness `k` in the associated k-core.
    pub vertices: Vec<VertexId>,
    /// `P(Ti)`: parent node id, or [`NO_NODE`] for roots.
    pub parent: u32,
    /// `C(Ti)`: children node ids.
    pub children: Vec<u32>,
}

impl TreeNode {
    /// Whether this node is a root of the forest.
    pub fn is_root(&self) -> bool {
        self.parent == NO_NODE
    }
}

/// The hierarchical core decomposition of a graph: a forest of k-core
/// tree nodes plus the `tid` map from vertices to their node.
///
/// Construct with [`phcd()`](crate::phcd::phcd) (parallel), [`lcps()`](crate::lcps::lcps) (serial
/// baseline), or [`crate::naive_hcd`] (brute-force oracle).
#[derive(Debug, Clone)]
pub struct Hcd {
    nodes: Vec<TreeNode>,
    tid: Vec<u32>,
    roots: Vec<u32>,
}

impl Hcd {
    /// Assembles an index from parts, computing the root list.
    pub fn from_parts(nodes: Vec<TreeNode>, tid: Vec<u32>) -> Self {
        let roots = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_root())
            .map(|(i, _)| i as u32)
            .collect();
        Hcd { nodes, tid, roots }
    }

    /// Number of tree nodes `|T|` (a Table II column).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node with id `i`.
    pub fn node(&self, i: u32) -> &TreeNode {
        &self.nodes[i as usize]
    }

    /// All nodes, indexed by id.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// `tid(v)`: the node containing vertex `v`.
    pub fn tid(&self, v: VertexId) -> u32 {
        self.tid[v as usize]
    }

    /// The full `tid` table.
    pub fn tids(&self) -> &[u32] {
        &self.tid
    }

    /// Root node ids (one per connected component of the graph with at
    /// least one vertex, plus one per group of isolated vertices at
    /// level 0 merged by construction — see `naive_hcd` for semantics).
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Depth of node `i` (roots have depth 0).
    pub fn depth(&self, i: u32) -> usize {
        let mut d = 0;
        let mut cur = i;
        while self.nodes[cur as usize].parent != NO_NODE {
            cur = self.nodes[cur as usize].parent;
            d += 1;
        }
        d
    }

    /// All vertices of the subtree rooted at `i` — exactly the vertex set
    /// of the node's *original k-core* (paper: "we can reconstruct a
    /// k-core by its associated tree node and offspring tree nodes").
    pub fn subtree_vertices(&self, i: u32) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(x) = stack.pop() {
            let node = &self.nodes[x as usize];
            out.extend_from_slice(&node.vertices);
            stack.extend_from_slice(&node.children);
        }
        out
    }

    /// Node ids in bottom-up order: every node appears before its parent.
    /// (Children have strictly larger `k`, so descending-`k` order works;
    /// ties are arbitrary but irrelevant since equal-`k` nodes are never
    /// related.)
    pub fn bottom_up_order(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.nodes.len() as u32).collect();
        ids.sort_by(|&a, &b| self.nodes[b as usize].k.cmp(&self.nodes[a as usize].k));
        ids
    }

    /// Graphviz DOT rendering of the forest (node label: `k` and vertex
    /// count, plus the vertices themselves for small nodes).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph hcd {\n  rankdir=BT;\n  node [shape=box];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let label = if n.vertices.len() <= 8 {
                format!("T{} (k={})\\n{:?}", i, n.k, n.vertices)
            } else {
                format!("T{} (k={})\\n|V|={}", i, n.k, n.vertices.len())
            };
            writeln!(s, "  n{i} [label=\"{label}\"];").unwrap();
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.parent != NO_NODE {
                writeln!(s, "  n{} -> n{};", i, n.parent).unwrap();
            }
        }
        s.push_str("}\n");
        s
    }

    /// Maps every vertex id through `to_old` (`to_old[new] = old`) and
    /// renumbers nodes into PHCD's construction order over the mapped
    /// ids — levels descending, within a level ascending minimum member.
    ///
    /// Because vertex ranks are the stable `(coreness, id)` order and a
    /// fresh node's pivot is its minimum-rank (= minimum-id) member in
    /// the shell, this reproduces exactly the ids PHCD would have
    /// assigned on the unrelabeled graph: building on `g.relabel(&p)`
    /// and calling `relabel_vertices(p.inverse())` is byte-identical to
    /// building on `g` directly.
    pub fn relabel_vertices(&self, to_old: &[VertexId]) -> Hcd {
        assert_eq!(
            self.tid.len(),
            to_old.len(),
            "permutation length must match vertex count"
        );
        let mapped: Vec<TreeNode> = self
            .nodes
            .iter()
            .map(|n| {
                let mut vertices: Vec<VertexId> =
                    n.vertices.iter().map(|&v| to_old[v as usize]).collect();
                vertices.sort_unstable();
                TreeNode {
                    k: n.k,
                    vertices,
                    parent: n.parent,
                    children: n.children.clone(),
                }
            })
            .collect();
        let mut order: Vec<u32> = (0..mapped.len() as u32).collect();
        order.sort_by_key(|&i| {
            let n = &mapped[i as usize];
            (std::cmp::Reverse(n.k), n.vertices[0])
        });
        let mut new_id = vec![0u32; mapped.len()];
        for (pos, &old) in order.iter().enumerate() {
            new_id[old as usize] = pos as u32;
        }
        let remap = |id: u32| {
            if id == NO_NODE {
                NO_NODE
            } else {
                new_id[id as usize]
            }
        };
        let nodes: Vec<TreeNode> = order
            .iter()
            .map(|&old| {
                let n = &mapped[old as usize];
                let mut children: Vec<u32> = n.children.iter().map(|&c| remap(c)).collect();
                children.sort_unstable();
                TreeNode {
                    k: n.k,
                    vertices: n.vertices.clone(),
                    parent: remap(n.parent),
                    children,
                }
            })
            .collect();
        let mut tid = vec![NO_NODE; self.tid.len()];
        for (new_v, &t) in self.tid.iter().enumerate() {
            tid[to_old[new_v] as usize] = remap(t);
        }
        Hcd::from_parts(nodes, tid)
    }

    /// Canonical form for structural equality across construction
    /// algorithms (node ids and orderings are algorithm-dependent).
    pub fn canonicalize(&self) -> CanonicalHcd {
        // Sort nodes by (k, min vertex); a node always has >= 1 vertex.
        let mut order: Vec<u32> = (0..self.nodes.len() as u32).collect();
        let key = |i: u32| {
            let n = &self.nodes[i as usize];
            (n.k, n.vertices.iter().copied().min().unwrap_or(u32::MAX))
        };
        order.sort_by_key(|&i| key(i));
        let mut new_id = vec![0u32; self.nodes.len()];
        for (pos, &old) in order.iter().enumerate() {
            new_id[old as usize] = pos as u32;
        }
        let nodes = order
            .iter()
            .map(|&old| {
                let n = &self.nodes[old as usize];
                let mut vertices = n.vertices.clone();
                vertices.sort_unstable();
                let parent = if n.parent == NO_NODE {
                    None
                } else {
                    Some(new_id[n.parent as usize])
                };
                CanonicalNode {
                    k: n.k,
                    vertices,
                    parent,
                }
            })
            .collect();
        CanonicalHcd { nodes }
    }

    /// Full validation against the graph and its core decomposition:
    /// checks that this index is *the* HCD of `g` (Definition 3). Used by
    /// tests; `O(n·depth + m)`-ish, not for hot paths.
    pub fn validate(&self, g: &CsrGraph, cores: &CoreDecomposition) -> Result<(), String> {
        let n = g.num_vertices();
        if self.tid.len() != n {
            return Err("tid length mismatch".into());
        }
        // Each vertex in exactly one node, with matching coreness.
        let mut seen = vec![false; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.vertices.is_empty() {
                return Err(format!("node {i} is empty"));
            }
            for &v in &node.vertices {
                if seen[v as usize] {
                    return Err(format!("vertex {v} appears in two nodes"));
                }
                seen[v as usize] = true;
                if self.tid[v as usize] != i as u32 {
                    return Err(format!("tid({v}) inconsistent"));
                }
                if cores.coreness(v) != node.k {
                    return Err(format!(
                        "vertex {v} has coreness {} but is in a level-{} node",
                        cores.coreness(v),
                        node.k
                    ));
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("some vertex is in no node".into());
        }
        // Parent/child cross-consistency and level ordering.
        for (i, node) in self.nodes.iter().enumerate() {
            if node.parent != NO_NODE {
                let p = &self.nodes[node.parent as usize];
                if p.k >= node.k {
                    return Err(format!(
                        "parent of node {i} has level {} >= {}",
                        p.k, node.k
                    ));
                }
                if !p.children.contains(&(i as u32)) {
                    return Err(format!("node {i} missing from parent's children"));
                }
            }
            for &c in &node.children {
                if self.nodes[c as usize].parent != i as u32 {
                    return Err(format!("child {c} of {i} disagrees about parent"));
                }
            }
        }
        // Structural ground truth.
        let truth = crate::oracle::naive_hcd(g, cores);
        if self.canonicalize() != truth.canonicalize() {
            return Err("structure differs from brute-force oracle".into());
        }
        Ok(())
    }
}

/// Order- and id-independent representation of an [`Hcd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalHcd {
    /// Nodes sorted by `(k, min vertex)`, vertices sorted, parents
    /// referenced by position in this same ordering.
    pub nodes: Vec<CanonicalNode>,
}

/// A node of the canonical form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalNode {
    /// Level.
    pub k: u32,
    /// Sorted vertex set.
    pub vertices: Vec<VertexId>,
    /// Parent position in the canonical ordering.
    pub parent: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built HCD matching paper Figure 1/2 in miniature:
    /// T0 = root (k=1), children T1 (k=2) and T2 (k=2), T1's child T3 (k=3).
    fn sample() -> Hcd {
        let nodes = vec![
            TreeNode {
                k: 1,
                vertices: vec![0, 1],
                parent: NO_NODE,
                children: vec![1, 2],
            },
            TreeNode {
                k: 2,
                vertices: vec![2, 3],
                parent: 0,
                children: vec![3],
            },
            TreeNode {
                k: 2,
                vertices: vec![4, 5],
                parent: 0,
                children: vec![],
            },
            TreeNode {
                k: 3,
                vertices: vec![6, 7, 8],
                parent: 1,
                children: vec![],
            },
        ];
        let tid = vec![0, 0, 1, 1, 2, 2, 3, 3, 3];
        Hcd::from_parts(nodes, tid)
    }

    #[test]
    fn roots_detected() {
        let h = sample();
        assert_eq!(h.roots(), &[0]);
        assert!(h.node(0).is_root());
        assert!(!h.node(3).is_root());
    }

    #[test]
    fn depth_and_subtree() {
        let h = sample();
        assert_eq!(h.depth(0), 0);
        assert_eq!(h.depth(3), 2);
        let mut sub = h.subtree_vertices(1);
        sub.sort_unstable();
        assert_eq!(sub, vec![2, 3, 6, 7, 8]);
        let mut all = h.subtree_vertices(0);
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn bottom_up_order_children_first() {
        let h = sample();
        let order = h.bottom_up_order();
        let pos = |id: u32| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(3) < pos(1));
        assert!(pos(1) < pos(0));
        assert!(pos(2) < pos(0));
    }

    #[test]
    fn canonical_form_is_id_invariant() {
        let h = sample();
        // Same structure with node ids permuted (3 <-> 1 would break the
        // parent levels; permute 1 <-> 2 instead).
        let nodes = vec![
            TreeNode {
                k: 1,
                vertices: vec![1, 0],
                parent: NO_NODE,
                children: vec![2, 1],
            },
            TreeNode {
                k: 2,
                vertices: vec![5, 4],
                parent: 0,
                children: vec![],
            },
            TreeNode {
                k: 2,
                vertices: vec![3, 2],
                parent: 0,
                children: vec![3],
            },
            TreeNode {
                k: 3,
                vertices: vec![8, 6, 7],
                parent: 2,
                children: vec![],
            },
        ];
        let tid = vec![0, 0, 2, 2, 1, 1, 3, 3, 3];
        let h2 = Hcd::from_parts(nodes, tid);
        assert_eq!(h.canonicalize(), h2.canonicalize());
    }

    #[test]
    fn canonical_form_detects_parent_difference() {
        let h = sample();
        let mut nodes = h.nodes().to_vec();
        // Reparent T3 under T2 instead of T1.
        nodes[3].parent = 2;
        nodes[1].children.clear();
        nodes[2].children.push(3);
        let h2 = Hcd::from_parts(nodes, h.tids().to_vec());
        assert_ne!(h.canonicalize(), h2.canonicalize());
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let h = sample();
        let dot = h.to_dot();
        for i in 0..4 {
            assert!(dot.contains(&format!("n{i} ")));
        }
        assert!(dot.contains("n3 -> n1"));
    }
}
