//! Surgical repair of an HCD forest after a batch of edge updates.
//!
//! The serve writer used to rebuild the whole hierarchy with PHCD on
//! every batch. [`Hcd::repair`] instead splices the published forest:
//! starting from the exact changed region a
//! maintenance batch reports (vertices whose coreness moved, plus the
//! endpoints of the applied updates), it determines which tree nodes
//! can possibly be stale, rebuilds only those from the new graph, and
//! keeps everything else — cost proportional to the affected region.
//!
//! # The dirty region
//!
//! Let `D` be the input seeds expanded by their new-graph neighborhoods
//! plus any newly added vertices, and `K` the largest old or new
//! coreness over `D`. Only levels `0..=K` can change. Per level `k`,
//! the *dirty region* `R_k` is the union of the connected components of
//! the new `{coreness >= k}` subgraph that contain a seed of `D`.
//!
//! **Fragment containment**: every component of the new level-`k`
//! subgraph whose vertex set differs from its old counterpart contains
//! a seed — a fragment separates from its old component only across a
//! removed edge (both endpoints seeded) or a vertex that left the level
//! (seeded, and its surviving neighbors seeded by the neighborhood
//! expansion), and components merge only across inserted edges or
//! promoted vertices (again seeded). So rebuilding exactly the `R_k`
//! components replaces every node that could have changed.
//!
//! # Invalidation
//!
//! An old node is discarded iff (a) it lies on the ancestor chain of a
//! seed's old node — the chain records precisely the components the
//! seed used to belong to — or (b) it is the exact-level-`k` chain node
//! of a vertex of `R_k`, i.e. the old description of a component that
//! the dirty region now overlaps. Everything else survives verbatim,
//! including its vertex list (a kept node cannot contain a vertex whose
//! coreness moved: such vertices are seeds, and rule (a) would have
//! discarded the node).
//!
//! # Parents
//!
//! Fresh nodes — one per `(k, component of R_k)` with a non-empty
//! level-`k` slice — and kept nodes that lost their parent or gained a
//! possible interposed ancestor rescan levels downward, mirroring the
//! oracle: at each level, if the representative falls in `R_k` the
//! parent candidate is the fresh node of its component; otherwise the
//! component is untouched and the old ancestor chain (provably kept) is
//! authoritative. The result is renumbered through
//! [`Hcd::relabel_vertices`] with the identity map, which reproduces
//! PHCD's deterministic construction order.

use hcd_decomp::CoreDecomposition;
use hcd_graph::{CsrGraph, FxHashMap, FxHashSet, VertexId};

use crate::index::{Hcd, TreeNode, NO_NODE};

/// Per-level dirty region: members of `R_k` mapped to a component label
/// local to the level.
type Region = FxHashMap<VertexId, u32>;

impl Hcd {
    /// Repairs this hierarchy — assumed exact for the *previous* graph —
    /// into the hierarchy of `g` (whose exact decomposition is `cores`),
    /// given the `dirty` vertices of the change: every vertex whose
    /// coreness differs plus every endpoint of an applied edge update.
    /// Vertices may have been appended (`g` larger than before), never
    /// removed.
    ///
    /// Returns a forest canonically identical to a from-scratch
    /// construction, touching only nodes in the dirty region. The old
    /// index is consumed by value semantics of the caller (`&self` is
    /// read, the result is a new `Hcd`).
    pub fn repair(&self, g: &CsrGraph, cores: &CoreDecomposition, dirty: &[VertexId]) -> Hcd {
        let old_n = self.tids().len();
        let new_n = g.num_vertices();
        debug_assert!(new_n >= old_n, "vertices are never removed");
        let c_old = |v: VertexId| -> Option<u32> {
            if (v as usize) < old_n {
                Some(self.node(self.tid(v)).k)
            } else {
                None
            }
        };

        // Seed set: input ∪ new-graph neighborhoods ∪ appended vertices.
        let mut seeds: FxHashSet<VertexId> = FxHashSet::default();
        for &d in dirty {
            if seeds.insert(d) {
                for &x in g.neighbors(d) {
                    seeds.insert(x);
                }
            }
        }
        for v in old_n..new_n {
            seeds.insert(v as VertexId);
        }
        if seeds.is_empty() {
            return Hcd::from_parts(self.nodes().to_vec(), self.tids().to_vec());
        }
        let top = seeds
            .iter()
            .map(|&d| c_old(d).unwrap_or(0).max(cores.coreness(d)))
            .max()
            .unwrap_or(0);

        // Dirty regions R_0..R_K: whole components of the new level-k
        // subgraphs containing a seed, discovered by BFS from the seeds.
        let mut regions: Vec<Region> = Vec::with_capacity(top as usize + 1);
        for k in 0..=top {
            let mut region: Region = FxHashMap::default();
            let mut next_label = 0u32;
            let mut queue: Vec<VertexId> = Vec::new();
            for &s in &seeds {
                if cores.coreness(s) < k || region.contains_key(&s) {
                    continue;
                }
                let label = next_label;
                next_label += 1;
                region.insert(s, label);
                queue.push(s);
                while let Some(v) = queue.pop() {
                    for &x in g.neighbors(v) {
                        if cores.coreness(x) >= k && !region.contains_key(&x) {
                            region.insert(x, label);
                            queue.push(x);
                        }
                    }
                }
            }
            regions.push(region);
        }

        // Invalidation. Rule (a): the whole old ancestor chain of every
        // seed. Rule (b): the exact-level-k chain node of every vertex
        // of R_k; the walk also records interposition marks — the lowest
        // kept chain node whose parent link crosses level k may need a
        // fresh level-k ancestor spliced in, so it rescans its parent.
        let mut invalid: FxHashSet<u32> = FxHashSet::default();
        let mut rescan_marks: FxHashSet<u32> = FxHashSet::default();
        for &d in &seeds {
            if (d as usize) >= old_n {
                continue;
            }
            let mut cur = self.tid(d);
            while cur != NO_NODE {
                if !invalid.insert(cur) {
                    break; // chain tail already discarded
                }
                cur = self.node(cur).parent;
            }
        }
        for (k, region) in regions.iter().enumerate() {
            let k = k as u32;
            // One chain walk per distinct old node of the region.
            let tids: FxHashSet<u32> = region
                .keys()
                .filter(|&&v| (v as usize) < old_n)
                .map(|&v| self.tid(v))
                .collect();
            for &t in &tids {
                let mut prev = NO_NODE;
                let mut cur = t;
                while cur != NO_NODE && self.node(cur).k > k {
                    prev = cur;
                    cur = self.node(cur).parent;
                }
                if cur != NO_NODE && self.node(cur).k == k {
                    invalid.insert(cur);
                }
                if prev != NO_NODE {
                    rescan_marks.insert(prev);
                }
            }
        }

        // Assemble: kept nodes keep their vertex lists; fresh nodes are
        // one per (level, dirty component) with a non-empty level slice.
        let mut new_id = vec![NO_NODE; self.num_nodes()];
        let mut nodes: Vec<TreeNode> = Vec::new();
        for (i, n) in self.nodes().iter().enumerate() {
            if invalid.contains(&(i as u32)) {
                continue;
            }
            new_id[i] = nodes.len() as u32;
            nodes.push(TreeNode {
                k: n.k,
                vertices: n.vertices.clone(),
                parent: NO_NODE,
                children: Vec::new(),
            });
        }
        let kept = nodes.len();
        // fresh_at[k][label] -> node id (or NO_NODE if the slice is empty).
        let mut fresh_at: Vec<Vec<u32>> = Vec::with_capacity(regions.len());
        for (k, region) in regions.iter().enumerate() {
            let k = k as u32;
            let mut slices: FxHashMap<u32, Vec<VertexId>> = FxHashMap::default();
            let mut labels = 0u32;
            for (&v, &label) in region.iter() {
                labels = labels.max(label + 1);
                if cores.coreness(v) == k {
                    slices.entry(label).or_default().push(v);
                }
            }
            let mut at = vec![NO_NODE; labels as usize];
            for (label, mut vertices) in slices {
                vertices.sort_unstable();
                at[label as usize] = nodes.len() as u32;
                nodes.push(TreeNode {
                    k,
                    vertices,
                    parent: NO_NODE,
                    children: Vec::new(),
                });
            }
            fresh_at.push(at);
        }

        // Parent pointers. Kept nodes whose old parent survived (and
        // which gained no interposed ancestor) keep it; everything else
        // rescans downward from its level.
        let mut rescan: Vec<u32> = (kept as u32..nodes.len() as u32).collect();
        for (old, &id) in new_id.iter().enumerate() {
            if id == NO_NODE {
                continue;
            }
            let p = self.node(old as u32).parent;
            let parent_kept = p == NO_NODE || new_id[p as usize] != NO_NODE;
            if parent_kept && !rescan_marks.contains(&(old as u32)) {
                nodes[id as usize].parent = if p == NO_NODE {
                    NO_NODE
                } else {
                    new_id[p as usize]
                };
            } else {
                rescan.push(id);
            }
        }
        for &i in &rescan {
            let (k, rep) = {
                let n = &nodes[i as usize];
                (n.k, n.vertices[0])
            };
            // The representative's old chain, by level (empty for
            // appended vertices, which always fall inside R_k anyway).
            let mut chain: FxHashMap<u32, u32> = FxHashMap::default();
            if (rep as usize) < old_n {
                let mut cur = self.tid(rep);
                while cur != NO_NODE {
                    chain.insert(self.node(cur).k, cur);
                    cur = self.node(cur).parent;
                }
            }
            let mut parent = NO_NODE;
            for kp in (0..k).rev() {
                let in_region = regions.get(kp as usize).and_then(|r| r.get(&rep).copied());
                if let Some(label) = in_region {
                    let fresh = fresh_at[kp as usize][label as usize];
                    if fresh != NO_NODE {
                        parent = fresh;
                        break;
                    }
                } else if let Some(&old) = chain.get(&kp) {
                    debug_assert_ne!(
                        new_id[old as usize], NO_NODE,
                        "chain fallback hit an invalidated node"
                    );
                    parent = new_id[old as usize];
                    break;
                }
            }
            nodes[i as usize].parent = parent;
        }
        for i in 0..nodes.len() {
            let p = nodes[i].parent;
            if p != NO_NODE {
                nodes[p as usize].children.push(i as u32);
            }
        }

        // The vertex → node map: kept assignments survive, dirty-region
        // vertices point at their fresh slice node.
        let mut tid = vec![NO_NODE; new_n];
        for (i, n) in nodes.iter().enumerate() {
            for &v in &n.vertices {
                tid[v as usize] = i as u32;
            }
        }
        debug_assert!(
            tid.iter().all(|&t| t != NO_NODE),
            "repair left a vertex without a node"
        );

        // Renumber into PHCD's deterministic construction order via the
        // relabel machinery (identity permutation: ids are unchanged,
        // only node numbering and orderings are normalized).
        let identity: Vec<VertexId> = (0..new_n as VertexId).collect();
        Hcd::from_parts(nodes, tid).relabel_vertices(&identity)
    }
}

#[cfg(test)]
mod tests {
    use hcd_decomp::core_decomposition;
    use hcd_graph::{CsrGraph, GraphBuilder, VertexId};

    use crate::naive_hcd;

    /// Repairs the old graph's oracle hierarchy into the new graph's and
    /// checks it against a from-scratch oracle build.
    fn check_repair(old: &CsrGraph, new: &CsrGraph, touched: &[VertexId]) {
        let old_cores = core_decomposition(old);
        let new_cores = core_decomposition(new);
        let before = naive_hcd(old, &old_cores);
        // dirty = changed coreness ∪ touched endpoints, as the serve
        // writer computes it from a BatchReport.
        let mut dirty: Vec<VertexId> = touched.to_vec();
        for v in 0..new.num_vertices() {
            let was = if v < old.num_vertices() {
                old_cores.coreness(v as VertexId)
            } else {
                0
            };
            if was != new_cores.coreness(v as VertexId) {
                dirty.push(v as VertexId);
            }
        }
        let repaired = before.repair(new, &new_cores, &dirty);
        repaired
            .validate(new, &new_cores)
            .unwrap_or_else(|e| panic!("repair produced an invalid hierarchy: {e}"));
        let fresh = naive_hcd(new, &new_cores);
        assert_eq!(repaired.canonicalize(), fresh.canonicalize());
    }

    fn figure1_pair() -> (CsrGraph, CsrGraph) {
        let old = crate::testutil::figure1_graph();
        let new = {
            // Remove an edge inside the 4-core by rebuilding without it.
            let mut b = GraphBuilder::new().min_vertices(old.num_vertices());
            for (u, v) in old.edges() {
                if (u, v) != (0, 1) {
                    b = b.edge(u, v);
                }
            }
            b.build()
        };
        (old, new)
    }

    #[test]
    fn repair_handles_in_core_removal() {
        let (old, new) = figure1_pair();
        check_repair(&old, &new, &[0, 1]);
    }

    #[test]
    fn repair_handles_bridge_split_without_coreness_change() {
        // Two triangles joined by a bridge: removing the bridge changes
        // no coreness but splits the level-1 component in two.
        let old = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build();
        let new = GraphBuilder::new()
            .min_vertices(6)
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .build();
        check_repair(&old, &new, &[2, 3]);
    }

    #[test]
    fn repair_handles_component_merge() {
        let old = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .build();
        let new = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)])
            .build();
        check_repair(&old, &new, &[0, 3]);
    }

    #[test]
    fn repair_handles_appended_vertices() {
        let old = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0)]).build();
        let new = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 7)])
            .build();
        // Insert(2,3), Insert(3,7) grew the vertex set to 8 (4..7
        // appended isolated).
        check_repair(&old, &new, &[2, 3, 7]);
    }

    #[test]
    fn repair_interposes_a_new_level_between_kept_nodes() {
        // K5 (coreness 4) with a pendant path 0-5, 5-6: levels 4 and 1.
        // Adding edges among {5,6,7} raises the middle to level 2, which
        // must interpose between the kept K5 node and the level-1 root.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        let old = b.edge(0, 5).edge(5, 6).min_vertices(8).build();
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b = b.edge(u, v);
            }
        }
        let new = b
            .edge(0, 5)
            .edge(5, 6)
            .edge(5, 7)
            .edge(6, 7)
            .min_vertices(8)
            .build();
        check_repair(&old, &new, &[5, 6, 7]);
    }

    #[test]
    fn repair_with_no_dirty_vertices_is_identity() {
        let g = crate::testutil::figure1_graph();
        let cores = core_decomposition(&g);
        let before = naive_hcd(&g, &cores);
        let repaired = before.repair(&g, &cores, &[]);
        assert_eq!(repaired.canonicalize(), before.canonicalize());
    }

    mod proptests {
        use super::*;
        use hcd_graph::GraphBuilder;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Random base graph, random edge flips: repairing the old
            // hierarchy must reproduce the oracle of the new graph.
            #[test]
            fn repair_matches_oracle_on_random_flips(
                base in prop::collection::vec((0..14u32, 0..14u32), 0..50),
                flips in prop::collection::vec((0..14u32, 0..14u32), 1..8),
            ) {
                let mut edges: std::collections::BTreeSet<(u32, u32)> = base
                    .iter()
                    .filter(|&&(a, b)| a != b)
                    .map(|&(a, b)| (a.min(b), a.max(b)))
                    .collect();
                let old = GraphBuilder::new()
                    .min_vertices(14)
                    .edges(edges.iter().copied())
                    .build();
                let mut touched = Vec::new();
                for &(a, b) in &flips {
                    if a == b {
                        continue;
                    }
                    let e = (a.min(b), a.max(b));
                    if !edges.remove(&e) {
                        edges.insert(e);
                    }
                    touched.push(e.0);
                    touched.push(e.1);
                }
                let new = GraphBuilder::new()
                    .min_vertices(14)
                    .edges(edges.iter().copied())
                    .build();
                check_repair(&old, &new, &touched);
            }

            // Flips that also append vertices (growing the graph).
            #[test]
            fn repair_matches_oracle_when_the_graph_grows(
                base in prop::collection::vec((0..10u32, 0..10u32), 0..30),
                added in prop::collection::vec((0..16u32, 10..16u32), 1..6),
            ) {
                let old_edges: Vec<(u32, u32)> = base
                    .iter()
                    .filter(|&&(a, b)| a != b)
                    .map(|&(a, b)| (a.min(b), a.max(b)))
                    .collect();
                let old = GraphBuilder::new()
                    .min_vertices(10)
                    .edges(old_edges.iter().copied())
                    .build();
                let mut edges: std::collections::BTreeSet<(u32, u32)> =
                    old_edges.into_iter().collect();
                let mut touched = Vec::new();
                let mut max_v = 9u32;
                for &(a, b) in &added {
                    if a == b {
                        continue;
                    }
                    edges.insert((a.min(b), a.max(b)));
                    touched.push(a);
                    touched.push(b);
                    max_v = max_v.max(a).max(b);
                }
                let new = GraphBuilder::new()
                    .min_vertices(max_v as usize + 1)
                    .edges(edges.iter().copied())
                    .build();
                check_repair(&old, &new, &touched);
            }
        }
    }
}
