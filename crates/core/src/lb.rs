//! LB: the union-find lower bound of Table III.

use hcd_graph::CsrGraph;
use hcd_par::Executor;
use hcd_unionfind::{ConcurrentPivotUnionFind, UnionFindPivot};

/// Unions every adjacent vertex pair once — the minimum connection work
/// any union-find-based HCD construction must perform. The paper reports
/// PHCD's runtime relative to this as the "LB" columns of Table III.
///
/// Returns the populated union-find so callers can verify the result (and
/// so the work is not optimized away).
pub fn lb_union_all(g: &CsrGraph, exec: &Executor) -> ConcurrentPivotUnionFind {
    let n = g.num_vertices();
    let uf = ConcurrentPivotUnionFind::new_identity(n);
    exec.for_each_chunk(
        n,
        || (),
        |_, _, range| {
            for v in range {
                let v = v as u32;
                for &u in g.neighbors(v) {
                    if u > v {
                        uf.union(v, u);
                    }
                }
            }
        },
    );
    uf
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::traversal::connected_components;
    use hcd_graph::GraphBuilder;

    #[test]
    fn lb_components_match_bfs_components() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 5)])
            .min_vertices(10)
            .build();
        let (labels, count) = connected_components(&g);
        for exec in [Executor::sequential(), Executor::rayon(4)] {
            let uf = lb_union_all(&g, &exec);
            assert_eq!(uf.num_components(), count);
            for u in g.vertices() {
                for v in g.vertices() {
                    assert_eq!(uf.same_set(u, v), labels[u as usize] == labels[v as usize]);
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let uf = lb_union_all(&g, &Executor::sequential());
        assert_eq!(uf.num_components(), 0);
    }
}
