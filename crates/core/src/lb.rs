//! LB: the union-find lower bound of Table III.

use hcd_graph::CsrGraph;
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};
use hcd_unionfind::{ConcurrentPivotUnionFind, UnionFindPivot};

/// Unions every adjacent vertex pair once — the minimum connection work
/// any union-find-based HCD construction must perform. The paper reports
/// PHCD's runtime relative to this as the "LB" columns of Table III.
///
/// Returns the populated union-find so callers can verify the result (and
/// so the work is not optimized away).
pub fn lb_union_all(g: &CsrGraph, exec: &Executor) -> ConcurrentPivotUnionFind {
    match try_lb_union_all(g, exec) {
        Ok(uf) => uf,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`lb_union_all`]: the adjacency scan polls the
/// executor's cancellation checkpoint at a coarse edge stride, so
/// deadlines and cancel tokens abort it promptly (see `hcd_par` failure
/// model).
pub fn try_lb_union_all(
    g: &CsrGraph,
    exec: &Executor,
) -> Result<ConcurrentPivotUnionFind, ParError> {
    let n = g.num_vertices();
    let uf = ConcurrentPivotUnionFind::new_identity(n);
    exec.region("lb.union").try_for_each_chunk(
        n,
        || (),
        |_, _, range| {
            let mut since = 0usize;
            for v in range {
                let v = v as u32;
                for &u in g.neighbors(v) {
                    if u > v {
                        uf.union(v, u);
                    }
                }
                since += g.degree(v);
                if since >= CHECKPOINT_STRIDE {
                    exec.checkpoint()?;
                    since = 0;
                }
            }
            Ok(())
        },
    )?;
    Ok(uf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::traversal::connected_components;
    use hcd_graph::GraphBuilder;
    use hcd_par::{CancelToken, Deadline};
    use std::time::Duration;

    #[test]
    fn lb_components_match_bfs_components() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 5)])
            .min_vertices(10)
            .build();
        let (labels, count) = connected_components(&g);
        for exec in [Executor::sequential(), Executor::rayon(4)] {
            let uf = lb_union_all(&g, &exec);
            assert_eq!(uf.num_components(), count);
            for u in g.vertices() {
                for v in g.vertices() {
                    assert_eq!(uf.same_set(u, v), labels[u as usize] == labels[v as usize]);
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let uf = lb_union_all(&g, &Executor::sequential());
        assert_eq!(uf.num_components(), 0);
    }

    #[test]
    fn respects_cancellation_and_deadline() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0)]).build();
        let exec = Executor::sequential();
        let token = CancelToken::new();
        exec.set_cancel(token.clone());
        token.cancel();
        assert!(matches!(
            try_lb_union_all(&g, &exec).map(|_| ()),
            Err(ParError::Cancelled)
        ));
        exec.clear_cancel();
        exec.set_deadline(Deadline::from_now(Duration::ZERO));
        assert!(matches!(
            try_lb_union_all(&g, &exec).map(|_| ()),
            Err(ParError::DeadlineExceeded)
        ));
    }
}
