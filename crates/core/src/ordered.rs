//! Locality-ordered construction: relabel, build, map back.
//!
//! Hub-first (degree-descending) vertex ids pay off twice in the
//! construction hot path:
//!
//! * **Cache locality** — CSR adjacency of a relabeled graph touches a
//!   compact id prefix for the high-degree vertices that dominate edge
//!   scans, so degree/rank/union-find arrays stay hot.
//! * **Union-find contention** — PHCD's union phase repeatedly merges
//!   toward hub components. With hubs packed together, the per-worker
//!   [`UnionBatch`](hcd_unionfind::UnionBatch) coalesces far more edges
//!   locally (same components recur within a chunk), cutting shared-
//!   structure finds, link CAS retries, and pivot-merge chases — see
//!   the `phcd.uf.*` counters.
//!
//! The relabeling is *invisible* in the output: core numbers are
//! unmapped through the permutation and the index is renumbered with
//! [`Hcd::relabel_vertices`], which provably restores the exact ids and
//! node numbering of an unordered build (bit-identical, enforced by
//! `tests/determinism.rs` and the `relabel` proptests).

use hcd_decomp::{try_pkc_core_decomposition, CoreDecomposition};
use hcd_graph::{CsrGraph, Permutation};
use hcd_par::{Executor, ParError};

use crate::index::Hcd;
use crate::phcd::try_phcd;

/// Vertex relabeling strategy applied before construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VertexOrder {
    /// Build on the graph as given.
    #[default]
    None,
    /// Relabel hubs-first by descending degree (stable in id), build on
    /// the relabeled graph, and map every output back to original ids.
    Degree,
}

impl VertexOrder {
    /// Parses a CLI-style name (`"none"` / `"degree"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(VertexOrder::None),
            "degree" => Some(VertexOrder::Degree),
            _ => None,
        }
    }

    /// The CLI-style name of this order.
    pub fn name(&self) -> &'static str {
        match self {
            VertexOrder::None => "none",
            VertexOrder::Degree => "degree",
        }
    }
}

/// Runs the full construction pipeline (PKC core decomposition, then
/// PHCD) under the given vertex order, returning outputs indexed by the
/// *original* vertex ids regardless of the order chosen.
pub fn try_build_with_order(
    g: &CsrGraph,
    order: VertexOrder,
    exec: &Executor,
) -> Result<(CoreDecomposition, Hcd), ParError> {
    match order {
        VertexOrder::None => {
            let cores = try_pkc_core_decomposition(g, exec)?;
            let hcd = try_phcd(g, &cores, exec)?;
            Ok((cores, hcd))
        }
        VertexOrder::Degree => {
            let p = Permutation::degree_order(g);
            let relabeled = g.relabel(&p);
            let cores_r = try_pkc_core_decomposition(&relabeled, exec)?;
            let hcd = try_phcd(&relabeled, &cores_r, exec)?.relabel_vertices(p.inverse());
            let cores = CoreDecomposition::from_coreness(p.unmap_values(cores_r.as_slice()));
            Ok((cores, hcd))
        }
    }
}

/// Panicking convenience wrapper over [`try_build_with_order`].
pub fn build_with_order(
    g: &CsrGraph,
    order: VertexOrder,
    exec: &Executor,
) -> (CoreDecomposition, Hcd) {
    match try_build_with_order(g, order, exec) {
        Ok(out) => out,
        Err(e) => e.raise(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_graph::GraphBuilder;

    fn figure_graph() -> CsrGraph {
        crate::testutil::figure1_graph()
    }

    #[test]
    fn parse_and_name_roundtrip() {
        assert_eq!(VertexOrder::parse("none"), Some(VertexOrder::None));
        assert_eq!(VertexOrder::parse("degree"), Some(VertexOrder::Degree));
        assert_eq!(VertexOrder::parse("core"), None);
        assert_eq!(VertexOrder::Degree.name(), "degree");
        assert_eq!(VertexOrder::default(), VertexOrder::None);
    }

    #[test]
    fn degree_order_output_is_bit_identical_to_unordered() {
        let g = figure_graph();
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(3),
        ] {
            let (cores_a, hcd_a) = build_with_order(&g, VertexOrder::None, &exec);
            let (cores_b, hcd_b) = build_with_order(&g, VertexOrder::Degree, &exec);
            assert_eq!(cores_a, cores_b, "coreness ({})", exec.mode_name());
            assert_eq!(hcd_a.nodes(), hcd_b.nodes(), "nodes ({})", exec.mode_name());
            assert_eq!(hcd_a.tids(), hcd_b.tids(), "tids ({})", exec.mode_name());
            assert_eq!(hcd_a.roots(), hcd_b.roots(), "roots ({})", exec.mode_name());
        }
    }

    #[test]
    fn ordered_build_validates_on_star_of_cliques() {
        let mut b = GraphBuilder::new();
        for c in 0..4u32 {
            let base = 1 + c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b = b.edge(base + i, base + j);
                }
            }
            b = b.edge(0, base);
        }
        let g = b.build();
        let exec = Executor::rayon(4);
        let (cores, hcd) = build_with_order(&g, VertexOrder::Degree, &exec);
        hcd.validate(&g, &cores).unwrap();
    }

    #[test]
    fn empty_graph_under_both_orders() {
        let g = GraphBuilder::new().build();
        let exec = Executor::sequential();
        for order in [VertexOrder::None, VertexOrder::Degree] {
            let (cores, hcd) = build_with_order(&g, order, &exec);
            assert!(cores.is_empty());
            assert_eq!(hcd.num_nodes(), 0);
        }
    }
}
