//! Binary serialization of a built HCD index.
//!
//! Rebuilding the hierarchy of a large graph is cheap but not free;
//! downstream index-based applications (influential-community or
//! attributed-community queries, §VII) want to build once and reload.
//! The format is a little-endian dump with a magic header, validated on
//! load.

use std::io::{Read, Write};

use hcd_graph::GraphError;

use crate::index::{Hcd, TreeNode, NO_NODE};

const MAGIC: &[u8; 8] = b"HCDIDX01";

/// Serializes the index.
pub fn write_hcd<W: Write>(hcd: &Hcd, mut w: W) -> Result<(), GraphError> {
    w.write_all(MAGIC)?;
    w.write_all(&(hcd.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(hcd.tids().len() as u64).to_le_bytes())?;
    for node in hcd.nodes() {
        w.write_all(&node.k.to_le_bytes())?;
        w.write_all(&node.parent.to_le_bytes())?;
        w.write_all(&(node.vertices.len() as u64).to_le_bytes())?;
        for &v in &node.vertices {
            w.write_all(&v.to_le_bytes())?;
        }
        // Children are reconstructed from parents on load.
    }
    for &t in hcd.tids() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Deserializes an index written by [`write_hcd`], reconstructing the
/// children lists and validating internal consistency.
pub fn read_hcd<R: Read>(mut r: R) -> Result<Hcd, GraphError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format("bad HCD index magic".into()));
    }
    let num_nodes = read_u64(&mut r)? as usize;
    let n = read_u64(&mut r)? as usize;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let k = read_u32(&mut r)?;
        let parent = read_u32(&mut r)?;
        let len = read_u64(&mut r)? as usize;
        if len > n {
            return Err(GraphError::Format("node larger than graph".into()));
        }
        let mut vertices = Vec::with_capacity(len);
        for _ in 0..len {
            vertices.push(read_u32(&mut r)?);
        }
        nodes.push(TreeNode {
            k,
            vertices,
            parent,
            children: Vec::new(),
        });
    }
    // Rebuild children.
    for i in 0..nodes.len() {
        let p = nodes[i].parent;
        if p != NO_NODE {
            if p as usize >= nodes.len() {
                return Err(GraphError::Format("parent id out of range".into()));
            }
            nodes[p as usize].children.push(i as u32);
        }
    }
    let mut tid = Vec::with_capacity(n);
    for _ in 0..n {
        let t = read_u32(&mut r)?;
        if t != NO_NODE && t as usize >= nodes.len() {
            return Err(GraphError::Format("tid out of range".into()));
        }
        tid.push(t);
    }
    // Consistency: every vertex listed in its node.
    for (v, &t) in tid.iter().enumerate() {
        if t != NO_NODE && !nodes[t as usize].vertices.contains(&(v as u32)) {
            return Err(GraphError::Format(format!(
                "vertex {v} not present in its node"
            )));
        }
    }
    Ok(Hcd::from_parts(nodes, tid))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phcd::phcd;
    use crate::testutil::figure1_graph;
    use hcd_decomp::core_decomposition;
    use hcd_par::Executor;

    #[test]
    fn roundtrip_preserves_index() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let mut buf = Vec::new();
        write_hcd(&hcd, &mut buf).unwrap();
        let back = read_hcd(&buf[..]).unwrap();
        assert_eq!(hcd.nodes(), back.nodes());
        assert_eq!(hcd.tids(), back.tids());
        assert_eq!(hcd.roots(), back.roots());
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTANIDX________".to_vec();
        assert!(read_hcd(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let mut buf = Vec::new();
        write_hcd(&hcd, &mut buf).unwrap();
        for cut in [9, buf.len() / 2, buf.len() - 2] {
            assert!(read_hcd(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_corrupted_tid() {
        let g = figure1_graph();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let mut buf = Vec::new();
        write_hcd(&hcd, &mut buf).unwrap();
        // Corrupt the final tid entry to a huge value.
        let len = buf.len();
        buf[len - 1] = 0x7F;
        assert!(read_hcd(&buf[..]).is_err());
    }

    #[test]
    fn empty_index_roundtrip() {
        let hcd = Hcd::from_parts(Vec::new(), Vec::new());
        let mut buf = Vec::new();
        write_hcd(&hcd, &mut buf).unwrap();
        let back = read_hcd(&buf[..]).unwrap();
        assert_eq!(back.num_nodes(), 0);
    }
}
