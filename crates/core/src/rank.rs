//! Algorithm 1: parallel vertex-rank computation and shell bucketing.

use hcd_decomp::CoreDecomposition;
use hcd_graph::VertexId;
use hcd_par::{Executor, ParError};

/// The vertex rank order (Definition 4) plus the shell index it induces.
///
/// `vsort` lists all vertices sorted by `(coreness, id)` — the
/// concatenation `H_0 + H_1 + … + H_kmax` of Algorithm 1 — and `rank[v]`
/// is `v`'s position in `vsort`. `shell(k)` returns the `H_k` slice.
#[derive(Debug, Clone)]
pub struct VertexRanks {
    vsort: Vec<VertexId>,
    rank: Vec<u32>,
    shell_start: Vec<usize>,
    kmax: u32,
}

impl VertexRanks {
    /// Runs Algorithm 1: per-worker coreness histograms over contiguous
    /// id ranges, a sequential prefix over the `(k, worker)` grid, and a
    /// parallel scatter. Because worker chunks are ascending id ranges
    /// and the prefix walks workers in order within each `k`, the result
    /// is exactly the stable `(coreness, id)` order, in `O(n)` work.
    pub fn compute(cores: &CoreDecomposition, exec: &Executor) -> Self {
        match Self::try_compute(cores, exec) {
            Ok(ranks) => ranks,
            Err(e) => e.raise(),
        }
    }

    /// Fallible version of [`VertexRanks::compute`]: returns `Err` if a
    /// region panics, is cancelled, or exceeds the executor's deadline
    /// (see `hcd_par` failure model).
    pub fn try_compute(cores: &CoreDecomposition, exec: &Executor) -> Result<Self, ParError> {
        let n = cores.len();
        let kmax = cores.kmax();
        let nk = kmax as usize + 1;
        let p = exec.num_workers();

        // Per-worker histogram of corenesses in its id range.
        let hists: Vec<(usize, Vec<u32>)> =
            exec.region("rank.hist").try_map_chunks(n, |w, range| {
                let mut hist = vec![0u32; nk];
                for v in range {
                    hist[cores.coreness(v as VertexId) as usize] += 1;
                }
                Ok((w, hist))
            })?;
        // Offsets per (k, worker): all of H_0 first, then H_1, ...
        let mut offsets = vec![0usize; nk * p];
        let mut shell_start = vec![0usize; nk + 1];
        {
            let mut acc = 0usize;
            for k in 0..nk {
                shell_start[k] = acc;
                for &(w, ref hist) in &hists {
                    offsets[k * p + w] = acc;
                    acc += hist[k] as usize;
                }
            }
            shell_start[nk] = acc;
            debug_assert_eq!(acc, n);
        }

        // Scatter: each worker writes its vertices at its reserved slots.
        let mut vsort = vec![0 as VertexId; n];
        {
            let vsort_ptr = SendPtr(vsort.as_mut_ptr());
            exec.region("rank.scatter").try_for_each_chunk(
                n,
                || offsets.clone(),
                |w, cursors, range| {
                    let _ = &vsort_ptr;
                    for v in range {
                        let k = cores.coreness(v as VertexId) as usize;
                        let slot = cursors[k * p + w];
                        cursors[k * p + w] += 1;
                        // SAFETY: slots [offsets[k*p+w], offsets[k*p+w] +
                        // hist[w][k]) are disjoint across (k, w) pairs, and
                        // this worker is the only writer for its w.
                        unsafe {
                            *vsort_ptr.0.add(slot) = v as VertexId;
                        }
                    }
                    Ok(())
                },
            )?;
        }

        // Invert to ranks.
        let mut rank = vec![0u32; n];
        {
            let rank_ptr = SendPtr(rank.as_mut_ptr());
            exec.region("rank.invert").try_for_each_chunk(
                n,
                || (),
                |_, _, range| {
                    let _ = &rank_ptr;
                    for i in range {
                        // SAFETY: vsort is a permutation, so each rank slot
                        // is written exactly once.
                        unsafe {
                            *rank_ptr.0.add(vsort[i] as usize) = i as u32;
                        }
                    }
                    Ok(())
                },
            )?;
        }

        Ok(VertexRanks {
            vsort,
            rank,
            shell_start,
            kmax,
        })
    }

    /// All vertices in vertex-rank order (`H_0 + H_1 + … + H_kmax`).
    pub fn vsort(&self) -> &[VertexId] {
        &self.vsort
    }

    /// `r(v)`: the rank of vertex `v`.
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v as usize]
    }

    /// The rank permutation as a slice (index = vertex id).
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// The k-shell `H_k` (vertices of coreness exactly `k`, ascending id).
    pub fn shell(&self, k: u32) -> &[VertexId] {
        let k = k as usize;
        &self.vsort[self.shell_start[k]..self.shell_start[k + 1]]
    }

    /// The rank interval `[start, end)` occupied by the k-shell in the
    /// rank order; ranks `>= end` have coreness `> k`.
    pub fn shell_bounds(&self, k: u32) -> (usize, usize) {
        let k = k as usize;
        (self.shell_start[k], self.shell_start[k + 1])
    }

    /// The largest coreness.
    pub fn kmax(&self) -> u32 {
        self.kmax
    }
}

/// Raw pointer wrapper so disjoint-slot parallel scatters can share a
/// buffer across worker closures.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_decomp::core_decomposition;
    use hcd_graph::GraphBuilder;

    fn sample_cores() -> CoreDecomposition {
        // Triangle {0,1,2} (coreness 2), path 2-3 (coreness 1), isolated 4.
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .min_vertices(5)
            .build();
        core_decomposition(&g)
    }

    #[test]
    fn vsort_is_stable_by_coreness_then_id() {
        let cores = sample_cores();
        for exec in [
            Executor::sequential(),
            Executor::rayon(3),
            Executor::simulated(4),
        ] {
            let vr = VertexRanks::compute(&cores, &exec);
            assert_eq!(vr.vsort(), &[4, 3, 0, 1, 2], "mode {}", exec.mode_name());
        }
    }

    #[test]
    fn rank_is_inverse_of_vsort() {
        let cores = sample_cores();
        let vr = VertexRanks::compute(&cores, &Executor::rayon(2));
        for (i, &v) in vr.vsort().iter().enumerate() {
            assert_eq!(vr.rank(v) as usize, i);
        }
    }

    #[test]
    fn shells_match_decomposition() {
        let cores = sample_cores();
        let vr = VertexRanks::compute(&cores, &Executor::sequential());
        assert_eq!(vr.shell(0), &[4]);
        assert_eq!(vr.shell(1), &[3]);
        assert_eq!(vr.shell(2), &[0, 1, 2]);
        assert_eq!(vr.kmax(), 2);
    }

    #[test]
    fn rank_respects_definition_4() {
        let cores = sample_cores();
        let vr = VertexRanks::compute(&cores, &Executor::simulated(2));
        let n = cores.len() as u32;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let lower = cores.coreness(u) < cores.coreness(v)
                    || (cores.coreness(u) == cores.coreness(v) && u < v);
                assert_eq!(vr.rank(u) < vr.rank(v), lower, "u={u} v={v}");
            }
        }
    }

    #[test]
    fn empty_input() {
        let cores = CoreDecomposition::from_coreness(Vec::new());
        let vr = VertexRanks::compute(&cores, &Executor::sequential());
        assert!(vr.vsort().is_empty());
        assert_eq!(vr.shell(0).len(), 0);
    }
}
