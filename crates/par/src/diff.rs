//! Regression diffing of `hcd-metrics-v1` snapshots.
//!
//! [`diff_metrics`] compares two metrics documents (as produced by
//! [`RunMetrics::to_json`](crate::RunMetrics::to_json), e.g. via
//! `hcd-cli --metrics` or the bench harness) region by region and
//! counter by counter, and reports regressions: a timing value in the
//! *new* snapshot counts as regressed when it exceeds the old value by
//! both a relative threshold **and** an absolute floor, so nanosecond
//! noise on near-zero regions never trips the gate. This backs
//! `hcd-cli metrics-diff`, which CI runs against a committed baseline.
//!
//! The parser here is a minimal recursive-descent JSON reader — the
//! workspace is serde-free by design (DESIGN.md), and the metrics
//! documents are small and machine-generated.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (just enough for metrics documents).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member access: `json.get("regions")`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Surrogate pairs are not produced by our emitters;
                        // map lone surrogates to U+FFFD rather than erroring.
                        let c = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

/// One histogram entry of a parsed metrics snapshot, reduced to the
/// emitted percentile summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotHistogram {
    pub name: String,
    pub count: f64,
    pub p50_ns: f64,
    pub p90_ns: f64,
    pub p99_ns: f64,
    pub p999_ns: f64,
    pub max_ns: f64,
}

/// One region row of a parsed metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRegion {
    pub name: String,
    pub wall_ns: f64,
    pub chunk_max_ns: f64,
    pub imbalance: f64,
}

/// A parsed `hcd-metrics-v1` document, reduced to the comparable values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub total_wall_ns: f64,
    pub total_charged_ns: f64,
    pub regions: Vec<SnapshotRegion>,
    /// Counter name → value ("sum" and "max" counters alike).
    pub counters: BTreeMap<String, f64>,
    /// Latency-histogram percentile summaries (absent section ⇒ empty:
    /// pre-PR8 documents carry no `histograms`).
    pub histograms: Vec<SnapshotHistogram>,
    /// Top-level sections this parser did not recognise — surfaced by
    /// `metrics-diff` so schema drift is visible instead of silently
    /// ignored.
    pub unknown_sections: Vec<String>,
}

impl Snapshot {
    /// Parses a metrics JSON document, verifying the schema tag.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema` field")?;
        if schema != crate::METRICS_SCHEMA {
            return Err(format!(
                "schema mismatch: expected `{}`, got `{schema}`",
                crate::METRICS_SCHEMA
            ));
        }
        let num = |j: &Json, key: &str| -> Result<f64, String> {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let mut snap = Snapshot {
            total_wall_ns: num(&doc, "total_wall_ns")?,
            total_charged_ns: num(&doc, "total_charged_ns")?,
            ..Snapshot::default()
        };
        for r in doc.get("regions").and_then(Json::as_arr).unwrap_or(&[]) {
            snap.regions.push(SnapshotRegion {
                name: r
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("region without name")?
                    .to_string(),
                wall_ns: num(r, "wall_ns")?,
                chunk_max_ns: num(r, "chunk_max_ns")?,
                imbalance: num(r, "imbalance")?,
            });
        }
        // `counters` is absent in pre-PR3 documents; treat as empty.
        for c in doc.get("counters").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = c
                .get("name")
                .and_then(Json::as_str)
                .ok_or("counter without name")?;
            snap.counters.insert(name.to_string(), num(c, "value")?);
        }
        // `histograms` is absent in pre-PR8 documents; treat as empty.
        for h in doc
            .get("histograms")
            .and_then(|h| h.get("entries"))
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            snap.histograms.push(SnapshotHistogram {
                name: h
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("histogram without name")?
                    .to_string(),
                count: num(h, "count")?,
                p50_ns: num(h, "p50_ns")?,
                p90_ns: num(h, "p90_ns")?,
                p99_ns: num(h, "p99_ns")?,
                p999_ns: num(h, "p999_ns")?,
                max_ns: num(h, "max_ns")?,
            });
        }
        const KNOWN_SECTIONS: [&str; 6] = [
            "schema",
            "total_wall_ns",
            "total_charged_ns",
            "regions",
            "counters",
            "histograms",
        ];
        if let Some(obj) = doc.as_obj() {
            for key in obj.keys() {
                if !KNOWN_SECTIONS.contains(&key.as_str()) {
                    snap.unknown_sections.push(key.clone());
                }
            }
        }
        Ok(snap)
    }

    /// The region named `name`, if present.
    pub fn region(&self, name: &str) -> Option<&SnapshotRegion> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// The histogram summary named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&SnapshotHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Tuning for [`diff_metrics`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative regression threshold: `new > old * threshold` flags a
    /// timing regression. `1.25` = "25 % slower".
    pub threshold: f64,
    /// Absolute floor in nanoseconds: increases below this never count,
    /// so sub-microsecond regions can't trip the gate on noise.
    pub abs_floor_ns: f64,
    /// Relative threshold for *counter* regressions (work counters such
    /// as CAS retries are deterministic-ish, but still allowed slack).
    pub counter_threshold: f64,
    /// Gate on counters only: timing and imbalance rows are still
    /// reported (advisory), but never count as regressed. This is what
    /// CI uses — wall time on shared runners is noise, algorithm
    /// counters are reproducible.
    pub counters_only: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            threshold: 1.25,
            abs_floor_ns: 100_000.0, // 0.1 ms
            counter_threshold: 1.5,
            counters_only: false,
        }
    }
}

/// One comparison row in a [`DiffReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// `region:<name>:<field>`, `counter:<name>`, or `total:<field>`.
    pub what: String,
    pub old: f64,
    pub new: f64,
    /// Whether this entry exceeded the regression gate.
    pub regressed: bool,
}

impl DiffEntry {
    /// `new / old`, or `inf` for a new-only nonzero value.
    pub fn ratio(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new / self.old
        }
    }
}

/// The outcome of comparing two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// All compared values, regressions first, then by name.
    pub entries: Vec<DiffEntry>,
    /// Regions/counters present in only one snapshot (never regressions
    /// by themselves — phase structure legitimately changes between
    /// versions — but worth surfacing).
    pub only_old: Vec<String>,
    pub only_new: Vec<String>,
}

impl DiffReport {
    /// Whether any entry regressed.
    pub fn regressed(&self) -> bool {
        self.entries.iter().any(|e| e.regressed)
    }

    /// The regressed entries.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(|e| e.regressed)
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "{} {:<40} {:>14.0} -> {:>14.0}  ({:.2}x)",
                if e.regressed {
                    "REGRESSED"
                } else {
                    "       ok"
                },
                e.what,
                e.old,
                e.new,
                e.ratio(),
            )?;
        }
        for name in &self.only_old {
            writeln!(f, "     gone {name}")?;
        }
        for name in &self.only_new {
            writeln!(f, "      new {name}")?;
        }
        Ok(())
    }
}

/// Compares two snapshots; see [`DiffOptions`] for the gate.
pub fn diff_metrics(old: &Snapshot, new: &Snapshot, opts: &DiffOptions) -> DiffReport {
    let timing_regressed = |old_v: f64, new_v: f64| {
        !opts.counters_only && new_v > old_v * opts.threshold && (new_v - old_v) > opts.abs_floor_ns
    };
    let mut report = DiffReport::default();
    report.entries.push(DiffEntry {
        what: "total:wall_ns".into(),
        old: old.total_wall_ns,
        new: new.total_wall_ns,
        regressed: timing_regressed(old.total_wall_ns, new.total_wall_ns),
    });
    report.entries.push(DiffEntry {
        what: "total:charged_ns".into(),
        old: old.total_charged_ns,
        new: new.total_charged_ns,
        regressed: timing_regressed(old.total_charged_ns, new.total_charged_ns),
    });
    for o in &old.regions {
        let Some(n) = new.region(&o.name) else {
            report.only_old.push(format!("region:{}", o.name));
            continue;
        };
        for (field, old_v, new_v, is_timing) in [
            ("wall_ns", o.wall_ns, n.wall_ns, true),
            ("chunk_max_ns", o.chunk_max_ns, n.chunk_max_ns, true),
            ("imbalance", o.imbalance, n.imbalance, false),
        ] {
            let regressed = if is_timing {
                timing_regressed(old_v, new_v)
            } else {
                // Imbalance is a ratio (>= 1); gate it on the relative
                // threshold alone, anchored at 1.0 so a 1.01 -> 1.30
                // drift counts the same as 1.01x -> 1.30x wall.
                !opts.counters_only && new_v > 1.0 && new_v > old_v * opts.threshold
            };
            report.entries.push(DiffEntry {
                what: format!("region:{}:{}", o.name, field),
                old: old_v,
                new: new_v,
                regressed,
            });
        }
    }
    for n in &new.regions {
        if old.region(&n.name).is_none() {
            report.only_new.push(format!("region:{}", n.name));
        }
    }
    for o in &old.histograms {
        let Some(n) = new.histogram(&o.name) else {
            report.only_old.push(format!("hist:{}", o.name));
            continue;
        };
        // p99 is the gated tail statistic (relative threshold + absolute
        // floor, like every timing gate); p50/p999/max ride along as
        // advisory rows so the report shows where in the distribution a
        // shift happened.
        for (field, old_v, new_v, gated) in [
            ("p50_ns", o.p50_ns, n.p50_ns, false),
            ("p99_ns", o.p99_ns, n.p99_ns, true),
            ("p999_ns", o.p999_ns, n.p999_ns, false),
            ("max_ns", o.max_ns, n.max_ns, false),
        ] {
            report.entries.push(DiffEntry {
                what: format!("hist:{}:{}", o.name, field),
                old: old_v,
                new: new_v,
                regressed: gated && timing_regressed(old_v, new_v),
            });
        }
    }
    for n in &new.histograms {
        if old.histogram(&n.name).is_none() {
            report.only_new.push(format!("hist:{}", n.name));
        }
    }
    for (name, old_v) in &old.counters {
        let Some(new_v) = new.counters.get(name) else {
            report.only_old.push(format!("counter:{name}"));
            continue;
        };
        report.entries.push(DiffEntry {
            what: format!("counter:{name}"),
            old: *old_v,
            new: *new_v,
            regressed: *new_v > old_v * opts.counter_threshold && (*new_v - *old_v) >= 16.0,
        });
    }
    for name in new.counters.keys() {
        if !old.counters.contains_key(name) {
            report.only_new.push(format!("counter:{name}"));
        }
    }
    report
        .entries
        .sort_by(|a, b| b.regressed.cmp(&a.regressed).then(a.what.cmp(&b.what)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegionMetrics, RunMetrics};

    fn sample_metrics(wall: u64) -> String {
        let rm = RunMetrics {
            regions: vec![RegionMetrics {
                invocations: 1,
                chunks: 4,
                wall_ns: wall,
                chunk_sum_ns: wall,
                chunk_max_ns: wall / 2,
                chunk_min_ns: wall / 8,
                ..RegionMetrics::new("phcd.union")
            }],
            counters: vec![crate::CounterValue {
                name: "uf.cas_retries",
                value: wall / 1000,
                kind: "sum",
            }],
            ..RunMetrics::default()
        };
        rm.to_json()
    }

    #[test]
    fn parses_emitted_documents_round_trip() {
        let snap = Snapshot::parse(&sample_metrics(2_000_000)).unwrap();
        assert_eq!(snap.regions.len(), 1);
        let r = snap.region("phcd.union").unwrap();
        assert_eq!(r.wall_ns, 2_000_000.0);
        assert_eq!(r.chunk_max_ns, 1_000_000.0);
        assert_eq!(snap.counters["uf.cas_retries"], 2_000.0);
    }

    #[test]
    fn rejects_wrong_schema() {
        let err = Snapshot::parse(r#"{"schema": "something-else"}"#).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn identical_snapshots_do_not_regress() {
        let snap = Snapshot::parse(&sample_metrics(5_000_000)).unwrap();
        let report = diff_metrics(&snap, &snap, &DiffOptions::default());
        assert!(!report.regressed(), "{report}");
        assert!(report.only_old.is_empty() && report.only_new.is_empty());
    }

    #[test]
    fn wall_regression_past_threshold_is_flagged() {
        let old = Snapshot::parse(&sample_metrics(2_000_000)).unwrap();
        let new = Snapshot::parse(&sample_metrics(4_000_000)).unwrap();
        let report = diff_metrics(&old, &new, &DiffOptions::default());
        assert!(report.regressed());
        assert!(report
            .regressions()
            .any(|e| e.what == "region:phcd.union:wall_ns"));
        // Sorted regressions-first.
        assert!(report.entries[0].regressed);
    }

    #[test]
    fn abs_floor_suppresses_nanosecond_noise() {
        // 10x relative blowup but only 900ns absolute: below the floor.
        let old = Snapshot::parse(&sample_metrics(100)).unwrap();
        let new = Snapshot::parse(&sample_metrics(1_000)).unwrap();
        assert!(!diff_metrics(&old, &new, &DiffOptions::default()).regressed());
        // With the floor dropped, the same pair regresses.
        let strict = DiffOptions {
            abs_floor_ns: 0.0,
            ..DiffOptions::default()
        };
        assert!(diff_metrics(&old, &new, &strict).regressed());
    }

    #[test]
    fn structural_changes_are_surfaced_not_regressed() {
        let old = Snapshot::parse(&sample_metrics(1_000_000)).unwrap();
        let mut renamed = old.clone();
        renamed.regions[0].name = "phcd.union2".into();
        let report = diff_metrics(&old, &renamed, &DiffOptions::default());
        assert!(!report.regressed());
        assert_eq!(report.only_old, vec!["region:phcd.union".to_string()]);
        assert_eq!(report.only_new, vec!["region:phcd.union2".to_string()]);
    }

    #[test]
    fn counter_regression_uses_its_own_threshold() {
        let old = Snapshot::parse(&sample_metrics(2_000_000)).unwrap(); // ctr 2000
        let new = Snapshot::parse(&sample_metrics(4_000_000)).unwrap(); // ctr 4000
        let lax = DiffOptions {
            threshold: 100.0, // timing never trips here
            counter_threshold: 1.5,
            ..DiffOptions::default()
        };
        let report = diff_metrics(&old, &new, &lax);
        assert!(report
            .regressions()
            .any(|e| e.what == "counter:uf.cas_retries"));
        let relaxed = DiffOptions {
            threshold: 100.0,
            counter_threshold: 3.0,
            ..DiffOptions::default()
        };
        assert!(!diff_metrics(&old, &new, &relaxed).regressed());
    }

    #[test]
    fn counters_only_ignores_timing_but_keeps_counter_gate() {
        // 2x wall blowup AND 2x counter blowup.
        let old = Snapshot::parse(&sample_metrics(2_000_000)).unwrap();
        let new = Snapshot::parse(&sample_metrics(4_000_000)).unwrap();
        let opts = DiffOptions {
            counters_only: true,
            ..DiffOptions::default()
        };
        let report = diff_metrics(&old, &new, &opts);
        // The only regression is the counter; every timing row is
        // advisory but still present in the report.
        assert!(report.regressed());
        for e in report.regressions() {
            assert_eq!(e.what, "counter:uf.cas_retries");
        }
        assert!(report
            .entries
            .iter()
            .any(|e| e.what == "region:phcd.union:wall_ns" && !e.regressed));

        // With the counter also unchanged, nothing regresses no matter
        // how much slower the timings are.
        let mut same_ctr = new.clone();
        same_ctr.counters.insert("uf.cas_retries".into(), 2_000.0);
        assert!(!diff_metrics(&old, &same_ctr, &opts).regressed());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc =
            Json::parse(r#"{"a": "q\"uote\\n", "b": [1, 2.5, -3e2], "c": {"d": null, "e": true}}"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_str().unwrap(), "q\"uote\\n");
        let arr = doc.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_f64().unwrap(), -300.0);
        assert_eq!(doc.get("c").unwrap().get("d"), Some(&Json::Null));
        assert!(Json::parse("{\"unterminated\": ").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    fn hist_doc(p99: u64) -> String {
        format!(
            r#"{{"schema": "hcd-metrics-v1", "total_wall_ns": 0, "total_charged_ns": 0,
                "regions": [], "counters": [],
                "histograms": {{"version": 1, "sub_bits": 2, "entries": [
                  {{"name": "serve.query.core", "count": 100, "sum_ns": 1, "min_ns": 1,
                    "max_ns": {max}, "p50_ns": 1000, "p90_ns": 2000, "p99_ns": {p99},
                    "p999_ns": {max}, "buckets": [[0, 100]]}}
                ]}}}}"#,
            p99 = p99,
            max = p99 * 2,
        )
    }

    #[test]
    fn histogram_p99_regression_is_gated() {
        let old = Snapshot::parse(&hist_doc(1_000_000)).unwrap();
        let new = Snapshot::parse(&hist_doc(10_000_000)).unwrap();
        let report = diff_metrics(&old, &new, &DiffOptions::default());
        assert!(report.regressed());
        assert!(report
            .regressions()
            .all(|e| e.what == "hist:serve.query.core:p99_ns"));
        // p50 / p999 / max rows are advisory: present, never gated.
        for field in ["p50_ns", "p999_ns", "max_ns"] {
            assert!(report
                .entries
                .iter()
                .any(|e| e.what == format!("hist:serve.query.core:{field}") && !e.regressed));
        }
        // Under counters-only, the p99 shift is advisory too.
        let opts = DiffOptions {
            counters_only: true,
            ..DiffOptions::default()
        };
        assert!(!diff_metrics(&old, &new, &opts).regressed());
    }

    #[test]
    fn histogram_p99_noise_below_abs_floor_passes() {
        // 50x relative blowup but only 49µs absolute: under the 0.1ms floor.
        let old = Snapshot::parse(&hist_doc(1_000)).unwrap();
        let new = Snapshot::parse(&hist_doc(50_000)).unwrap();
        assert!(!diff_metrics(&old, &new, &DiffOptions::default()).regressed());
    }

    #[test]
    fn histogram_structure_changes_are_surfaced() {
        let with = Snapshot::parse(&hist_doc(1_000)).unwrap();
        let without = Snapshot::parse(&sample_metrics(1_000)).unwrap();
        let report = diff_metrics(&with, &without, &DiffOptions::default());
        assert!(report
            .only_old
            .contains(&"hist:serve.query.core".to_string()));
        let report = diff_metrics(&without, &with, &DiffOptions::default());
        assert!(report
            .only_new
            .contains(&"hist:serve.query.core".to_string()));
    }

    #[test]
    fn unknown_sections_are_collected() {
        let text = r#"{"schema": "hcd-metrics-v1", "total_wall_ns": 0,
            "total_charged_ns": 0, "regions": [], "counters": [],
            "futurestuff": {"x": 1}, "alsofuture": []}"#;
        let snap = Snapshot::parse(text).unwrap();
        assert_eq!(
            snap.unknown_sections,
            vec!["alsofuture".to_string(), "futurestuff".to_string()]
        );
        // Emitted documents are fully recognised.
        let clean = Snapshot::parse(&sample_metrics(1_000)).unwrap();
        assert!(clean.unknown_sections.is_empty());
    }

    #[test]
    fn emitted_histograms_round_trip_through_the_parser() {
        let exec = crate::Executor::sequential()
            .with_metrics()
            .with_histograms();
        for ns in [1_000u64, 2_000, 4_000, 1_000_000] {
            exec.observe_ns("rt.series", ns);
        }
        let json = exec.take_metrics().to_json();
        let snap = Snapshot::parse(&json).unwrap();
        let h = snap.histogram("rt.series").expect("histogram parsed");
        assert_eq!(h.count, 4.0);
        assert_eq!(h.max_ns, 1_000_000.0);
        assert!(h.p50_ns <= h.p99_ns && h.p99_ns <= h.p999_ns);
        assert!(h.p999_ns <= h.max_ns);
        assert!(snap.unknown_sections.is_empty());
    }

    #[test]
    fn pre_counters_documents_still_parse() {
        // A PR2-era document has no `counters` array.
        let text = r#"{
          "schema": "hcd-metrics-v1",
          "total_wall_ns": 10,
          "total_charged_ns": 5,
          "regions": [{"name": "x", "invocations": 1, "chunks": 1,
            "wall_ns": 10, "chunk_sum_ns": 10, "chunk_max_ns": 5,
            "chunk_min_ns": 5, "imbalance": 1.0, "checkpoints": 0,
            "cancelled": 0, "deadline_exceeded": 0, "panicked": 0,
            "faults_injected": 0}]
        }"#;
        let snap = Snapshot::parse(text).unwrap();
        assert!(snap.counters.is_empty());
        assert_eq!(snap.region("x").unwrap().chunk_max_ns, 5.0);
    }
}
