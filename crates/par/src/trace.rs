//! Timeline tracing for the parallel runtime.
//!
//! Region metrics (see [`metrics`](crate::metrics)) aggregate *how much*
//! each region cost; a trace records *when* everything happened. When a
//! trace is **armed** on an [`Executor`](crate::Executor), every parallel
//! region records span events — region enter/exit, per-chunk begin/end,
//! checkpoint polls, injected faults — plus counter samples
//! ([`Executor::gauge`](crate::Executor::gauge)) into per-thread
//! lock-free ring buffers. [`Executor::take_trace`](crate::Executor::take_trace)
//! disarms the trace, merges the buffers, and returns a [`Trace`] that
//! exports as a Chrome/Perfetto trace-event JSON document (schema
//! [`TRACE_SCHEMA`]).
//!
//! # Cost model
//!
//! Disarmed (the default), the only overhead is one relaxed atomic load
//! per region — identical in shape to the metrics recorder — and *zero*
//! per-chunk atomics. Armed, each event is one `Instant::now()` plus a
//! single-writer ring-buffer append (one relaxed load, one plain write,
//! one release store; no CAS, no locks). Ring buffers are bounded
//! ([`DEFAULT_EVENT_CAPACITY`] events per OS thread): when a buffer
//! wraps, the oldest events are overwritten and counted in
//! [`Trace::dropped`], so tracing can never exhaust memory on a long
//! run.
//!
//! # Track model
//!
//! Events are recorded by the OS thread that produced them, but exported
//! on *logical worker* tracks: chunk `w` of every region lands on track
//! `worker-w` (tid `w + 1`), while region-level enter/exit spans land on
//! the `regions` track (tid 0). This makes the three executor modes
//! directly comparable in a viewer — in simulated mode the worker tracks
//! show the serialized schedule the work-span model re-prices, in rayon
//! mode they show real concurrency.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Version tag of the JSON document emitted by [`Trace::to_chrome_json`].
pub const TRACE_SCHEMA: &str = "hcd-trace-v1";

/// Default ring-buffer capacity, in events, per recording OS thread.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// Worker value used for events not attributed to a chunk (region-level
/// spans, checkpoint polls, counter samples).
const NO_WORKER: u32 = u32::MAX;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A region started (driver thread, before any chunk runs).
    RegionEnter,
    /// A region completed (after the barrier; `value` = 1 if it failed).
    RegionExit,
    /// A chunk started on some worker.
    ChunkBegin,
    /// A chunk finished on some worker.
    ChunkEnd,
    /// An [`Executor::checkpoint`](crate::Executor::checkpoint) poll.
    Checkpoint,
    /// A [`FaultPlan`](crate::FaultPlan) site fired in this chunk.
    Fault,
    /// A counter sample (`value` = the sampled value).
    Counter,
}

impl EventKind {
    fn label(self) -> &'static str {
        match self {
            EventKind::RegionEnter => "region_enter",
            EventKind::RegionExit => "region_exit",
            EventKind::ChunkBegin => "chunk_begin",
            EventKind::ChunkEnd => "chunk_end",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Fault => "fault",
            EventKind::Counter => "counter",
        }
    }
}

/// One timeline event. `ts_ns` is relative to the arming instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace was armed.
    pub ts_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Region or counter name (static, `[a-z0-9._-]` by convention).
    pub name: &'static str,
    /// Chunk/worker index, or `u32::MAX` for unattributed events.
    pub worker: u32,
    /// Kind-specific payload: counter value, region failure flag.
    pub value: u64,
}

impl TraceEvent {
    fn placeholder() -> TraceEvent {
        TraceEvent {
            ts_ns: 0,
            kind: EventKind::Checkpoint,
            name: "",
            worker: NO_WORKER,
            value: 0,
        }
    }
}

/// Single-writer ring buffer: only the owning thread appends; readers
/// (the collector) only run at quiescence, after the trace is disarmed
/// and every region has completed.
struct ThreadBuf {
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// Total number of events ever written (monotonic; slot index is
    /// `head % slots.len()`).
    head: AtomicUsize,
}

// SAFETY: `slots` is written only by the owning thread (single writer)
// and read only after a happens-before edge: the writer's release store
// of `head` is observed by the collector's acquire load, and collection
// happens after all regions have joined (quiescence).
unsafe impl Sync for ThreadBuf {}
unsafe impl Send for ThreadBuf {}

impl ThreadBuf {
    fn new(capacity: usize) -> ThreadBuf {
        ThreadBuf {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(TraceEvent::placeholder()))
                .collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Appends one event; overwrites the oldest slot when full.
    fn push(&self, ev: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        // SAFETY: single writer (the owning thread); see `unsafe impl`.
        unsafe { *self.slots[head % self.slots.len()].get() = ev };
        self.head.store(head + 1, Ordering::Release);
    }

    /// Drains the retained events (oldest first) and the dropped count.
    /// Must only be called at quiescence.
    fn collect(&self) -> (Vec<TraceEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len();
        let kept = head.min(cap);
        let dropped = (head - kept) as u64;
        let mut out = Vec::with_capacity(kept);
        // Oldest retained event lives at `head - kept`.
        for i in (head - kept)..head {
            // SAFETY: all writes up to `head` happen-before the acquire
            // load above; no writer is active during collection.
            out.push(unsafe { *self.slots[i % cap].get() });
        }
        (out, dropped)
    }
}

/// Shared state of one armed trace session: the epoch, the per-thread
/// buffer registry, and the session id threads use to detect re-arming.
pub(crate) struct TraceShared {
    id: u64,
    epoch: Instant,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

thread_local! {
    /// This thread's buffer in the most recent session it recorded into.
    static LOCAL_BUF: UnsafeCell<Option<(u64, Arc<ThreadBuf>)>> =
        const { UnsafeCell::new(None) };
}

static SESSION_IDS: AtomicU64 = AtomicU64::new(1);

impl TraceShared {
    fn new(capacity: usize) -> TraceShared {
        TraceShared {
            id: SESSION_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity: capacity.max(16),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds since this session was armed.
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one event into the calling thread's buffer, registering
    /// the thread on first contact with this session.
    pub(crate) fn record(&self, kind: EventKind, name: &'static str, worker: u32, value: u64) {
        let ev = TraceEvent {
            ts_ns: self.now_ns(),
            kind,
            name,
            worker,
            value,
        };
        LOCAL_BUF.with(|slot| {
            // SAFETY: the thread-local is only touched by its own thread,
            // and `record` never re-enters itself.
            let cached = unsafe { &mut *slot.get() };
            match cached {
                Some((id, buf)) if *id == self.id => buf.push(ev),
                _ => {
                    let buf = Arc::new(ThreadBuf::new(self.capacity));
                    buf.push(ev);
                    self.threads.lock().push(Arc::clone(&buf));
                    *cached = Some((self.id, buf));
                }
            }
        });
    }

    /// Merges all thread buffers into one timestamp-sorted event list.
    fn collect(&self) -> (Vec<TraceEvent>, u64) {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for buf in self.threads.lock().iter() {
            let (evs, d) = buf.collect();
            events.extend(evs);
            dropped += d;
        }
        events.sort_by_key(|e| e.ts_ns);
        (events, dropped)
    }
}

/// Per-executor trace control: an armed flag (one relaxed load on the
/// disarmed path) plus the current session.
#[derive(Default)]
pub(crate) struct TraceCtl {
    armed: AtomicBool,
    shared: Mutex<Option<Arc<TraceShared>>>,
}

impl TraceCtl {
    pub(crate) fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// The active session, if armed: the cheap disarmed path is the
    /// single relaxed load; the mutex is only touched when armed.
    pub(crate) fn session(&self) -> Option<Arc<TraceShared>> {
        if !self.armed() {
            return None;
        }
        self.shared.lock().clone()
    }

    pub(crate) fn arm(&self, capacity: usize) {
        *self.shared.lock() = Some(Arc::new(TraceShared::new(capacity)));
        self.armed.store(true, Ordering::Relaxed);
    }

    pub(crate) fn take(&self) -> Trace {
        self.armed.store(false, Ordering::Relaxed);
        let shared = self.shared.lock().take();
        match shared {
            Some(s) => {
                let (events, dropped) = s.collect();
                Trace { events, dropped }
            }
            None => Trace::default(),
        }
    }
}

/// A collected timeline: all retained events, timestamp-sorted, plus the
/// number of events lost to ring-buffer wrap-around.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// Retained events in timestamp order.
    pub events: Vec<TraceEvent>,
    /// Events overwritten by ring-buffer wrap-around before collection.
    pub dropped: u64,
}

impl Trace {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, in order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The highest worker index seen, if any chunk event was recorded.
    fn max_worker(&self) -> Option<u32> {
        self.events
            .iter()
            .filter(|e| e.worker != NO_WORKER)
            .map(|e| e.worker)
            .max()
    }

    /// Serializes the timeline as Chrome trace-event JSON (the format
    /// Perfetto and `chrome://tracing` load directly), tagged with
    /// [`TRACE_SCHEMA`]:
    ///
    /// * tid 0 (`regions`) carries region-level `B`/`E` span pairs;
    /// * tid `w + 1` (`worker-w`) carries chunk `B`/`E` span pairs and
    ///   fault instants for chunk `w`;
    /// * checkpoint polls are process-scoped instant events;
    /// * [`Executor::gauge`](crate::Executor::gauge) samples become `C`
    ///   counter events (one counter track per name).
    ///
    /// Timestamps are microseconds with nanosecond precision preserved
    /// in the fraction.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * self.events.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{TRACE_SCHEMA}\",\n"));
        out.push_str(&format!("  \"droppedEvents\": {},\n", self.dropped));
        out.push_str("  \"displayTimeUnit\": \"ms\",\n");
        out.push_str("  \"traceEvents\": [");
        let mut first = true;
        let mut emit = |line: &str| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(line);
        };

        // Metadata: process and per-track thread names.
        emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"args\": {\"name\": \"hcd\"}}");
        emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"args\": {\"name\": \"regions\"}}");
        if let Some(max_w) = self.max_worker() {
            for w in 0..=max_w {
                emit(&format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
                     \"args\": {{\"name\": \"worker-{w}\"}}}}",
                    w + 1
                ));
            }
        }

        for e in &self.events {
            let ts = micros(e.ts_ns);
            let name = escape_json(e.name);
            let line = match e.kind {
                EventKind::RegionEnter => format!(
                    "{{\"name\": \"{name}\", \"cat\": \"region\", \"ph\": \"B\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": 0}}"
                ),
                EventKind::RegionExit => format!(
                    "{{\"name\": \"{name}\", \"cat\": \"region\", \"ph\": \"E\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": 0, \
                     \"args\": {{\"failed\": {}}}}}",
                    e.value
                ),
                EventKind::ChunkBegin => format!(
                    "{{\"name\": \"{name}\", \"cat\": \"chunk\", \"ph\": \"B\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {}}}",
                    e.worker + 1
                ),
                EventKind::ChunkEnd => format!(
                    "{{\"name\": \"{name}\", \"cat\": \"chunk\", \"ph\": \"E\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {}}}",
                    e.worker + 1
                ),
                EventKind::Checkpoint => format!(
                    "{{\"name\": \"checkpoint\", \"cat\": \"poll\", \"ph\": \"i\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": 0, \"s\": \"p\"}}"
                ),
                EventKind::Fault => format!(
                    "{{\"name\": \"fault:{name}\", \"cat\": \"fault\", \"ph\": \"i\", \
                     \"ts\": {ts}, \"pid\": 1, \"tid\": {}, \"s\": \"t\"}}",
                    e.worker.wrapping_add(1)
                ),
                EventKind::Counter => format!(
                    "{{\"name\": \"{name}\", \"cat\": \"counter\", \"ph\": \"C\", \
                     \"ts\": {ts}, \"pid\": 1, \"args\": {{\"value\": {}}}}}",
                    e.value
                ),
            };
            emit(&line);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Debug-friendly flat listing (one `ts kind name worker value` line
    /// per event); not part of the stable schema.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>12} {:<12} {:<24} w={} v={}\n",
                e.ts_ns,
                e.kind.label(),
                e.name,
                if e.worker == NO_WORKER {
                    "-".to_string()
                } else {
                    e.worker.to_string()
                },
                e.value
            ));
        }
        out
    }
}

/// Formats nanoseconds as microseconds with three decimals (Chrome
/// trace-event `ts`/`dur` unit), without floating-point rounding.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Escapes a string for embedding in a JSON string literal.
/// Escapes `s` for embedding inside a JSON string literal. Shared by
/// every hand-rolled JSON emitter in the workspace (the workspace is
/// serde-free by design).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_keeps_newest_and_counts_drops() {
        let buf = ThreadBuf::new(16);
        for i in 0..40u64 {
            buf.push(TraceEvent {
                ts_ns: i,
                kind: EventKind::Checkpoint,
                name: "x",
                worker: 0,
                value: i,
            });
        }
        let (events, dropped) = buf.collect();
        assert_eq!(events.len(), 16);
        assert_eq!(dropped, 24);
        // The newest 16 survive, oldest first.
        assert_eq!(events.first().unwrap().value, 24);
        assert_eq!(events.last().unwrap().value, 39);
    }

    #[test]
    fn session_merges_multi_thread_buffers_in_time_order() {
        let shared = Arc::new(TraceShared::new(1024));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        s.record(EventKind::ChunkBegin, "demo", t, 0);
                        s.record(EventKind::ChunkEnd, "demo", t, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (events, dropped) = shared.collect();
        assert_eq!(events.len(), 400);
        assert_eq!(dropped, 0);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(shared.threads.lock().len(), 4);
    }

    #[test]
    fn ctl_arms_and_disarms() {
        let ctl = TraceCtl::default();
        assert!(!ctl.armed());
        assert!(ctl.session().is_none());
        assert!(ctl.take().is_empty());
        ctl.arm(64);
        assert!(ctl.armed());
        ctl.session()
            .unwrap()
            .record(EventKind::RegionEnter, "r", NO_WORKER, 0);
        let trace = ctl.take();
        assert!(!ctl.armed());
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].name, "r");
        // A second take is empty.
        assert!(ctl.take().is_empty());
    }

    #[test]
    fn rearming_starts_a_fresh_session() {
        let ctl = TraceCtl::default();
        ctl.arm(64);
        ctl.session()
            .unwrap()
            .record(EventKind::Checkpoint, "", NO_WORKER, 0);
        assert_eq!(ctl.take().events.len(), 1);
        ctl.arm(64);
        // The thread-local buffer from the first session must not leak
        // events into the second.
        ctl.session()
            .unwrap()
            .record(EventKind::Checkpoint, "", NO_WORKER, 0);
        assert_eq!(ctl.take().events.len(), 1);
    }

    #[test]
    fn chrome_json_has_tracks_spans_and_counters() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    ts_ns: 1_500,
                    kind: EventKind::RegionEnter,
                    name: "phcd.union",
                    worker: NO_WORKER,
                    value: 0,
                },
                TraceEvent {
                    ts_ns: 2_000,
                    kind: EventKind::ChunkBegin,
                    name: "phcd.union",
                    worker: 2,
                    value: 0,
                },
                TraceEvent {
                    ts_ns: 3_000,
                    kind: EventKind::ChunkEnd,
                    name: "phcd.union",
                    worker: 2,
                    value: 0,
                },
                TraceEvent {
                    ts_ns: 3_500,
                    kind: EventKind::Counter,
                    name: "pkc.frontier",
                    worker: NO_WORKER,
                    value: 77,
                },
                TraceEvent {
                    ts_ns: 4_000,
                    kind: EventKind::RegionExit,
                    name: "phcd.union",
                    worker: NO_WORKER,
                    value: 0,
                },
            ],
            dropped: 3,
        };
        let json = trace.to_chrome_json();
        assert!(json.contains("\"schema\": \"hcd-trace-v1\""));
        assert!(json.contains("\"droppedEvents\": 3"));
        assert!(json.contains("\"worker-2\""));
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"ph\": \"E\""));
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"value\": 77"));
        // ns → µs with the fraction preserved.
        assert!(json.contains("\"ts\": 1.500"));
        assert!(json.contains("\"ts\": 3.500"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain.name"), "plain.name");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn micros_preserves_nanos() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_234_567), "1234.567");
    }
}
