//! A global name interner for dynamically composed metric names.
//!
//! The whole observability stack — [`crate::metrics::Recorder`] counter
//! keys, [`crate::hist::HistRegistry`] histogram names, region names —
//! deliberately takes `&'static str` so the hot paths never hash or
//! clone strings. That is the right call for names known at compile
//! time, but multi-tenant serving composes names at runtime
//! (`serve.<tenant>.queries`). [`intern`] bridges the gap: each unique
//! string is leaked exactly once and every later request for the same
//! text returns the *same* `&'static str` (pointer-equal), so interned
//! names behave exactly like literals downstream — including the
//! pointer-first fast path in the histogram registry.
//!
//! The set only ever grows, by design: tenant names are a small,
//! bounded vocabulary (one leak per distinct name for the process
//! lifetime), not arbitrary user input. Interning the same name twice
//! costs one `BTreeSet` lookup and allocates nothing.

use std::collections::BTreeSet;

use parking_lot::Mutex;

static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Returns a `&'static str` with the same text as `name`, leaking at
/// most one allocation per distinct string for the process lifetime.
/// Repeated calls with equal text return the identical (pointer-equal)
/// reference, so interned names can be used anywhere the metrics layer
/// expects a `&'static str` literal.
pub fn intern(name: &str) -> &'static str {
    let mut set = INTERNED.lock();
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::intern;

    #[test]
    fn repeated_interning_returns_the_same_pointer() {
        let a = intern("serve.tenant-a.queries");
        let b = intern(&format!("serve.{}.queries", "tenant-a"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "interning must be pointer-stable");
    }

    #[test]
    fn distinct_names_stay_distinct() {
        let a = intern("serve.alpha.swaps");
        let b = intern("serve.beta.swaps");
        assert_ne!(a, b);
        assert!(!std::ptr::eq(a, b));
    }

    #[test]
    fn interned_names_work_as_counter_keys() {
        let exec = crate::Executor::sequential().with_metrics();
        let name = intern("serve.test-tenant.ticks");
        exec.add_counter(name, 3);
        exec.add_counter(intern("serve.test-tenant.ticks"), 2);
        let m = exec.take_metrics();
        assert_eq!(m.get_counter(name).unwrap().value, 5);
    }
}
