//! Static chunk partitioning shared by all executor modes.

use std::ops::Range;

/// Splits `0..n` into exactly `p` contiguous ranges whose lengths differ
/// by at most one (the first `n % p` chunks get the extra element) — the
/// OpenMP `schedule(static)` partition.
///
/// Trailing chunks may be empty when `p > n`.
pub fn split_even(n: usize, p: usize) -> Vec<Range<usize>> {
    assert!(p > 0, "chunk count must be positive");
    let base = n / p;
    let extra = n % p;
    let mut ranges = Vec::with_capacity(p);
    let mut start = 0usize;
    for w in 0..p {
        let len = base + usize::from(w < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Splits `0..n` (where `n = prefix.len() - 1`) into `p` contiguous
/// ranges of approximately equal *weight*, given the prefix-sum array of
/// per-item weights (`prefix[0] == 0`, `prefix[i]` = total weight of
/// items `0..i`).
///
/// This is the OpenMP-static analogue for skewed workloads (power-law
/// degree scans): boundaries are found by binary search at the weight
/// quantiles, so heavy items no longer pile into one chunk. Deterministic
/// and mode-independent, like [`split_even`].
pub fn split_weighted(prefix: &[u64], p: usize) -> Vec<Range<usize>> {
    assert!(p > 0, "chunk count must be positive");
    assert!(!prefix.is_empty(), "prefix must be non-empty");
    let n = prefix.len() - 1;
    // The prefix may be a window of a larger prefix array; weights are
    // relative to its first entry.
    let base = prefix[0];
    let total = prefix[n] - base;
    if total == 0 {
        return split_even(n, p);
    }
    let mut ranges = Vec::with_capacity(p);
    let mut start = 0usize;
    for w in 1..=p {
        // The quantile product can exceed u64 for prefixes near
        // u64::MAX / p (edge-weight totals on huge weighted graphs), so
        // compute it in u128; the quotient is ≤ total and fits back.
        let target = base + (total as u128 * w as u128 / p as u128) as u64;
        // First index whose prefix reaches the target, but never before
        // `start` (zero-weight runs).
        let mut end = prefix.partition_point(|&x| x < target).max(start);
        if w == p {
            end = n;
        }
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_once() {
        for n in [0usize, 1, 2, 7, 16, 17, 100] {
            for p in [1usize, 2, 3, 5, 8, 40] {
                let ranges = split_even(n, p);
                assert_eq!(ranges.len(), p);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        let ranges = split_even(17, 5);
        let lens: Vec<_> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 4, 3, 3, 3]);
        let max = lens.iter().max().unwrap();
        let min = lens.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn more_chunks_than_items() {
        let ranges = split_even(3, 8);
        let nonempty = ranges.iter().filter(|r| !r.is_empty()).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunks_panics() {
        split_even(5, 0);
    }

    fn prefix_of(weights: &[u64]) -> Vec<u64> {
        let mut p = vec![0u64];
        for &w in weights {
            p.push(p.last().unwrap() + w);
        }
        p
    }

    #[test]
    fn weighted_covers_exactly_once() {
        let weights = [5u64, 1, 1, 1, 100, 1, 1, 1, 5, 3];
        let prefix = prefix_of(&weights);
        for p in [1usize, 2, 3, 4, 8] {
            let ranges = split_weighted(&prefix, p);
            assert_eq!(ranges.len(), p);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, weights.len());
        }
    }

    #[test]
    fn weighted_isolates_heavy_item() {
        // One item carries almost all the weight; with 4 chunks it must
        // sit alone-ish, and no chunk exceeds ~total (trivially) while
        // light chunks stay small.
        let weights = [1u64, 1, 1, 96, 1, 1, 1, 1];
        let prefix = prefix_of(&weights);
        let ranges = split_weighted(&prefix, 4);
        let chunk_w = |r: &std::ops::Range<usize>| prefix[r.end] - prefix[r.start];
        let heavy = ranges.iter().find(|r| r.contains(&3)).unwrap();
        assert!(chunk_w(heavy) >= 96);
        // The other chunks together hold the 7 light items.
        let light: u64 = ranges
            .iter()
            .filter(|r| !r.contains(&3))
            .map(&chunk_w)
            .sum();
        assert_eq!(light + chunk_w(heavy), 103);
    }

    #[test]
    fn weighted_balances_uniform_weights_like_even() {
        let weights = vec![2u64; 20];
        let prefix = prefix_of(&weights);
        let ranges = split_weighted(&prefix, 5);
        for r in &ranges {
            assert_eq!(r.len(), 4);
        }
    }

    #[test]
    fn weighted_zero_total_falls_back_to_even() {
        let prefix = vec![0u64; 11];
        let ranges = split_weighted(&prefix, 3);
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 10);
    }

    /// Checks the split invariants: exactly `p` contiguous ranges tiling
    /// `0..n`, and no chunk heavier than a perfect share plus one item.
    fn assert_valid_split(prefix: &[u64], p: usize) {
        let n = prefix.len() - 1;
        let total = prefix[n] - prefix[0];
        let ranges = split_weighted(prefix, p);
        assert_eq!(ranges.len(), p);
        let mut next = 0usize;
        let mut max_item = 0u64;
        for i in 0..n {
            max_item = max_item.max(prefix[i + 1] - prefix[i]);
        }
        for r in &ranges {
            assert_eq!(r.start, next);
            next = r.end;
            let w = prefix[r.end] - prefix[r.start];
            assert!(
                w <= total / p as u64 + max_item,
                "chunk {r:?} weight {w} exceeds share {} + heaviest item {max_item}",
                total / p as u64
            );
        }
        assert_eq!(next, n);
    }

    #[test]
    fn weighted_total_near_u64_max_does_not_overflow() {
        // Before widening to u128, `total * w` overflowed here (panicking
        // in debug builds, mis-splitting in release).
        let weights = [u64::MAX / 2, u64::MAX / 2 - 7, 3];
        let prefix = prefix_of(&weights);
        for p in [2usize, 3, 5, 40] {
            assert_valid_split(&prefix, p);
        }
    }

    #[test]
    fn weighted_window_with_huge_base_does_not_overflow() {
        // A window into a larger prefix array whose absolute values sit
        // near u64::MAX but whose relative total is small.
        let base = u64::MAX - 100;
        let prefix = [base, base + 10, base + 20, base + 90, base + 100];
        assert_valid_split(&prefix, 3);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn weighted_split_valid_near_overflow(
                raw in prop::collection::vec(any::<u64>(), 1..24),
                p in 1usize..40,
            ) {
                // Scale weights so the total approaches u64::MAX without
                // the prefix sum itself overflowing; the old u64 quantile
                // product overflows for almost every case in this regime.
                let cap = u64::MAX / raw.len() as u64;
                let prefix = prefix_of(
                    &raw.iter().map(|&w| w % cap).collect::<Vec<_>>(),
                );
                assert_valid_split(&prefix, p);
            }

            #[test]
            fn weighted_split_valid_small(
                weights in prop::collection::vec(0u64..50, 1..40),
                p in 1usize..12,
            ) {
                assert_valid_split(&prefix_of(&weights), p);
            }
        }
    }
}
