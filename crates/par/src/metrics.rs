//! Region-level observability for the parallel runtime.
//!
//! Every parallel region opened through [`Executor::region`] carries a
//! static name (`"phcd.union"`, `"pbks.triangles"`, …). When metrics are
//! enabled on the executor, each region execution records its wall time,
//! per-chunk durations (min / max / sum, from which a load-imbalance
//! ratio follows), chunk counts, checkpoint polls, and any
//! cancellation / deadline / panic / injected-fault events into a
//! [`RunMetrics`] snapshot retrievable with
//! [`Executor::take_metrics`].
//!
//! Cost model: when disabled (the default), the only overhead per region
//! is one relaxed atomic load; per chunk, nothing. When enabled, each
//! chunk pays two `Instant::now()` calls and a handful of relaxed atomic
//! updates on stack-local accumulators; each region pays one short mutex
//! lock to fold its totals into the per-name slot. In simulated mode the
//! chunk clocks are shared with the `SimStats` accounting, so the two
//! views are always consistent: per region, the duration charged to
//! `SimStats::charged` *is* the `chunk_max` recorded here.
//!
//! [`Executor::region`]: crate::Executor::region
//! [`Executor::take_metrics`]: crate::Executor::take_metrics

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::trace::escape_json;
use crate::ParError;

/// Aggregated statistics for all executions of one named region.
///
/// A region name is typically executed many times (e.g. `phcd.union`
/// once per k-shell level); the counters here sum over all executions
/// ("invocations") observed since the last [`take_metrics`] call.
///
/// [`take_metrics`]: crate::Executor::take_metrics
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMetrics {
    /// The static region name passed to [`Executor::region`].
    ///
    /// [`Executor::region`]: crate::Executor::region
    pub name: &'static str,
    /// Number of times a region with this name was executed.
    pub invocations: u64,
    /// Total non-empty chunks executed across all invocations.
    pub chunks: u64,
    /// Wall time of the region bodies, summed over invocations
    /// (includes the scheduling barrier, so `wall_ns >= chunk_max_ns`
    /// in sequential/simulated modes and `>=` the critical path in
    /// rayon mode).
    pub wall_ns: u64,
    /// Sum of all chunk durations (the region's total work).
    pub chunk_sum_ns: u64,
    /// Sum over invocations of the *maximum* chunk duration — the
    /// critical path a perfectly synchronized parallel machine would
    /// pay. In simulated mode this equals the region's contribution to
    /// [`SimStats::charged`](crate::SimStats::charged).
    pub chunk_max_ns: u64,
    /// Sum over invocations of the *minimum* chunk duration.
    pub chunk_min_ns: u64,
    /// [`Executor::checkpoint`](crate::Executor::checkpoint) polls
    /// observed while this region was running.
    pub checkpoints: u64,
    /// Invocations that ended in [`ParError::Cancelled`].
    pub cancelled: u64,
    /// Invocations that ended in [`ParError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Invocations that ended in [`ParError::Panicked`].
    pub panicked: u64,
    /// Faults injected into chunks of this region by a
    /// [`FaultPlan`](crate::FaultPlan).
    pub faults_injected: u64,
}

impl RegionMetrics {
    /// A zeroed aggregate for `name` (useful for tests and synthetic
    /// snapshots; the recorder creates these internally).
    pub fn new(name: &'static str) -> Self {
        RegionMetrics {
            name,
            invocations: 0,
            chunks: 0,
            wall_ns: 0,
            chunk_sum_ns: 0,
            chunk_max_ns: 0,
            chunk_min_ns: 0,
            checkpoints: 0,
            cancelled: 0,
            deadline_exceeded: 0,
            panicked: 0,
            faults_injected: 0,
        }
    }

    /// Load-imbalance ratio: critical path over ideal (mean) chunk
    /// time, `chunk_max / (chunk_sum / chunks)`. `1.0` is a perfectly
    /// balanced region; `p` means one chunk did all the work of a
    /// `p`-chunk region. Returns `1.0` for degenerate (no-work) regions.
    pub fn imbalance(&self) -> f64 {
        if self.chunks == 0 || self.chunk_sum_ns == 0 {
            return 1.0;
        }
        let mean = self.chunk_sum_ns as f64 / self.chunks as f64;
        self.chunk_max_ns as f64 / (self.invocations as f64 * mean)
    }

    /// Total wall time as a [`Duration`].
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_ns)
    }

    /// Critical-path time (summed max chunk) as a [`Duration`].
    pub fn charged(&self) -> Duration {
        Duration::from_nanos(self.chunk_max_ns)
    }
}

/// One named algorithm counter (see [`Executor::add_counter`] and
/// [`Executor::gauge`]): a monotone sum (`kind == "sum"`, e.g. union-find
/// CAS retries) or a high-water mark (`kind == "max"`, e.g. peak peeling
/// frontier).
///
/// [`Executor::add_counter`]: crate::Executor::add_counter
/// [`Executor::gauge`]: crate::Executor::gauge
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    /// Counter name, dotted like region names (`"uf.cas_retries"`).
    pub name: &'static str,
    /// Accumulated value (sum or max depending on `kind`).
    pub value: u64,
    /// `"sum"` or `"max"`.
    pub kind: &'static str,
}

/// A snapshot of all region metrics recorded since the last
/// [`take_metrics`](crate::Executor::take_metrics) call, in first-seen
/// (execution) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Per-region aggregates, ordered by first execution.
    pub regions: Vec<RegionMetrics>,
    /// Named algorithm counters, ordered by first update.
    pub counters: Vec<CounterValue>,
    /// Latency-histogram snapshots (armed via
    /// [`arm_histograms`](crate::Executor::arm_histograms)), sorted by
    /// name.
    pub histograms: Vec<crate::hist::HistogramSnapshot>,
}

/// Version tag of the JSON document emitted by [`RunMetrics::to_json`].
pub const METRICS_SCHEMA: &str = "hcd-metrics-v1";

impl RunMetrics {
    /// The aggregate for `name`, if that region ever ran.
    pub fn get(&self, name: &str) -> Option<&RegionMetrics> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// The counter named `name`, if it was ever updated.
    pub fn get_counter(&self, name: &str) -> Option<&CounterValue> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// The histogram snapshot named `name`, if it recorded anything.
    pub fn get_histogram(&self, name: &str) -> Option<&crate::hist::HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether nothing was recorded (metrics disabled or no regions ran).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Sum of critical-path (max-chunk) time over all regions — in
    /// simulated mode identical to
    /// [`SimStats::charged`](crate::SimStats::charged).
    pub fn total_charged(&self) -> Duration {
        Duration::from_nanos(self.regions.iter().map(|r| r.chunk_max_ns).sum())
    }

    /// Sum of region wall time over all regions.
    pub fn total_wall(&self) -> Duration {
        Duration::from_nanos(self.regions.iter().map(|r| r.wall_ns).sum())
    }

    /// Serializes the snapshot as a stable, self-describing JSON
    /// document (schema [`METRICS_SCHEMA`]):
    ///
    /// ```json
    /// {
    ///   "schema": "hcd-metrics-v1",
    ///   "total_wall_ns": 123,
    ///   "total_charged_ns": 45,
    ///   "regions": [
    ///     {
    ///       "name": "phcd.union", "invocations": 3, "chunks": 12,
    ///       "wall_ns": 100, "chunk_sum_ns": 90, "chunk_max_ns": 30,
    ///       "chunk_min_ns": 10, "imbalance": 1.33, "checkpoints": 5,
    ///       "cancelled": 0, "deadline_exceeded": 0, "panicked": 0,
    ///       "faults_injected": 0
    ///     }
    ///   ],
    ///   "counters": [
    ///     {"name": "uf.cas_retries", "kind": "sum", "value": 17}
    ///   ],
    ///   "histograms": {
    ///     "version": 1, "sub_bits": 2,
    ///     "entries": [
    ///       {"name": "serve.query.core", "count": 12, "sum_ns": 3456,
    ///        "min_ns": 100, "max_ns": 900, "p50_ns": 224, "p90_ns": 544,
    ///        "p99_ns": 900, "p999_ns": 900, "buckets": [[30, 7], [38, 5]]}
    ///     ]
    ///   }
    /// }
    /// ```
    ///
    /// The `histograms` section is always present (empty `entries` when
    /// nothing was armed). Its `version` guards the entry layout and
    /// `sub_bits` names the bucket scheme so a reader can reconstruct
    /// bucket bounds from the sparse `[index, count]` pairs; the
    /// emitted `p*_ns` fields are precomputed from the same buckets and
    /// carry the documented ±12.5 % bucket-granularity error, while
    /// `count`/`sum_ns`/`min_ns`/`max_ns` are exact.
    ///
    /// Region and counter names are restricted to `[a-z0-9._-]` by
    /// convention, but any name is emitted faithfully with standard JSON
    /// string escaping, so the document stays well-formed regardless.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 256 * self.regions.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"total_wall_ns\": {},\n",
            self.total_wall().as_nanos()
        ));
        out.push_str(&format!(
            "  \"total_charged_ns\": {},\n",
            self.total_charged().as_nanos()
        ));
        out.push_str("  \"regions\": [");
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = escape_json(r.name);
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"invocations\": {}, \"chunks\": {}, \
                 \"wall_ns\": {}, \"chunk_sum_ns\": {}, \"chunk_max_ns\": {}, \
                 \"chunk_min_ns\": {}, \"imbalance\": {:.4}, \"checkpoints\": {}, \
                 \"cancelled\": {}, \"deadline_exceeded\": {}, \"panicked\": {}, \
                 \"faults_injected\": {}}}",
                name,
                r.invocations,
                r.chunks,
                r.wall_ns,
                r.chunk_sum_ns,
                r.chunk_max_ns,
                r.chunk_min_ns,
                r.imbalance(),
                r.checkpoints,
                r.cancelled,
                r.deadline_exceeded,
                r.panicked,
                r.faults_injected,
            ));
        }
        if !self.regions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"kind\": \"{}\", \"value\": {}}}",
                escape_json(c.name),
                c.kind,
                c.value,
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"histograms\": {\n");
        out.push_str("    \"version\": 1,\n");
        out.push_str(&format!("    \"sub_bits\": {},\n", crate::hist::SUB_BITS));
        out.push_str("    \"entries\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(idx, c)| format!("[{idx}, {c}]"))
                .collect();
            out.push_str(&format!(
                "\n      {{\"name\": \"{}\", \"count\": {}, \"sum_ns\": {},                  \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {},                  \"p99_ns\": {}, \"p999_ns\": {}, \"buckets\": [{}]}}",
                escape_json(h.name),
                h.count,
                h.sum_ns,
                h.min_ns,
                h.max_ns,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.quantile(0.999),
                buckets.join(", "),
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }\n}\n");
        out
    }
}

/// Stack-local per-chunk accumulators for one region execution. Chunks
/// update these with relaxed atomics (they race only on `fetch_*`
/// operations, which are order-insensitive); the region driver folds
/// them into the recorder once the barrier completes.
#[derive(Debug)]
pub(crate) struct ChunkStats {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    min_ns: AtomicU64,
    faults: AtomicU64,
}

impl ChunkStats {
    pub(crate) fn new() -> Self {
        ChunkStats {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            faults: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
    }

    pub(crate) fn note_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn chunks(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub(crate) fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed))
    }

    pub(crate) fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    fn min_ns_or_zero(&self) -> u64 {
        match self.min_ns.load(Ordering::Relaxed) {
            u64::MAX => 0,
            v => v,
        }
    }

    fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }
}

/// The per-executor recorder: an enable flag, a global checkpoint-poll
/// counter (attributed to the currently running region — regions of one
/// executor never overlap), and per-name slots folded under a mutex at
/// region end.
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    enabled: AtomicBool,
    checkpoint_polls: AtomicUsize,
    slots: Mutex<Vec<RegionMetrics>>,
    counters: Mutex<Vec<CounterValue>>,
}

impl Recorder {
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Called from [`Executor::checkpoint`](crate::Executor::checkpoint);
    /// a single relaxed increment when enabled, nothing otherwise.
    pub(crate) fn note_checkpoint(&self) {
        if self.enabled() {
            self.checkpoint_polls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the global checkpoint counter, taken before and after
    /// a region to attribute the delta to it.
    pub(crate) fn checkpoint_mark(&self) -> usize {
        self.checkpoint_polls.load(Ordering::Relaxed)
    }

    /// Folds one region execution into its named slot.
    pub(crate) fn record_region(
        &self,
        name: &'static str,
        wall: Duration,
        chunks: &ChunkStats,
        checkpoint_delta: usize,
        outcome: Option<&ParError>,
    ) {
        let mut slots = self.slots.lock();
        let slot = match slots.iter_mut().find(|s| s.name == name) {
            Some(s) => s,
            None => {
                slots.push(RegionMetrics::new(name));
                slots.last_mut().expect("just pushed")
            }
        };
        slot.invocations += 1;
        slot.chunks += chunks.chunks();
        slot.wall_ns += u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        slot.chunk_sum_ns += u64::try_from(chunks.sum().as_nanos()).unwrap_or(u64::MAX);
        slot.chunk_max_ns += u64::try_from(chunks.max().as_nanos()).unwrap_or(u64::MAX);
        slot.chunk_min_ns += chunks.min_ns_or_zero();
        slot.checkpoints += checkpoint_delta as u64;
        slot.faults_injected += chunks.faults_injected();
        match outcome {
            Some(ParError::Cancelled) => slot.cancelled += 1,
            Some(ParError::DeadlineExceeded) => slot.deadline_exceeded += 1,
            Some(ParError::Panicked { .. }) => slot.panicked += 1,
            None => {}
        }
    }

    /// Folds a delta into the named counter slot. `kind` must be
    /// `"sum"` (add) or `"max"` (high-water mark); a name keeps the kind
    /// of its first update.
    pub(crate) fn update_counter(&self, name: &'static str, value: u64, kind: &'static str) {
        let mut counters = self.counters.lock();
        match counters.iter_mut().find(|c| c.name == name) {
            Some(c) => {
                if c.kind == "max" {
                    c.value = c.value.max(value);
                } else {
                    c.value = c.value.saturating_add(value);
                }
            }
            None => counters.push(CounterValue { name, value, kind }),
        }
    }

    /// Returns and resets the recorded snapshot (the enable flag is
    /// left untouched so a long-lived executor keeps recording).
    pub(crate) fn take(&self) -> RunMetrics {
        self.checkpoint_polls.store(0, Ordering::Relaxed);
        RunMetrics {
            regions: std::mem::take(&mut *self.slots.lock()),
            counters: std::mem::take(&mut *self.counters.lock()),
            histograms: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(name: &'static str) -> RegionMetrics {
        RegionMetrics {
            invocations: 2,
            chunks: 8,
            wall_ns: 1_000,
            chunk_sum_ns: 800,
            chunk_max_ns: 300,
            chunk_min_ns: 50,
            checkpoints: 4,
            ..RegionMetrics::new(name)
        }
    }

    #[test]
    fn imbalance_ratio() {
        let mut r = region("x");
        // mean chunk = 100ns, per-invocation max = 150ns => 1.5.
        r.invocations = 2;
        r.chunks = 8;
        r.chunk_sum_ns = 800;
        r.chunk_max_ns = 300;
        assert!((r.imbalance() - 1.5).abs() < 1e-9);
        // Degenerate regions report perfectly balanced.
        let empty = RegionMetrics::new("e");
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_edge_cases() {
        // Zero chunks recorded (region never ran a chunk): balanced by
        // definition, not NaN from 0/0.
        let mut r = RegionMetrics::new("z");
        r.invocations = 3;
        assert_eq!(r.imbalance(), 1.0);

        // Chunks ran but all completed in under a nanosecond of
        // accumulated time: same degenerate guard.
        r.chunks = 4;
        r.chunk_sum_ns = 0;
        assert_eq!(r.imbalance(), 1.0);

        // A single chunk IS the critical path and the mean: exactly 1.0.
        let mut single = RegionMetrics::new("s");
        single.invocations = 1;
        single.chunks = 1;
        single.chunk_sum_ns = 777;
        single.chunk_max_ns = 777;
        assert!((single.imbalance() - 1.0).abs() < 1e-12);

        // All chunks equal: max == mean, perfectly balanced regardless
        // of chunk count.
        let mut even = RegionMetrics::new("v");
        even.invocations = 1;
        even.chunks = 10;
        even.chunk_sum_ns = 1_000;
        even.chunk_max_ns = 100;
        assert!((even.imbalance() - 1.0).abs() < 1e-12);

        // Worst case: one chunk did everything in a 4-chunk region.
        let mut skew = RegionMetrics::new("w");
        skew.invocations = 1;
        skew.chunks = 4;
        skew.chunk_sum_ns = 400;
        skew.chunk_max_ns = 400;
        assert!((skew.imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn json_shape_is_stable() {
        let rm = RunMetrics {
            regions: vec![region("phcd.union"), region("pbks.triangles")],
            counters: vec![CounterValue {
                name: "uf.cas_retries",
                value: 17,
                kind: "sum",
            }],
            ..RunMetrics::default()
        };
        let json = rm.to_json();
        assert!(json.contains("\"schema\": \"hcd-metrics-v1\""));
        assert!(json.contains("\"histograms\": {"));
        assert!(json.contains("\"sub_bits\": 2"));
        assert!(json.contains("\"name\": \"phcd.union\""));
        assert!(json.contains("\"chunk_max_ns\": 300"));
        assert!(json.contains("\"imbalance\": 1.5000"));
        assert!(json.contains("\"total_charged_ns\": 600"));
        assert!(json.contains("\"name\": \"uf.cas_retries\", \"kind\": \"sum\", \"value\": 17"));
        // Balanced brackets / braces (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_names() {
        // Names outside the [a-z0-9._-] convention must survive as valid
        // JSON string literals, not corrupt the document.
        let rm = RunMetrics {
            regions: vec![RegionMetrics::new("we\"ird\\na\nme")],
            counters: vec![CounterValue {
                name: "c\"tr",
                value: 1,
                kind: "sum",
            }],
            ..RunMetrics::default()
        };
        let json = rm.to_json();
        assert!(json.contains(r#""we\"ird\\na\nme""#), "{json}");
        assert!(json.contains(r#""c\"tr""#), "{json}");
        // Every quote in the document is either structural or escaped:
        // the name fields parse back out intact.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_metrics_json() {
        let json = RunMetrics::default().to_json();
        assert!(json.contains("\"regions\": []"));
        assert!(json.contains("\"total_wall_ns\": 0"));
    }

    #[test]
    fn recorder_accumulates_and_resets() {
        let rec = Recorder::default();
        rec.set_enabled(true);
        let cs = ChunkStats::new();
        cs.record(Duration::from_nanos(100));
        cs.record(Duration::from_nanos(300));
        cs.note_fault();
        rec.record_region("a", Duration::from_nanos(500), &cs, 3, None);
        rec.record_region(
            "a",
            Duration::from_nanos(100),
            &ChunkStats::new(),
            0,
            Some(&ParError::Cancelled),
        );
        let m = rec.take();
        assert_eq!(m.regions.len(), 1);
        let a = m.get("a").unwrap();
        assert_eq!(a.invocations, 2);
        assert_eq!(a.chunks, 2);
        assert_eq!(a.chunk_sum_ns, 400);
        assert_eq!(a.chunk_max_ns, 300);
        assert_eq!(a.chunk_min_ns, 100);
        assert_eq!(a.checkpoints, 3);
        assert_eq!(a.cancelled, 1);
        assert_eq!(a.faults_injected, 1);
        // Reset:
        assert!(rec.take().is_empty());
    }

    #[test]
    fn counters_sum_and_max_fold_correctly() {
        let rec = Recorder::default();
        rec.update_counter("uf.find_hops", 10, "sum");
        rec.update_counter("uf.find_hops", 5, "sum");
        rec.update_counter("pkc.frontier", 100, "max");
        rec.update_counter("pkc.frontier", 40, "max");
        rec.update_counter("pkc.frontier", 250, "max");
        let m = rec.take();
        assert_eq!(m.get_counter("uf.find_hops").unwrap().value, 15);
        let frontier = m.get_counter("pkc.frontier").unwrap();
        assert_eq!(frontier.value, 250);
        assert_eq!(frontier.kind, "max");
        assert!(rec.take().is_empty());
    }

    #[test]
    fn chunk_stats_min_of_no_chunks_is_zero() {
        let cs = ChunkStats::new();
        assert_eq!(cs.min_ns_or_zero(), 0);
        assert_eq!(cs.chunks(), 0);
        assert_eq!(cs.max(), Duration::ZERO);
    }
}
