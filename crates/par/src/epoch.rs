//! Epoch-swapped snapshot publication.
//!
//! The serving layer (`hcd-serve`) keeps an immutable snapshot of the
//! whole index behind an [`EpochCell`]: readers load an `Arc` to the
//! current snapshot and keep using it for as long as they like, while a
//! single writer builds the next snapshot *outside* any lock and then
//! publishes it with one pointer swap. Every published snapshot is
//! numbered by a monotonically increasing **generation** (epoch), so a
//! response can carry the exact index state it was answered from and a
//! validator can check that no reader ever observed a torn or retracted
//! state.
//!
//! Readers never wait on index rebuilds: the read-side critical section
//! is a single `Arc` clone (no allocation, no I/O), and the write-side
//! critical section is a single pointer store — the expensive work
//! (batch application, PHCD reconstruction) happens strictly before
//! [`EpochCell::publish`] is called.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing generation counter.
///
/// Generation 0 is "the initial state"; every successful publication
/// advances the counter by one. The counter is updated with
/// release semantics and read with acquire semantics, so a reader that
/// observes generation `g` also observes every write that led to it.
#[derive(Debug, Default)]
pub struct EpochCounter(AtomicU64);

impl EpochCounter {
    /// A counter at generation 0.
    pub fn new() -> Self {
        EpochCounter(AtomicU64::new(0))
    }

    /// A counter resumed at an arbitrary generation (crash recovery
    /// republishes state that was already past generation 0).
    pub fn starting_at(generation: u64) -> Self {
        EpochCounter(AtomicU64::new(generation))
    }

    /// The current generation.
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances to the next generation and returns it.
    pub fn advance(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// A swap cell publishing immutable snapshots to concurrent readers.
///
/// [`EpochCell::load`] hands out an `Arc` clone of the current value;
/// [`EpochCell::publish`] atomically replaces it and advances the
/// epoch. Old snapshots stay alive for exactly as long as some reader
/// still holds their `Arc` — there is no reclamation race and no torn
/// read by construction, because a snapshot is never mutated after
/// publication.
///
/// The value type decides what a "snapshot" is; the cell only promises
/// the swap discipline. Readers never block on a writer's *rebuild*
/// (which happens before `publish`); the lock below is held only for
/// the pointer clone/store itself.
pub struct EpochCell<T> {
    slot: RwLock<Arc<T>>,
    epoch: EpochCounter,
}

impl<T> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EpochCell(generation={})", self.generation())
    }
}

impl<T> EpochCell<T> {
    /// A cell holding `initial` at generation 0.
    pub fn new(initial: T) -> Self {
        EpochCell {
            slot: RwLock::new(Arc::new(initial)),
            epoch: EpochCounter::new(),
        }
    }

    /// A cell holding `initial` at an arbitrary starting generation, so
    /// recovered state keeps its pre-crash epoch numbering and readers
    /// never observe the generation go backwards across a restart.
    pub fn new_at(initial: T, generation: u64) -> Self {
        EpochCell {
            slot: RwLock::new(Arc::new(initial)),
            epoch: EpochCounter::starting_at(generation),
        }
    }

    /// The current generation (number of publications so far).
    pub fn generation(&self) -> u64 {
        self.epoch.current()
    }

    /// Loads the currently published snapshot. The returned `Arc` stays
    /// valid (and immutable) regardless of later publications.
    pub fn load(&self) -> Arc<T> {
        self.slot.read().clone()
    }

    /// Publishes `next` as the new current snapshot and returns the new
    /// generation. The swap itself is a single pointer store; callers
    /// finish all expensive construction before calling this.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let mut slot = self.slot.write();
        *slot = next;
        // Advance inside the write lock so generation order equals
        // publication order even with (hypothetical) multiple writers.
        self.epoch.advance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn counter_is_monotone() {
        let c = EpochCounter::new();
        assert_eq!(c.current(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.current(), 2);
    }

    #[test]
    fn load_returns_latest_publication() {
        let cell = EpochCell::new(10u32);
        assert_eq!(*cell.load(), 10);
        assert_eq!(cell.generation(), 0);
        assert_eq!(cell.publish(Arc::new(20)), 1);
        assert_eq!(*cell.load(), 20);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn cell_can_resume_at_a_recovered_generation() {
        let cell = EpochCell::new_at(7u32, 41);
        assert_eq!(cell.generation(), 41);
        assert_eq!(*cell.load(), 7);
        assert_eq!(cell.publish(Arc::new(8)), 42);
        assert_eq!(cell.generation(), 42);
    }

    #[test]
    fn old_snapshots_survive_publication() {
        let cell = EpochCell::new(String::from("old"));
        let held = cell.load();
        cell.publish(Arc::new(String::from("new")));
        assert_eq!(*held, "old");
        assert_eq!(*cell.load(), "new");
    }

    #[test]
    fn concurrent_readers_see_monotone_generations() {
        // Snapshots carry their own generation; readers must never see
        // the value go backwards, and every value they see must be one
        // the writer actually published.
        let cell = Arc::new(EpochCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let progress: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let readers: Vec<_> = (0..4)
            .map(|i| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let progress = Arc::clone(&progress);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut loads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "generation went backwards: {v} < {last}");
                        last = v;
                        loads += 1;
                        progress[i].store(loads, Ordering::Relaxed);
                    }
                    loads
                })
            })
            .collect();
        for g in 1..=100u64 {
            let gen = cell.publish(Arc::new(g));
            assert_eq!(gen, g);
        }
        // On a single core the writer can finish all 100 publishes before
        // a reader is ever scheduled; wait for each to make progress so
        // the loads>0 assertion is about correctness, not timing.
        for p in progress.iter() {
            while p.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader made no progress");
        }
        assert_eq!(*cell.load(), 100);
        assert_eq!(cell.generation(), 100);
    }
}
