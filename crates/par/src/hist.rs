//! Lock-free log2-bucketed latency histograms.
//!
//! The serving layer needs latency *distributions* — p50/p99/p999 —
//! not just the wall-time sums the region recorder keeps. This module
//! provides a fixed-footprint histogram tuned for that job:
//!
//! - **Bucketing.** Values (nanoseconds) map to power-of-two groups
//!   with [`SUB_BUCKETS`] linear sub-buckets per group (HdrHistogram
//!   style). With `SUB_BITS = 2` a bucket spans at most 1/4 of its
//!   lower bound, so any reported quantile is within **±12.5 %** of a
//!   true sample value (half the bucket width relative to the bucket
//!   floor); `count`, `sum`, `min` and `max` are exact. The full
//!   `u64` nanosecond range fits in [`NUM_BUCKETS`] (= 252) buckets.
//! - **Recording.** Each histogram holds [`NUM_SHARDS`] shards of
//!   relaxed atomics; a thread picks its shard from a thread-local id,
//!   so concurrent recorders on different threads almost never touch
//!   the same cache lines and never lose an increment. Recording is
//!   wait-free: two relaxed `fetch_add`s plus min/max CAS loops.
//! - **Arming.** A disarmed registry costs exactly one relaxed atomic
//!   load per call site ([`HistRegistry::observe`] returns
//!   immediately), the same discipline as the metrics and trace
//!   layers.
//! - **Merging.** Snapshots from shards (or from separate processes)
//!   merge by adding per-bucket counts; quantiles extracted from a
//!   merged snapshot equal quantiles of the combined value stream up
//!   to the bucket granularity above, because a value's bucket index
//!   is a pure function of the value.
//!
//! Snapshots travel inside [`crate::metrics::RunMetrics`] and are
//! emitted as the `histograms` section of the `hcd-metrics-v1` JSON
//! document (see `metrics.rs`).

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Linear-refinement bits per power-of-two group: each group splits
/// into `2^SUB_BITS` equal sub-buckets.
pub const SUB_BITS: u32 = 2;
/// Sub-buckets per power-of-two group (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total buckets covering all of `u64`: values `0..SUB_BUCKETS` get an
/// exact bucket each; every group `[2^h, 2^(h+1))` for
/// `h in SUB_BITS..64` contributes `SUB_BUCKETS` refined buckets.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;
/// Shards per histogram. Threads hash onto shards by a process-wide
/// thread counter, so up to this many recorders proceed with zero
/// cache-line contention.
pub const NUM_SHARDS: usize = 8;
/// Maximum distinct histogram names per registry. Sized generously
/// above the serve-path boundary count; registration past this limit
/// is silently dropped (recording becomes a no-op for that name).
pub const MAX_HISTOGRAMS: usize = 32;

/// Maps a nanosecond value to its bucket index. Pure, monotone
/// (non-decreasing), total over `u64`.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        return ns as usize;
    }
    let h = 63 - ns.leading_zeros(); // ns >= SUB_BUCKETS so h >= SUB_BITS
    let group = (h - SUB_BITS + 1) as usize;
    let sub = ((ns >> (h - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    group * SUB_BUCKETS + sub
}

/// Inclusive lower bound of bucket `i` (the smallest value that maps
/// to it).
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let group = i / SUB_BUCKETS;
    let sub = (i % SUB_BUCKETS) as u64;
    let h = group as u32 + SUB_BITS - 1;
    (SUB_BUCKETS as u64 + sub) << (h - SUB_BITS)
}

/// Width of bucket `i` in nanoseconds (number of distinct values it
/// absorbs).
#[inline]
pub fn bucket_width(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return 1;
    }
    let h = (i / SUB_BUCKETS) as u32 + SUB_BITS - 1;
    1u64 << (h - SUB_BITS)
}

/// Representative (midpoint) value of bucket `i`, used when a quantile
/// lands inside it. Strictly increasing in `i`.
#[inline]
pub fn bucket_mid(i: usize) -> u64 {
    bucket_lo(i) + (bucket_width(i) - 1) / 2
}

// --- shards ------------------------------------------------------------

struct Shard {
    buckets: Vec<AtomicU64>, // NUM_BUCKETS long
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64, // u64::MAX when empty
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Drains this shard into `snap` and resets it.
    fn drain_into(&self, snap: &mut HistogramSnapshot) {
        let count = self.count.swap(0, Ordering::Relaxed);
        let sum = self.sum.swap(0, Ordering::Relaxed);
        let min = self.min.swap(u64::MAX, Ordering::Relaxed);
        let max = self.max.swap(0, Ordering::Relaxed);
        if count == 0 {
            return;
        }
        snap.count += count;
        snap.sum_ns += sum;
        snap.min_ns = snap.min_ns.min(min);
        snap.max_ns = snap.max_ns.max(max);
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.swap(0, Ordering::Relaxed);
            if c > 0 {
                snap.add_bucket(i, c);
            }
        }
    }

    /// Adds this shard's contents to `snap` without resetting.
    fn peek_into(&self, snap: &mut HistogramSnapshot) {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        snap.count += count;
        snap.sum_ns += self.sum.load(Ordering::Relaxed);
        snap.min_ns = snap.min_ns.min(self.min.load(Ordering::Relaxed));
        snap.max_ns = snap.max_ns.max(self.max.load(Ordering::Relaxed));
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                snap.add_bucket(i, c);
            }
        }
    }
}

/// A sharded lock-free latency histogram (one named series).
pub struct LatencyHistogram {
    shards: Vec<Shard>, // NUM_SHARDS long
}

impl LatencyHistogram {
    fn new() -> Self {
        LatencyHistogram {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one nanosecond sample on the calling thread's shard.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.shards[shard_id()].record(ns);
    }

    fn drain(&self, name: &'static str) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty(name);
        for s in &self.shards {
            s.drain_into(&mut snap);
        }
        snap
    }

    fn peek(&self, name: &'static str) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty(name);
        for s in &self.shards {
            s.peek_into(&mut snap);
        }
        snap
    }
}

/// Returns this thread's shard index. Assigned round-robin from a
/// process-wide counter on first use, so a fixed pool of worker
/// threads spreads evenly over the shards.
#[inline]
fn shard_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
    }
    SHARD.with(|s| *s)
}

// --- snapshots ---------------------------------------------------------

/// A point-in-time, merge-stable copy of one histogram. Buckets are
/// sparse `(index, count)` pairs sorted by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Dotted series name (`serve.query.core`, `serve.wal.fsync`, …).
    pub name: &'static str,
    /// Exact number of recorded samples.
    pub count: u64,
    /// Exact sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Exact smallest sample (0 when empty).
    pub min_ns: u64,
    /// Exact largest sample (0 when empty).
    pub max_ns: u64,
    /// Sparse non-empty buckets as `(bucket_index, count)`, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    fn empty(name: &'static str) -> Self {
        HistogramSnapshot {
            name,
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: Vec::new(),
        }
    }

    fn add_bucket(&mut self, index: usize, count: u64) {
        match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += count,
            Err(pos) => self.buckets.insert(pos, (index, count)),
        }
    }

    /// Normalises the empty-histogram sentinel (`min = u64::MAX`) away.
    fn finish(mut self) -> Self {
        if self.count == 0 {
            self.min_ns = 0;
        }
        self
    }

    /// Extracts the `q`-quantile (`q in [0, 1]`) as a nanosecond value.
    ///
    /// The returned value is the representative (midpoint) of the
    /// bucket holding the sample of rank `ceil(q * count)`, clamped to
    /// the exact observed `[min, max]` range — so it is monotone
    /// non-decreasing in `q`, exact at the extremes, and within the
    /// documented ±12.5 % bucket granularity everywhere else. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Mean sample in nanoseconds (exact, since `sum` and `count`
    /// are). Returns 0 for an empty histogram.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self`. Because bucket indices are a pure
    /// function of the sample value, quantiles of the merged snapshot
    /// equal quantiles of the concatenated sample streams (up to
    /// bucket granularity); `count`/`sum`/`min`/`max` merge exactly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
            self.max_ns = other.max_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for &(i, c) in &other.buckets {
            self.add_bucket(i, c);
        }
    }
}

// --- registry ----------------------------------------------------------

struct HistEntry {
    name: &'static str,
    hist: LatencyHistogram,
}

/// A fixed-capacity, lock-free-on-the-hot-path registry of named
/// histograms. Disarmed, [`HistRegistry::observe`] is one relaxed
/// load. Armed, a lookup is a linear scan of published entries
/// (bounded by [`MAX_HISTOGRAMS`]); first-time registration of a name
/// takes a mutex, after which the entry is immutable and reads are
/// lock-free.
pub struct HistRegistry {
    armed: AtomicBool,
    len: AtomicUsize,
    slots: Vec<AtomicPtr<HistEntry>>, // MAX_HISTOGRAMS long
    reg: Mutex<()>,
}

impl Default for HistRegistry {
    fn default() -> Self {
        HistRegistry {
            armed: AtomicBool::new(false),
            len: AtomicUsize::new(0),
            slots: (0..MAX_HISTOGRAMS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            reg: Mutex::new(()),
        }
    }
}

impl Drop for HistRegistry {
    fn drop(&mut self) {
        for slot in &self.slots {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: entries are only ever created by `entry()`
                // via Box::into_raw and never freed elsewhere.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl HistRegistry {
    /// Arms or disarms recording. Disarmed (the default), every
    /// [`HistRegistry::observe`] returns after one relaxed load.
    pub fn arm(&self, on: bool) {
        self.armed.store(on, Ordering::Relaxed);
    }

    /// Whether recording is armed.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Records `ns` into the histogram named `name`, registering it on
    /// first use. No-op when disarmed or past [`MAX_HISTOGRAMS`]
    /// distinct names.
    #[inline]
    pub fn observe(&self, name: &'static str, ns: u64) {
        if !self.armed.load(Ordering::Relaxed) {
            return;
        }
        if let Some(e) = self.entry(name) {
            e.hist.record(ns);
        }
    }

    fn find(&self, name: &'static str) -> Option<&HistEntry> {
        let len = self.len.load(Ordering::Acquire);
        for slot in &self.slots[..len] {
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            // Safety: a non-null published pointer is valid until the
            // registry drops, and &self keeps the registry alive.
            let e = unsafe { &*p };
            // Compare pointer first: names are &'static str interned by
            // the compiler, so call sites reusing the same literal hit
            // the cheap path.
            if std::ptr::eq(e.name, name) || e.name == name {
                return Some(e);
            }
        }
        None
    }

    fn entry(&self, name: &'static str) -> Option<&HistEntry> {
        if let Some(e) = self.find(name) {
            return Some(e);
        }
        let _guard = self.reg.lock();
        // Re-check under the lock: another thread may have registered.
        if let Some(e) = self.find(name) {
            return Some(e);
        }
        let len = self.len.load(Ordering::Relaxed);
        if len >= MAX_HISTOGRAMS {
            return None;
        }
        let p = Box::into_raw(Box::new(HistEntry {
            name,
            hist: LatencyHistogram::new(),
        }));
        self.slots[len].store(p, Ordering::Release);
        self.len.store(len + 1, Ordering::Release);
        // Safety: just published; lives until the registry drops.
        Some(unsafe { &*p })
    }

    /// Drains every histogram into snapshots (resetting the live
    /// counters but keeping registrations), skipping series that
    /// recorded nothing since the last drain. Sorted by name for
    /// emission stability.
    pub fn drain(&self) -> Vec<HistogramSnapshot> {
        self.collect(true)
    }

    /// Copies every histogram into snapshots without resetting —
    /// the in-flight view behind `serve-bench --stats-interval`.
    pub fn snapshot(&self) -> Vec<HistogramSnapshot> {
        self.collect(false)
    }

    fn collect(&self, reset: bool) -> Vec<HistogramSnapshot> {
        let len = self.len.load(Ordering::Acquire);
        let mut out = Vec::new();
        for slot in &self.slots[..len] {
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            // Safety: as in `find`.
            let e = unsafe { &*p };
            let snap = if reset {
                e.hist.drain(e.name)
            } else {
                e.hist.peek(e.name)
            };
            if snap.count > 0 {
                out.push(snap.finish());
            }
        }
        out.sort_by(|a, b| a.name.cmp(b.name));
        out
    }
}

// --- timing handle -----------------------------------------------------

/// A drop-to-record latency timer: measures from creation to drop and
/// records into the registry. When the registry is disarmed the
/// constructor takes no clock reading and drop is free.
pub struct LatencyTimer<'a> {
    reg: &'a HistRegistry,
    name: &'static str,
    start: Option<Instant>,
}

impl<'a> LatencyTimer<'a> {
    /// Starts a timer for `name` (reads the clock only when armed).
    pub fn start(reg: &'a HistRegistry, name: &'static str) -> Self {
        let start = reg.armed().then(Instant::now);
        LatencyTimer { reg, name, start }
    }

    /// Discards the timer without recording.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for LatencyTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.reg.observe(self.name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_round_trips_bounds() {
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            let hi = lo + (bucket_width(i) - 1);
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            let mid = bucket_mid(i);
            assert_eq!(bucket_index(mid), i, "mid of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(bucket_lo(i + 1), hi + 1, "buckets {i},{} tile", i + 1);
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Half the bucket width relative to the bucket floor is the
        // worst-case quantile error; the scheme promises <= 12.5 %.
        for i in SUB_BUCKETS..NUM_BUCKETS {
            let lo = bucket_lo(i) as f64;
            let half = bucket_width(i) as f64 / 2.0;
            assert!(half / lo <= 0.125 + 1e-12, "bucket {i}: {}", half / lo);
        }
    }

    #[test]
    fn quantiles_hit_exact_extremes() {
        let reg = HistRegistry::default();
        reg.arm(true);
        for v in [17u64, 1_000, 999_999, 123_456_789] {
            reg.observe("t", v);
        }
        let snaps = reg.drain();
        assert_eq!(snaps.len(), 1);
        let s = &snaps[0];
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_ns, 17 + 1_000 + 999_999 + 123_456_789);
        assert_eq!(s.min_ns, 17);
        assert_eq!(s.max_ns, 123_456_789);
        assert_eq!(s.quantile(0.0), 17, "q=0 clamps to min");
        assert_eq!(s.quantile(1.0), 123_456_789, "q=1 clamps to max");
    }

    #[test]
    fn quantile_is_within_documented_error() {
        let reg = HistRegistry::default();
        reg.arm(true);
        let mut values: Vec<u64> = (0..1000).map(|i| 1000 + i * 977).collect();
        for &v in &values {
            reg.observe("t", v);
        }
        values.sort_unstable();
        let s = &reg.drain()[0];
        for q in [0.1, 0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1] as f64;
            let got = s.quantile(q) as f64;
            assert!(
                (got - exact).abs() / exact <= 0.125,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn drain_resets_but_keeps_registration() {
        let reg = HistRegistry::default();
        reg.arm(true);
        reg.observe("a", 5);
        assert_eq!(reg.drain().len(), 1);
        assert!(reg.drain().is_empty(), "second drain sees nothing");
        reg.observe("a", 7);
        let snaps = reg.drain();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].count, 1, "pre-drain samples are gone");
    }

    #[test]
    fn snapshot_peeks_without_reset() {
        let reg = HistRegistry::default();
        reg.arm(true);
        reg.observe("a", 5);
        assert_eq!(reg.snapshot()[0].count, 1);
        assert_eq!(reg.snapshot()[0].count, 1, "peek does not reset");
        assert_eq!(reg.drain()[0].count, 1);
    }

    #[test]
    fn disarmed_records_nothing() {
        let reg = HistRegistry::default();
        reg.observe("a", 5);
        {
            let _t = LatencyTimer::start(&reg, "b");
        }
        reg.arm(true);
        assert!(reg.drain().is_empty());
        reg.arm(false);
        reg.observe("a", 5);
        reg.arm(true);
        assert!(reg.drain().is_empty(), "mid-run disarm drops samples");
    }

    #[test]
    fn timer_records_when_armed() {
        let reg = HistRegistry::default();
        reg.arm(true);
        {
            let _t = LatencyTimer::start(&reg, "timed");
        }
        let snaps = reg.drain();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].name, "timed");
        assert_eq!(snaps[0].count, 1);
    }

    #[test]
    fn cancelled_timer_records_nothing() {
        let reg = HistRegistry::default();
        reg.arm(true);
        LatencyTimer::start(&reg, "t").cancel();
        assert!(reg.drain().is_empty());
    }

    #[test]
    fn registry_caps_distinct_names() {
        static NAMES: [&str; MAX_HISTOGRAMS + 2] = {
            // Distinct static names without a proc macro: index into a
            // fixed literal table.
            [
                "h00", "h01", "h02", "h03", "h04", "h05", "h06", "h07", "h08", "h09", "h10", "h11",
                "h12", "h13", "h14", "h15", "h16", "h17", "h18", "h19", "h20", "h21", "h22", "h23",
                "h24", "h25", "h26", "h27", "h28", "h29", "h30", "h31", "h32", "h33",
            ]
        };
        let reg = HistRegistry::default();
        reg.arm(true);
        for name in NAMES {
            reg.observe(name, 1);
        }
        let snaps = reg.drain();
        assert_eq!(snaps.len(), MAX_HISTOGRAMS, "overflow names dropped");
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let reg = std::sync::Arc::new(HistRegistry::default());
        reg.arm(true);
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        reg.observe("conc", t * per_thread + i + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snaps = reg.drain();
        assert_eq!(snaps.len(), 1);
        let s = &snaps[0];
        let n = threads * per_thread;
        assert_eq!(s.count, n, "count exact under concurrency");
        assert_eq!(s.sum_ns, n * (n + 1) / 2, "sum exact under concurrency");
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, n);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), n);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn build(name: &'static str, values: &[u64]) -> HistogramSnapshot {
            let reg = HistRegistry::default();
            reg.arm(true);
            for &v in values {
                reg.observe(name, v);
            }
            let mut snaps = reg.drain();
            if snaps.is_empty() {
                HistogramSnapshot::empty(name).finish()
            } else {
                snaps.remove(0)
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn quantile_is_monotone_in_q(
                values in proptest::collection::vec(0u64..u64::MAX / 2, 1..200),
                qs in proptest::collection::vec(0u64..1001, 2..20),
            ) {
                let s = build("m", &values);
                let mut qs: Vec<f64> = qs.iter().map(|&q| q as f64 / 1000.0).collect();
                qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut last = 0u64;
                for q in qs {
                    let v = s.quantile(q);
                    prop_assert!(v >= last, "quantile({q}) = {v} < {last}");
                    last = v;
                }
            }

            #[test]
            fn merge_equals_combined_stream(
                a in proptest::collection::vec(0u64..1_000_000_000, 0..150),
                b in proptest::collection::vec(0u64..1_000_000_000, 0..150),
            ) {
                let mut merged = build("m", &a);
                merged.merge(&build("m", &b));
                let mut both = a.clone();
                both.extend_from_slice(&b);
                let combined = build("m", &both);
                prop_assert_eq!(merged.count, combined.count);
                prop_assert_eq!(merged.sum_ns, combined.sum_ns);
                prop_assert_eq!(merged.min_ns, combined.min_ns);
                prop_assert_eq!(merged.max_ns, combined.max_ns);
                prop_assert_eq!(&merged.buckets, &combined.buckets);
                for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                    prop_assert_eq!(
                        merged.quantile(q),
                        combined.quantile(q),
                        "q={}", q
                    );
                }
            }

            #[test]
            fn count_and_sum_are_exact(
                values in proptest::collection::vec(0u64..1_000_000_000, 0..200),
            ) {
                let s = build("m", &values);
                prop_assert_eq!(s.count, values.len() as u64);
                prop_assert_eq!(s.sum_ns, values.iter().sum::<u64>());
                if values.is_empty() {
                    prop_assert_eq!(s.min_ns, 0);
                    prop_assert_eq!(s.max_ns, 0);
                } else {
                    prop_assert_eq!(s.min_ns, *values.iter().min().unwrap());
                    prop_assert_eq!(s.max_ns, *values.iter().max().unwrap());
                }
            }

            #[test]
            fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(bucket_index(lo) <= bucket_index(hi));
            }
        }
    }
}
