//! Typed failures for parallel regions and executor construction.

use std::fmt;

/// Why a parallel region (or an algorithm built from regions) stopped
/// early. See DESIGN.md, "Failure model".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A chunk body panicked. The panic was caught at the chunk boundary,
    /// the pool survived, and the first payload observed is reported.
    Panicked {
        /// Chunk index (`0..p`) whose body panicked first.
        worker: usize,
        /// Stringified panic payload (`&str`/`String` payloads verbatim,
        /// anything else as a placeholder).
        payload: String,
    },
    /// A [`CancelToken`](crate::CancelToken) was triggered.
    Cancelled,
    /// A [`Deadline`](crate::Deadline) expired.
    DeadlineExceeded,
}

impl ParError {
    /// Re-raises the error as a panic, for infallible wrappers around
    /// fallible entry points. `Panicked` re-panics with the original
    /// payload so `#[should_panic(expected = ...)]` substrings keep
    /// matching.
    pub fn raise(self) -> ! {
        match self {
            ParError::Panicked { payload, .. } => std::panic::panic_any(payload),
            other => panic!("{other}"),
        }
    }
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParError::Panicked { worker, payload } => {
                write!(f, "worker {worker} panicked: {payload}")
            }
            ParError::Cancelled => write!(f, "parallel region cancelled"),
            ParError::DeadlineExceeded => write!(f, "parallel region deadline exceeded"),
        }
    }
}

impl std::error::Error for ParError {}

/// Why an [`Executor`](crate::Executor) could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `workers == 0` was requested.
    ZeroWorkers,
    /// The underlying thread pool could not be created.
    Pool(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroWorkers => write!(f, "worker count must be positive"),
            BuildError::Pool(msg) => write!(f, "failed to build rayon pool: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Extracts a human-readable string from a caught panic payload.
pub(crate) fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let p = ParError::Panicked {
            worker: 3,
            payload: "boom".into(),
        };
        assert_eq!(p.to_string(), "worker 3 panicked: boom");
        assert_eq!(ParError::Cancelled.to_string(), "parallel region cancelled");
        assert_eq!(
            ParError::DeadlineExceeded.to_string(),
            "parallel region deadline exceeded"
        );
        assert_eq!(
            BuildError::ZeroWorkers.to_string(),
            "worker count must be positive"
        );
        assert!(BuildError::Pool("no threads".into())
            .to_string()
            .contains("failed to build rayon pool"));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn raise_preserves_panic_payload() {
        ParError::Panicked {
            worker: 0,
            payload: "boom".into(),
        }
        .raise();
    }

    #[test]
    #[should_panic(expected = "cancelled")]
    fn raise_reports_cancellation() {
        ParError::Cancelled.raise();
    }
}
