//! Parallel execution substrate.
//!
//! The paper evaluates its algorithms with OpenMP static loops on a
//! 40-core machine. This crate reproduces that execution model in Rust
//! with a single abstraction, [`Executor`], offering three modes:
//!
//! * **Sequential** — everything runs inline on the calling thread.
//! * **Rayon** — each parallel region is split into `p` statically
//!   scheduled chunks executed on a dedicated rayon pool; this is the mode
//!   for real multicore machines and for concurrency testing.
//! * **Simulated** — each region is split into the *same* `p` chunks but
//!   executed serially, timing every chunk; the simulated parallel
//!   runtime charges `max(chunk times)` per region plus all time spent
//!   outside regions. This is the standard self-relative simulated-speedup
//!   methodology, used here because the reproduction environment has a
//!   single core (see DESIGN.md, substitution 1). It preserves the two
//!   effects that shape the paper's speedup curves — serial sections
//!   (Amdahl) and load imbalance across chunks — while not modeling memory
//!   or atomic contention.
//!
//! All three modes use identical chunk boundaries, so an algorithm's
//! behaviour (including any tie-breaking that depends on the work
//! partition) is mode-independent.

use std::ops::Range;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

pub mod chunks;

pub use chunks::{split_even, split_weighted};

/// Accumulated accounting of a simulated run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Sum over regions of the maximum chunk time (the simulated cost of
    /// the parallel regions).
    pub charged: Duration,
    /// Sum over regions of all chunk times (what the regions actually
    /// cost on the measuring wall clock, since chunks run serially).
    pub measured: Duration,
    /// Number of parallel regions executed.
    pub regions: usize,
}

impl SimStats {
    /// Converts a measured wall time of the whole algorithm into the
    /// simulated parallel time: serial sections are kept at face value,
    /// parallel regions are re-priced at their critical path.
    pub fn simulated_time(&self, wall: Duration) -> Duration {
        wall.saturating_sub(self.measured) + self.charged
    }
}

enum Mode {
    Sequential,
    Rayon { pool: rayon::ThreadPool, workers: usize },
    Simulated { workers: usize, stats: Mutex<SimStats> },
}

/// A static-chunked parallel-for executor (see crate docs).
pub struct Executor {
    mode: Mode,
}

impl Executor {
    /// Inline sequential execution (one chunk per region).
    pub fn sequential() -> Self {
        Executor {
            mode: Mode::Sequential,
        }
    }

    /// Real parallel execution on a dedicated pool of `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or the rayon pool cannot be created.
    pub fn rayon(workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("failed to build rayon pool");
        Executor {
            mode: Mode::Rayon { pool, workers },
        }
    }

    /// Deterministic work-span simulation of `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn simulated(workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        Executor {
            mode: Mode::Simulated {
                workers,
                stats: Mutex::new(SimStats::default()),
            },
        }
    }

    /// The number of logical workers `p`.
    pub fn num_workers(&self) -> usize {
        match &self.mode {
            Mode::Sequential => 1,
            Mode::Rayon { workers, .. } => *workers,
            Mode::Simulated { workers, .. } => *workers,
        }
    }

    /// Whether this executor is in simulation mode.
    pub fn is_simulated(&self) -> bool {
        matches!(self.mode, Mode::Simulated { .. })
    }

    /// Human-readable mode name for harness output.
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            Mode::Sequential => "seq",
            Mode::Rayon { .. } => "rayon",
            Mode::Simulated { .. } => "sim",
        }
    }

    /// Returns and resets the simulation accounting. Zeroed stats are
    /// returned for non-simulated modes.
    pub fn take_sim_stats(&self) -> SimStats {
        match &self.mode {
            Mode::Simulated { stats, .. } => std::mem::take(&mut *stats.lock()),
            _ => SimStats::default(),
        }
    }

    /// A parallel region over `0..n`, split into `p` even chunks, with a
    /// per-chunk scratch value.
    ///
    /// `body(worker, scratch, range)` is invoked once per non-empty chunk;
    /// `worker` is the chunk index in `0..p`. Chunk boundaries are
    /// identical in every mode.
    pub fn for_each_chunk<S, MkS, F>(&self, n: usize, make_scratch: MkS, body: F)
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) + Sync,
    {
        let ranges = split_even(n, self.num_workers());
        self.run_ranges(ranges, make_scratch, body);
    }

    /// Like [`Executor::for_each_chunk`], but chunk boundaries balance
    /// *weight* instead of count: `weight_prefix` is the prefix-sum array
    /// of per-item costs (length `n + 1`; it may be a window into a larger
    /// prefix array). Use this for skewed workloads — e.g. adjacency scans
    /// over power-law graphs, where equal-count chunks would leave one
    /// worker holding all the hubs.
    pub fn for_each_chunk_weighted<S, MkS, F>(
        &self,
        weight_prefix: &[u64],
        make_scratch: MkS,
        body: F,
    ) where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) + Sync,
    {
        let ranges = chunks::split_weighted(weight_prefix, self.num_workers());
        self.run_ranges(ranges, make_scratch, body);
    }

    fn run_ranges<S, MkS, F>(&self, ranges: Vec<Range<usize>>, make_scratch: MkS, body: F)
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) + Sync,
    {
        match &self.mode {
            Mode::Sequential => {
                for (w, range) in ranges.into_iter().enumerate() {
                    if range.is_empty() {
                        continue;
                    }
                    let mut s = make_scratch();
                    body(w, &mut s, range);
                }
            }
            Mode::Rayon { pool, .. } => {
                pool.scope(|scope| {
                    for (w, range) in ranges.into_iter().enumerate() {
                        if range.is_empty() {
                            continue;
                        }
                        let body = &body;
                        let make_scratch = &make_scratch;
                        scope.spawn(move |_| {
                            let mut s = make_scratch();
                            body(w, &mut s, range);
                        });
                    }
                });
            }
            Mode::Simulated { stats, .. } => {
                let mut max = Duration::ZERO;
                let mut sum = Duration::ZERO;
                for (w, range) in ranges.into_iter().enumerate() {
                    if range.is_empty() {
                        continue;
                    }
                    let t0 = Instant::now();
                    let mut s = make_scratch();
                    body(w, &mut s, range);
                    let dt = t0.elapsed();
                    max = max.max(dt);
                    sum += dt;
                }
                let mut st = stats.lock();
                st.charged += max;
                st.measured += sum;
                st.regions += 1;
            }
        }
    }

    /// A parallel region over `0..n` without scratch.
    pub fn for_each_index<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_chunk(
            n,
            || (),
            |_, _, range| {
                for i in range {
                    body(i);
                }
            },
        );
    }

    /// A parallel region producing one value per chunk, returned in chunk
    /// order (empty chunks yield no value, so the result has at most `p`
    /// elements).
    pub fn map_chunks<T, F>(&self, n: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        let p = self.num_workers();
        let slots: Vec<Mutex<Option<T>>> = (0..p).map(|_| Mutex::new(None)).collect();
        self.for_each_chunk(
            n,
            || (),
            |w, _, range| {
                *slots[w].lock() = Some(body(w, range));
            },
        );
        slots.into_iter().filter_map(|s| s.into_inner()).collect()
    }

    /// Weighted analogue of [`Executor::map_chunks`]; see
    /// [`Executor::for_each_chunk_weighted`] for the prefix convention.
    pub fn map_chunks_weighted<T, F>(&self, weight_prefix: &[u64], body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        let p = self.num_workers();
        let slots: Vec<Mutex<Option<T>>> = (0..p).map(|_| Mutex::new(None)).collect();
        self.for_each_chunk_weighted(
            weight_prefix,
            || (),
            |w, _, range| {
                *slots[w].lock() = Some(body(w, range));
            },
        );
        slots.into_iter().filter_map(|s| s.into_inner()).collect()
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Executor({}, p={})", self.mode_name(), self.num_workers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sum_with(exec: &Executor, n: usize) -> usize {
        let acc = AtomicUsize::new(0);
        exec.for_each_index(n, |i| {
            acc.fetch_add(i, Ordering::Relaxed);
        });
        acc.into_inner()
    }

    #[test]
    fn all_modes_visit_every_index_once() {
        let n = 1000;
        let expected = n * (n - 1) / 2;
        assert_eq!(sum_with(&Executor::sequential(), n), expected);
        assert_eq!(sum_with(&Executor::rayon(4), n), expected);
        assert_eq!(sum_with(&Executor::simulated(4), n), expected);
    }

    #[test]
    fn zero_length_region_is_noop() {
        for exec in [
            Executor::sequential(),
            Executor::rayon(2),
            Executor::simulated(3),
        ] {
            assert_eq!(sum_with(&exec, 0), 0);
        }
    }

    #[test]
    fn worker_counts() {
        assert_eq!(Executor::sequential().num_workers(), 1);
        assert_eq!(Executor::rayon(3).num_workers(), 3);
        assert_eq!(Executor::simulated(7).num_workers(), 7);
        assert!(Executor::simulated(7).is_simulated());
        assert!(!Executor::rayon(2).is_simulated());
    }

    #[test]
    fn map_chunks_returns_in_chunk_order() {
        let exec = Executor::simulated(4);
        let starts = exec.map_chunks(10, |_, range| range.start);
        assert_eq!(starts.len(), 4);
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn map_chunks_skips_empty_chunks() {
        let exec = Executor::rayon(8);
        let vals = exec.map_chunks(3, |_, range| range.len());
        assert_eq!(vals.iter().sum::<usize>(), 3);
        assert!(vals.len() <= 3);
    }

    #[test]
    fn scratch_is_per_chunk() {
        let exec = Executor::rayon(4);
        let totals = Mutex::new(Vec::new());
        exec.for_each_chunk(
            100,
            || 0usize,
            |_, scratch, range| {
                for _ in range {
                    *scratch += 1;
                }
                totals.lock().push(*scratch);
            },
        );
        let totals = totals.into_inner();
        assert_eq!(totals.iter().sum::<usize>(), 100);
        assert_eq!(totals.len(), 4);
    }

    #[test]
    fn sim_stats_accumulate_and_reset() {
        let exec = Executor::simulated(4);
        exec.for_each_index(100, |_| {
            std::hint::black_box(0);
        });
        let st = exec.take_sim_stats();
        assert_eq!(st.regions, 1);
        assert!(st.measured >= st.charged);
        // Reset worked:
        assert_eq!(exec.take_sim_stats(), SimStats::default());
    }

    #[test]
    fn sim_time_reprices_regions() {
        let st = SimStats {
            charged: Duration::from_millis(10),
            measured: Duration::from_millis(40),
            regions: 1,
        };
        let wall = Duration::from_millis(100);
        assert_eq!(st.simulated_time(wall), Duration::from_millis(70));
        // Saturation: measured can exceed wall only through clock noise;
        // never panic.
        let st2 = SimStats {
            charged: Duration::ZERO,
            measured: Duration::from_millis(200),
            regions: 1,
        };
        assert_eq!(st2.simulated_time(wall), Duration::ZERO);
    }

    #[test]
    fn chunk_boundaries_identical_across_modes() {
        let record = |exec: &Executor| {
            let r = Mutex::new(Vec::new());
            exec.for_each_chunk(
                17,
                || (),
                |w, _, range| {
                    r.lock().push((w, range.start, range.end));
                },
            );
            let mut v = r.into_inner();
            v.sort_unstable();
            v
        };
        let a = record(&Executor::rayon(5));
        let b = record(&Executor::simulated(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_rejected() {
        Executor::simulated(0);
    }
}

#[cfg(test)]
mod weighted_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn prefix(weights: &[u64]) -> Vec<u64> {
        let mut p = vec![0u64];
        for &w in weights {
            p.push(p.last().unwrap() + w);
        }
        p
    }

    #[test]
    fn weighted_visits_every_index_once() {
        let weights: Vec<u64> = (0..500).map(|i| (i % 17) + 1).collect();
        let pre = prefix(&weights);
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(6),
        ] {
            let acc = AtomicUsize::new(0);
            exec.for_each_chunk_weighted(
                &pre,
                || (),
                |_, _, range| {
                    for i in range {
                        acc.fetch_add(i, Ordering::Relaxed);
                    }
                },
            );
            assert_eq!(acc.into_inner(), 500 * 499 / 2, "{}", exec.mode_name());
        }
    }

    #[test]
    fn weighted_map_chunks_covers_range() {
        let weights = vec![1u64; 100];
        let pre = prefix(&weights);
        let exec = Executor::rayon(7);
        let lens = exec.map_chunks_weighted(&pre, |_, r| r.len());
        assert_eq!(lens.iter().sum::<usize>(), 100);
    }

    #[test]
    fn weighted_windowed_prefix_is_supported() {
        // Use a window of a larger prefix (non-zero base), as PHCD does
        // for shells.
        let weights: Vec<u64> = (0..50).map(|i| i + 1).collect();
        let pre = prefix(&weights);
        let window = &pre[10..=40]; // items 10..40
        let exec = Executor::simulated(4);
        let acc = AtomicUsize::new(0);
        exec.for_each_chunk_weighted(
            window,
            || (),
            |_, _, range| {
                for i in range {
                    acc.fetch_add(i, Ordering::Relaxed);
                }
            },
        );
        // Local indices 0..30 visited exactly once.
        assert_eq!(acc.into_inner(), 30 * 29 / 2);
    }
}
