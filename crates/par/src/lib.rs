//! Parallel execution substrate.
//!
//! The paper evaluates its algorithms with OpenMP static loops on a
//! 40-core machine. This crate reproduces that execution model in Rust
//! with a single abstraction, [`Executor`], offering four modes:
//!
//! * **Sequential** — everything runs inline on the calling thread.
//! * **Rayon** — each parallel region is split into `p` statically
//!   scheduled chunks executed on a dedicated rayon pool; this is the mode
//!   for real multicore machines and for concurrency testing.
//! * **Simulated** — each region is split into the *same* `p` chunks but
//!   executed serially, timing every chunk; the simulated parallel
//!   runtime charges `max(chunk times)` per region plus all time spent
//!   outside regions. This is the standard self-relative simulated-speedup
//!   methodology, used here because the reproduction environment has a
//!   single core (see DESIGN.md, substitution 1). It preserves the two
//!   effects that shape the paper's speedup curves — serial sections
//!   (Amdahl) and load imbalance across chunks — while not modeling memory
//!   or atomic contention.
//! * **Assist** — work-assisting self-scheduling (see the [`assist`
//!   module docs](crate::Executor::assist)): the region publishes its
//!   loop descriptor (region id, atomic next-chunk cursor, chunk table)
//!   into a shared fixed-size assist array; every worker claims chunks
//!   from the cursor, and idle pool workers join the busiest live loop
//!   instead of parking. Chunk *tables* are unchanged, but chunk stats
//!   record per-worker participation spans, so the recorded imbalance
//!   ratio reflects scheduler-achieved per-worker balance. Optional
//!   thread pinning via [`ExecutorConfig::pin_threads`].
//!
//! All modes use identical chunk boundaries, so an algorithm's
//! behaviour (including any tie-breaking that depends on the work
//! partition) is mode-independent.
//!
//! # Observability
//!
//! Every region can carry a static name via [`Executor::region`]:
//!
//! ```
//! # use hcd_par::Executor;
//! let exec = Executor::sequential().with_metrics();
//! exec.region("demo.sum").for_each_index(100, |_| {});
//! let metrics = exec.take_metrics();
//! assert_eq!(metrics.regions[0].name, "demo.sum");
//! ```
//!
//! With metrics enabled, each region execution records wall time,
//! per-chunk durations (min/max/sum → a load-imbalance ratio), chunk
//! counts, checkpoint polls, and failure/fault events into a
//! [`RunMetrics`] snapshot ([`Executor::take_metrics`]); see the
//! [`metrics`] module. Disabled (the default), the cost is one relaxed
//! atomic load per region. The legacy unnamed entry points on
//! [`Executor`] record under the name [`UNNAMED_REGION`].
//!
//! # Failure model
//!
//! Every region also exists in a fallible form (`try_for_each_chunk`,
//! `try_map_chunks`, and weighted variants) whose chunk bodies return
//! `Result<_, ParError>` and run under `catch_unwind`:
//!
//! * a **panic** in any chunk is caught at the chunk boundary and
//!   surfaces as [`ParError::Panicked`] — the pool survives and the
//!   executor stays usable;
//! * a [`CancelToken`] or [`Deadline`] installed on the executor is
//!   checked before every chunk (and inside long chunk bodies at coarse
//!   strides via [`Executor::checkpoint`]), aborting the region with
//!   [`ParError::Cancelled`] / [`ParError::DeadlineExceeded`];
//! * a [`FaultPlan`] deterministically injects panics, delays, or
//!   cancellations at chosen `(region, chunk)` sites, for testing that
//!   algorithms either complete correctly or fail cleanly.
//!
//! The first failure wins; remaining chunks of the region are skipped as
//! soon as they observe it (chunks already running finish normally —
//! cancellation is cooperative). The original infallible APIs remain as
//! thin wrappers that re-raise the failure as a panic.

use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

mod assist;
pub mod chunks;
pub mod diff;
pub mod epoch;
pub mod error;
pub mod fault;
pub mod hist;
pub mod intern;
pub mod metrics;
pub mod trace;

pub use assist::ExecutorConfig;
pub use chunks::{split_even, split_weighted};
pub use diff::{diff_metrics, DiffEntry, DiffOptions, DiffReport, Snapshot, SnapshotHistogram};
pub use epoch::{EpochCell, EpochCounter};
pub use error::{BuildError, ParError};
pub use fault::{CancelToken, CrashPoint, Deadline, Fault, FaultPlan};
pub use hist::{HistogramSnapshot, LatencyTimer};
pub use intern::intern;
pub use metrics::{CounterValue, RegionMetrics, RunMetrics, METRICS_SCHEMA};
pub use trace::{EventKind, Trace, TraceEvent, DEFAULT_EVENT_CAPACITY, TRACE_SCHEMA};

use hist::HistRegistry;
use metrics::{ChunkStats, Recorder};
use trace::TraceCtl;

/// Suggested number of innermost-loop iterations between
/// [`Executor::checkpoint`] calls inside long chunk bodies. Coarse enough
/// to be free, fine enough that cancellation/deadlines take effect within
/// one stride.
pub const CHECKPOINT_STRIDE: usize = 2048;

/// Region name recorded for the legacy unnamed [`Executor`] entry points
/// (`for_each_chunk` & co. called directly on the executor).
pub const UNNAMED_REGION: &str = "unnamed";

/// Accumulated accounting of a simulated run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Sum over regions of the maximum chunk time (the simulated cost of
    /// the parallel regions).
    pub charged: Duration,
    /// Sum over regions of all chunk times (what the regions actually
    /// cost on the measuring wall clock, since chunks run serially).
    pub measured: Duration,
    /// Number of parallel regions executed.
    pub regions: usize,
}

impl SimStats {
    /// Converts a measured wall time of the whole algorithm into the
    /// simulated parallel time: serial sections are kept at face value,
    /// parallel regions are re-priced at their critical path.
    pub fn simulated_time(&self, wall: Duration) -> Duration {
        wall.saturating_sub(self.measured) + self.charged
    }
}

enum Mode {
    Sequential,
    Rayon {
        pool: rayon::ThreadPool,
        workers: usize,
    },
    Simulated {
        workers: usize,
        stats: Mutex<SimStats>,
    },
    Assist {
        pool: assist::AssistPool,
        workers: usize,
    },
}

/// Cancellation, deadline, and fault-injection state shared by all
/// regions of an executor. Interior-mutable so a long-lived executor can
/// be re-armed between runs.
#[derive(Default)]
struct Ctrl {
    cancel: Mutex<Option<CancelToken>>,
    deadline: Mutex<Option<Deadline>>,
    plan: Mutex<Option<FaultPlan>>,
    /// Regions executed since the fault plan was installed; numbers the
    /// injection sites.
    region: AtomicUsize,
    /// Per-point poll counts since the fault plan was installed; numbers
    /// the crash-point occurrences the same way `region` numbers chunk
    /// sites.
    crash_polls: Mutex<HashMap<CrashPoint, usize>>,
    /// Simulated crashes that actually fired since the plan was
    /// installed (harnesses use this to tell "crash happened" from
    /// "write failed for a real reason").
    crashes_fired: AtomicU64,
}

/// A static-chunked parallel-for executor (see crate docs).
pub struct Executor {
    mode: Mode,
    ctrl: Ctrl,
    metrics: Recorder,
    trace: TraceCtl,
    hist: HistRegistry,
}

impl Executor {
    /// Inline sequential execution (one chunk per region).
    pub fn sequential() -> Self {
        Executor {
            mode: Mode::Sequential,
            ctrl: Ctrl::default(),
            metrics: Recorder::default(),
            trace: TraceCtl::default(),
            hist: HistRegistry::default(),
        }
    }

    /// Real parallel execution on a dedicated pool of `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or the rayon pool cannot be created. Use
    /// [`Executor::try_rayon`] for a fallible version.
    pub fn rayon(workers: usize) -> Self {
        match Self::try_rayon(workers) {
            Ok(exec) => exec,
            Err(BuildError::ZeroWorkers) => panic!("worker count must be positive"),
            Err(e @ BuildError::Pool(_)) => panic!("{e}"),
        }
    }

    /// Fallible version of [`Executor::rayon`].
    pub fn try_rayon(workers: usize) -> Result<Self, BuildError> {
        if workers == 0 {
            return Err(BuildError::ZeroWorkers);
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .map_err(|e| BuildError::Pool(e.to_string()))?;
        Ok(Executor {
            mode: Mode::Rayon { pool, workers },
            ctrl: Ctrl::default(),
            metrics: Recorder::default(),
            trace: TraceCtl::default(),
            hist: HistRegistry::default(),
        })
    }

    /// Deterministic work-span simulation of `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`. Use [`Executor::try_simulated`] for a
    /// fallible version.
    pub fn simulated(workers: usize) -> Self {
        match Self::try_simulated(workers) {
            Ok(exec) => exec,
            Err(e) => panic!("worker count must be positive: {e}"),
        }
    }

    /// Fallible version of [`Executor::simulated`].
    pub fn try_simulated(workers: usize) -> Result<Self, BuildError> {
        if workers == 0 {
            return Err(BuildError::ZeroWorkers);
        }
        Ok(Executor {
            mode: Mode::Simulated {
                workers,
                stats: Mutex::new(SimStats::default()),
            },
            ctrl: Ctrl::default(),
            metrics: Recorder::default(),
            trace: TraceCtl::default(),
            hist: HistRegistry::default(),
        })
    }

    /// Work-assisting self-scheduling execution with `workers` logical
    /// workers on a dedicated pool (see the crate docs and the assist
    /// module): chunk tables stay identical to the static modes, but
    /// chunks are claimed dynamically through a published loop
    /// descriptor and idle workers join the busiest live loop.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or the pool threads cannot be spawned.
    /// Use [`Executor::try_assist`] for a fallible version.
    pub fn assist(workers: usize) -> Self {
        match Self::try_assist(workers) {
            Ok(exec) => exec,
            Err(BuildError::ZeroWorkers) => panic!("worker count must be positive"),
            Err(e @ BuildError::Pool(_)) => panic!("{e}"),
        }
    }

    /// Fallible version of [`Executor::assist`].
    pub fn try_assist(workers: usize) -> Result<Self, BuildError> {
        Self::try_assist_with(ExecutorConfig::new(workers))
    }

    /// Builds an assist-mode executor from an [`ExecutorConfig`],
    /// including optional thread pinning
    /// ([`ExecutorConfig::pin_threads`], graceful fallback where
    /// `sched_setaffinity` is unavailable — see
    /// [`Executor::pin_fallbacks`]).
    pub fn try_assist_with(config: ExecutorConfig) -> Result<Self, BuildError> {
        let workers = config.workers();
        let pool = assist::AssistPool::new(workers, config.pinning())?;
        Ok(Executor {
            mode: Mode::Assist { pool, workers },
            ctrl: Ctrl::default(),
            metrics: Recorder::default(),
            trace: TraceCtl::default(),
            hist: HistRegistry::default(),
        })
    }

    /// The number of logical workers `p`.
    pub fn num_workers(&self) -> usize {
        match &self.mode {
            Mode::Sequential => 1,
            Mode::Rayon { workers, .. } => *workers,
            Mode::Simulated { workers, .. } => *workers,
            Mode::Assist { workers, .. } => *workers,
        }
    }

    /// In assist mode with [`ExecutorConfig::pin_threads`], the number
    /// of pool workers that could not be pinned and run unpinned
    /// (graceful fallback). Zero in every other configuration.
    pub fn pin_fallbacks(&self) -> usize {
        match &self.mode {
            Mode::Assist { pool, .. } => pool.pin_fallbacks(),
            _ => 0,
        }
    }

    /// Whether this executor is in simulation mode.
    pub fn is_simulated(&self) -> bool {
        matches!(self.mode, Mode::Simulated { .. })
    }

    /// Human-readable mode name for harness output.
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            Mode::Sequential => "seq",
            Mode::Rayon { .. } => "rayon",
            Mode::Simulated { .. } => "sim",
            Mode::Assist { .. } => "assist",
        }
    }

    /// Returns and resets the simulation accounting. Zeroed stats are
    /// returned for non-simulated modes.
    pub fn take_sim_stats(&self) -> SimStats {
        match &self.mode {
            Mode::Simulated { stats, .. } => std::mem::take(&mut *stats.lock()),
            _ => SimStats::default(),
        }
    }

    // --- observability -----------------------------------------------

    /// A named handle for opening parallel regions: all region entry
    /// points exist on the returned [`Region`] and record their metrics
    /// under `name` when metrics are enabled. Names are dotted
    /// `component.step` identifiers (`"phcd.union"`,
    /// `"pbks.triangles"`) restricted to `[a-z0-9._-]` by convention.
    pub fn region(&self, name: &'static str) -> Region<'_> {
        Region { exec: self, name }
    }

    /// Enables metrics recording (builder form).
    pub fn with_metrics(self) -> Self {
        self.set_metrics_enabled(true);
        self
    }

    /// Enables or disables metrics recording on a live executor.
    /// Disabled recording costs one relaxed atomic load per region.
    pub fn set_metrics_enabled(&self, on: bool) {
        self.metrics.set_enabled(on);
    }

    /// Whether metrics recording is enabled.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.enabled()
    }

    /// Returns and resets the recorded region metrics. Empty unless
    /// metrics were enabled and at least one region ran. The enable flag
    /// itself is untouched, so a long-lived executor keeps recording.
    pub fn take_metrics(&self) -> RunMetrics {
        let mut m = self.metrics.take();
        m.histograms = self.hist.drain();
        m
    }

    /// Arms latency-histogram recording: [`Executor::observe_ns`] and
    /// [`Executor::time`] start recording into named log2-bucketed
    /// histograms (see the [`hist`] module), drained into
    /// [`RunMetrics::histograms`] by [`Executor::take_metrics`].
    /// Disarmed (the default), each observe costs one relaxed atomic
    /// load and [`Executor::time`] never reads the clock. Histogram
    /// arming is independent of [`Executor::set_metrics_enabled`] so
    /// overhead can be measured in isolation.
    pub fn arm_histograms(&self) {
        self.hist.arm(true);
    }

    /// Builder form of [`Executor::arm_histograms`].
    pub fn with_histograms(self) -> Self {
        self.arm_histograms();
        self
    }

    /// Enables or disables histogram recording on a live executor.
    pub fn set_histograms_armed(&self, on: bool) {
        self.hist.arm(on);
    }

    /// Whether latency histograms are armed.
    pub fn histograms_armed(&self) -> bool {
        self.hist.armed()
    }

    /// Records one nanosecond latency sample into the histogram named
    /// `name` (no-op when disarmed).
    #[inline]
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        self.hist.observe(name, ns);
    }

    /// Records a [`Duration`] latency sample (no-op when disarmed).
    #[inline]
    pub fn observe(&self, name: &'static str, elapsed: Duration) {
        if self.hist.armed() {
            self.hist
                .observe(name, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Starts a drop-to-record latency timer for `name`: the span from
    /// this call to the drop of the returned guard is recorded into the
    /// named histogram. When disarmed, no clock is read and drop is
    /// free.
    #[inline]
    pub fn time(&self, name: &'static str) -> LatencyTimer<'_> {
        LatencyTimer::start(&self.hist, name)
    }

    /// Copies the live histograms without resetting them — the
    /// in-flight view used by `serve-bench --stats-interval`. Empty
    /// when disarmed or nothing was recorded.
    pub fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        self.hist.snapshot()
    }

    /// Arms timeline tracing with the default per-thread event capacity
    /// ([`DEFAULT_EVENT_CAPACITY`]); see the [`trace`] module. Until
    /// [`Executor::take_trace`] is called, every region records span
    /// events (region enter/exit, chunk begin/end, checkpoint polls,
    /// injected faults) and [`Executor::gauge`] samples into per-thread
    /// ring buffers. Disarmed (the default), the cost is one relaxed
    /// atomic load per region and nothing per chunk.
    pub fn arm_trace(&self) {
        self.trace.arm(DEFAULT_EVENT_CAPACITY);
    }

    /// Arms timeline tracing with an explicit per-thread event capacity
    /// (rounded up to at least 16). When a thread records more events
    /// than this, the oldest are overwritten and counted in
    /// [`Trace::dropped`].
    pub fn arm_trace_with_capacity(&self, events_per_thread: usize) {
        self.trace.arm(events_per_thread);
    }

    /// Builder form of [`Executor::arm_trace`].
    pub fn with_trace(self) -> Self {
        self.arm_trace();
        self
    }

    /// Whether a trace session is currently armed.
    pub fn trace_armed(&self) -> bool {
        self.trace.armed()
    }

    /// Disarms tracing and returns the collected timeline (empty if
    /// tracing was never armed). Call only at quiescence — after all
    /// regions have returned.
    pub fn take_trace(&self) -> Trace {
        self.trace.take()
    }

    /// Adds `delta` to the named monotone counter (e.g. union-find CAS
    /// retries). Recorded into [`RunMetrics::counters`] when metrics are
    /// enabled; free (one relaxed load) otherwise. Thread-safe, but
    /// intended to be called from region drivers / algorithm code that
    /// flushes thread-local tallies, not per element.
    pub fn add_counter(&self, name: &'static str, delta: u64) {
        if self.metrics.enabled() && delta > 0 {
            self.metrics.update_counter(name, delta, "sum");
        }
    }

    /// Records a point sample of the named gauge (e.g. the peeling
    /// frontier size of the current wave). The metrics snapshot keeps the
    /// high-water mark; an armed trace additionally records every sample
    /// as a counter-track point, so the timeline shows the full curve.
    pub fn gauge(&self, name: &'static str, value: u64) {
        if self.metrics.enabled() {
            self.metrics.update_counter(name, value, "max");
        }
        if let Some(session) = self.trace.session() {
            session.record(EventKind::Counter, name, u32::MAX, value);
        }
    }

    // --- failure-model control plane ---------------------------------

    /// Installs a cancellation token (builder form). Regions abort with
    /// [`ParError::Cancelled`] once the token is cancelled.
    pub fn with_cancel(self, token: CancelToken) -> Self {
        self.set_cancel(token);
        self
    }

    /// Installs a deadline (builder form). Regions abort with
    /// [`ParError::DeadlineExceeded`] once it expires.
    pub fn with_deadline(self, deadline: Deadline) -> Self {
        self.set_deadline(deadline);
        self
    }

    /// Installs a fault plan (builder form) and restarts region numbering
    /// at zero.
    pub fn with_fault_plan(self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Installs (or replaces) the cancellation token on a live executor.
    pub fn set_cancel(&self, token: CancelToken) {
        *self.ctrl.cancel.lock() = Some(token);
    }

    /// Removes the cancellation token.
    pub fn clear_cancel(&self) {
        *self.ctrl.cancel.lock() = None;
    }

    /// The currently installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.ctrl.cancel.lock().clone()
    }

    /// Installs (or replaces) the deadline on a live executor.
    pub fn set_deadline(&self, deadline: Deadline) {
        *self.ctrl.deadline.lock() = Some(deadline);
    }

    /// Removes the deadline.
    pub fn clear_deadline(&self) {
        *self.ctrl.deadline.lock() = None;
    }

    /// Installs (or replaces) the fault plan and restarts region
    /// numbering, crash-point occurrence numbering, and the fired-crash
    /// count at zero, so plan sites address the next run.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.ctrl.plan.lock() = Some(plan);
        self.ctrl.region.store(0, Ordering::Relaxed);
        self.ctrl.crash_polls.lock().clear();
        self.ctrl.crashes_fired.store(0, Ordering::Relaxed);
    }

    /// Removes the fault plan (region numbering keeps advancing; install
    /// a new plan to reset it).
    pub fn clear_fault_plan(&self) {
        *self.ctrl.plan.lock() = None;
    }

    /// Polls a simulated process-crash site. IO code (WAL append,
    /// checkpoint publish) calls this at each crash-able boundary;
    /// `true` means the installed [`FaultPlan`] scheduled a crash at
    /// this occurrence of `point`, and the caller must abandon the
    /// operation mid-flight exactly as a killed process would (no
    /// cleanup, no rollback). Occurrences are numbered per point from
    /// the moment the plan is installed. Without a plan (or with a plan
    /// that schedules no crashes) this is a cheap no-op returning
    /// `false`.
    pub fn crash_point(&self, point: CrashPoint) -> bool {
        let plan = self.ctrl.plan.lock();
        let Some(plan) = plan.as_ref() else {
            return false;
        };
        if !plan.has_crashes() {
            return false;
        }
        let mut polls = self.ctrl.crash_polls.lock();
        let occurrence = polls.entry(point).or_insert(0);
        let fire = plan.crash_at(point, *occurrence);
        *occurrence += 1;
        if fire {
            self.ctrl.crashes_fired.fetch_add(1, Ordering::Relaxed);
            self.add_counter("fault.crashes", 1);
        }
        fire
    }

    /// Number of simulated crashes that fired since the current fault
    /// plan was installed.
    pub fn crashes_fired(&self) -> u64 {
        self.ctrl.crashes_fired.load(Ordering::Relaxed)
    }

    /// Cooperative cancellation point for long chunk bodies: checks the
    /// installed [`CancelToken`] and [`Deadline`]. Call every
    /// [`CHECKPOINT_STRIDE`] innermost iterations and propagate the error
    /// with `?`. Polls are counted against the running region when
    /// metrics are enabled.
    pub fn checkpoint(&self) -> Result<(), ParError> {
        self.metrics.note_checkpoint();
        if let Some(session) = self.trace.session() {
            session.record(EventKind::Checkpoint, "checkpoint", u32::MAX, 0);
        }
        if let Some(token) = self.ctrl.cancel.lock().as_ref() {
            if token.is_cancelled() {
                return Err(ParError::Cancelled);
            }
        }
        if let Some(deadline) = *self.ctrl.deadline.lock() {
            if deadline.expired() {
                return Err(ParError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    // --- parallel regions (unnamed compatibility surface) ------------
    //
    // Each method is a thin delegate to the equivalent method on
    // `self.region(UNNAMED_REGION)`; algorithms should prefer the named
    // form so their regions show up attributably in RunMetrics.

    /// A parallel region over `0..n`, split into `p` even chunks, with a
    /// per-chunk scratch value.
    ///
    /// `body(worker, scratch, range)` is invoked once per non-empty chunk;
    /// `worker` is the chunk index in `0..p`. Chunk boundaries are
    /// identical in every mode.
    pub fn for_each_chunk<S, MkS, F>(&self, n: usize, make_scratch: MkS, body: F)
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) + Sync,
    {
        self.region(UNNAMED_REGION)
            .for_each_chunk(n, make_scratch, body)
    }

    /// Fallible version of [`Executor::for_each_chunk`]: the body returns
    /// `Result<(), ParError>`, panics are contained at chunk boundaries,
    /// and the first failure aborts the region (see crate docs, failure
    /// model).
    pub fn try_for_each_chunk<S, MkS, F>(
        &self,
        n: usize,
        make_scratch: MkS,
        body: F,
    ) -> Result<(), ParError>
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) -> Result<(), ParError> + Sync,
    {
        self.region(UNNAMED_REGION)
            .try_for_each_chunk(n, make_scratch, body)
    }

    /// Like [`Executor::for_each_chunk`], but chunk boundaries balance
    /// *weight* instead of count: `weight_prefix` is the prefix-sum array
    /// of per-item costs (length `n + 1`; it may be a window into a larger
    /// prefix array). Use this for skewed workloads — e.g. adjacency scans
    /// over power-law graphs, where equal-count chunks would leave one
    /// worker holding all the hubs.
    pub fn for_each_chunk_weighted<S, MkS, F>(
        &self,
        weight_prefix: &[u64],
        make_scratch: MkS,
        body: F,
    ) where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) + Sync,
    {
        self.region(UNNAMED_REGION)
            .for_each_chunk_weighted(weight_prefix, make_scratch, body)
    }

    /// Fallible version of [`Executor::for_each_chunk_weighted`].
    pub fn try_for_each_chunk_weighted<S, MkS, F>(
        &self,
        weight_prefix: &[u64],
        make_scratch: MkS,
        body: F,
    ) -> Result<(), ParError>
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) -> Result<(), ParError> + Sync,
    {
        self.region(UNNAMED_REGION)
            .try_for_each_chunk_weighted(weight_prefix, make_scratch, body)
    }

    /// A parallel region over `0..n` without scratch.
    pub fn for_each_index<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.region(UNNAMED_REGION).for_each_index(n, body)
    }

    /// Fallible version of [`Executor::for_each_index`].
    pub fn try_for_each_index<F>(&self, n: usize, body: F) -> Result<(), ParError>
    where
        F: Fn(usize) -> Result<(), ParError> + Sync,
    {
        self.region(UNNAMED_REGION).try_for_each_index(n, body)
    }

    /// A parallel region producing one value per chunk, returned in chunk
    /// order (empty chunks yield no value, so the result has at most `p`
    /// elements).
    pub fn map_chunks<T, F>(&self, n: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        self.region(UNNAMED_REGION).map_chunks(n, body)
    }

    /// Fallible version of [`Executor::map_chunks`]. On failure the
    /// already-computed chunk values are dropped.
    pub fn try_map_chunks<T, F>(&self, n: usize, body: F) -> Result<Vec<T>, ParError>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> Result<T, ParError> + Sync,
    {
        self.region(UNNAMED_REGION).try_map_chunks(n, body)
    }

    /// Weighted analogue of [`Executor::map_chunks`]; see
    /// [`Executor::for_each_chunk_weighted`] for the prefix convention.
    pub fn map_chunks_weighted<T, F>(&self, weight_prefix: &[u64], body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        self.region(UNNAMED_REGION)
            .map_chunks_weighted(weight_prefix, body)
    }

    /// Fallible version of [`Executor::map_chunks_weighted`].
    pub fn try_map_chunks_weighted<T, F>(
        &self,
        weight_prefix: &[u64],
        body: F,
    ) -> Result<Vec<T>, ParError>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> Result<T, ParError> + Sync,
    {
        self.region(UNNAMED_REGION)
            .try_map_chunks_weighted(weight_prefix, body)
    }

    /// Runs one region: checks cancellation/deadline before each chunk,
    /// applies any injected faults, contains panics, and records the
    /// first failure. Chunks observe a failure flag and skip once it is
    /// set; in rayon mode, chunks already running complete normally.
    ///
    /// When metrics are enabled (or the mode is simulated, which always
    /// needs chunk clocks for `SimStats`), every chunk is timed; the same
    /// measurements feed both accountings, so `RunMetrics::chunk_max_ns`
    /// and `SimStats::charged` agree exactly.
    fn try_run_ranges<S, MkS, F>(
        &self,
        name: &'static str,
        ranges: Vec<Range<usize>>,
        make_scratch: MkS,
        body: F,
    ) -> Result<(), ParError>
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) -> Result<(), ParError> + Sync,
    {
        let region = self.ctrl.region.fetch_add(1, Ordering::Relaxed);
        // Snapshot the control plane once per region so chunk execution
        // never takes the ctrl locks.
        let cancel = self.ctrl.cancel.lock().clone();
        let deadline = *self.ctrl.deadline.lock();
        let plan = self.ctrl.plan.lock().clone();
        let metering = self.metrics.enabled();
        let timed = metering || self.is_simulated();
        let cstats = ChunkStats::new();
        let cp_mark = self.metrics.checkpoint_mark();
        // One relaxed load when disarmed; the Arc is cloned once per
        // region (never per chunk) when armed.
        let tracer = self.trace.session();
        if let Some(t) = &tracer {
            t.record(EventKind::RegionEnter, name, u32::MAX, 0);
        }
        let region_t0 = Instant::now();

        let first_err: Mutex<Option<ParError>> = Mutex::new(None);
        let tripped = AtomicBool::new(false);
        let record = |e: ParError| {
            let mut slot = first_err.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
            tripped.store(true, Ordering::Release);
        };

        let run_chunk_inner = |w: usize, range: Range<usize>| {
            if tripped.load(Ordering::Acquire) {
                return;
            }
            if let Some(token) = &cancel {
                if token.is_cancelled() {
                    record(ParError::Cancelled);
                    return;
                }
            }
            if let Some(d) = &deadline {
                if d.expired() {
                    record(ParError::DeadlineExceeded);
                    return;
                }
            }
            let injected = plan.as_ref().and_then(|p| p.get(region, w));
            if injected.is_some() {
                if metering {
                    cstats.note_fault();
                }
                if let Some(t) = &tracer {
                    t.record(EventKind::Fault, name, w as u32, 0);
                }
            }
            match injected {
                Some(Fault::Delay(micros)) => std::thread::sleep(Duration::from_micros(micros)),
                Some(Fault::Cancel) => {
                    // As if an external caller cancelled mid-region: trip
                    // the shared token (so sibling regions see it too) and
                    // abort this one.
                    if let Some(token) = &cancel {
                        token.cancel();
                    }
                    record(ParError::Cancelled);
                    return;
                }
                _ => {}
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if injected == Some(Fault::Panic) {
                    panic!("injected fault: panic at region {region} chunk {w}");
                }
                let mut s = make_scratch();
                body(w, &mut s, range)
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => record(e),
                Err(payload) => record(ParError::Panicked {
                    worker: w,
                    payload: error::payload_to_string(&*payload),
                }),
            }
        };
        let run_chunk = |w: usize, range: Range<usize>| {
            if let Some(t) = &tracer {
                t.record(EventKind::ChunkBegin, name, w as u32, 0);
            }
            if timed {
                let t0 = Instant::now();
                run_chunk_inner(w, range);
                cstats.record(t0.elapsed());
            } else {
                run_chunk_inner(w, range);
            }
            if let Some(t) = &tracer {
                t.record(EventKind::ChunkEnd, name, w as u32, 0);
            }
        };

        match &self.mode {
            Mode::Sequential => {
                for (w, range) in ranges.into_iter().enumerate() {
                    if range.is_empty() {
                        continue;
                    }
                    run_chunk(w, range);
                }
            }
            Mode::Rayon { pool, .. } => {
                pool.scope(|scope| {
                    for (w, range) in ranges.into_iter().enumerate() {
                        if range.is_empty() {
                            continue;
                        }
                        let run_chunk = &run_chunk;
                        scope.spawn(move |_| run_chunk(w, range));
                    }
                });
            }
            Mode::Simulated { stats, .. } => {
                for (w, range) in ranges.into_iter().enumerate() {
                    if range.is_empty() {
                        continue;
                    }
                    run_chunk(w, range);
                }
                // The simulated critical path is re-priced from the same
                // chunk clocks the metrics see.
                let mut st = stats.lock();
                st.charged += cstats.max();
                st.measured += cstats.sum();
                st.regions += 1;
            }
            Mode::Assist { pool, .. } => {
                // Work assisting: publish the loop descriptor and
                // self-schedule chunks; the pool times per-worker
                // participation spans into `cstats` itself (see the
                // assist module docs), so the runner here carries only
                // the trace spans and the chunk body.
                let chunk_runner = |w: usize, range: Range<usize>| {
                    if let Some(t) = &tracer {
                        t.record(EventKind::ChunkBegin, name, w as u32, 0);
                    }
                    run_chunk_inner(w, range);
                    if let Some(t) = &tracer {
                        t.record(EventKind::ChunkEnd, name, w as u32, 0);
                    }
                };
                let outcome = pool.run(region, ranges, &chunk_runner, timed.then_some(&cstats));
                if metering {
                    self.add_counter("par.assist.steals", outcome.steals);
                    self.add_counter("par.assist.claim_cas_retries", outcome.cas_retries);
                }
                if outcome.max_assisting > 0 {
                    self.gauge("par.assist.assisting_threads", outcome.max_assisting as u64);
                }
            }
        }

        let result = first_err.into_inner();
        if let Some(t) = &tracer {
            t.record(
                EventKind::RegionExit,
                name,
                u32::MAX,
                u64::from(result.is_some()),
            );
        }
        if metering {
            let cp_delta = self.metrics.checkpoint_mark().saturating_sub(cp_mark);
            self.metrics.record_region(
                name,
                region_t0.elapsed(),
                &cstats,
                cp_delta,
                result.as_ref(),
            );
        }
        match result {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A named handle for opening parallel regions on an [`Executor`];
/// created with [`Executor::region`]. Carries the static region name
/// under which executions are recorded into [`RunMetrics`].
#[derive(Clone, Copy)]
pub struct Region<'a> {
    exec: &'a Executor,
    name: &'static str,
}

impl<'a> Region<'a> {
    /// The region's static name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying executor (for [`Executor::checkpoint`] inside
    /// bodies).
    pub fn executor(&self) -> &'a Executor {
        self.exec
    }

    /// Named form of [`Executor::for_each_chunk`].
    pub fn for_each_chunk<S, MkS, F>(&self, n: usize, make_scratch: MkS, body: F)
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) + Sync,
    {
        if let Err(e) = self.try_for_each_chunk(n, make_scratch, |w, s, r| {
            body(w, s, r);
            Ok(())
        }) {
            e.raise();
        }
    }

    /// Named form of [`Executor::try_for_each_chunk`].
    pub fn try_for_each_chunk<S, MkS, F>(
        &self,
        n: usize,
        make_scratch: MkS,
        body: F,
    ) -> Result<(), ParError>
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) -> Result<(), ParError> + Sync,
    {
        let ranges = split_even(n, self.exec.num_workers());
        self.exec
            .try_run_ranges(self.name, ranges, make_scratch, body)
    }

    /// Named form of [`Executor::for_each_chunk_weighted`].
    pub fn for_each_chunk_weighted<S, MkS, F>(
        &self,
        weight_prefix: &[u64],
        make_scratch: MkS,
        body: F,
    ) where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) + Sync,
    {
        if let Err(e) = self.try_for_each_chunk_weighted(weight_prefix, make_scratch, |w, s, r| {
            body(w, s, r);
            Ok(())
        }) {
            e.raise();
        }
    }

    /// Named form of [`Executor::try_for_each_chunk_weighted`].
    pub fn try_for_each_chunk_weighted<S, MkS, F>(
        &self,
        weight_prefix: &[u64],
        make_scratch: MkS,
        body: F,
    ) -> Result<(), ParError>
    where
        S: Send,
        MkS: Fn() -> S + Sync,
        F: Fn(usize, &mut S, Range<usize>) -> Result<(), ParError> + Sync,
    {
        let ranges = chunks::split_weighted(weight_prefix, self.exec.num_workers());
        self.exec
            .try_run_ranges(self.name, ranges, make_scratch, body)
    }

    /// Named form of [`Executor::for_each_index`].
    pub fn for_each_index<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_chunk(
            n,
            || (),
            |_, _, range| {
                for i in range {
                    body(i);
                }
            },
        );
    }

    /// Named form of [`Executor::try_for_each_index`].
    pub fn try_for_each_index<F>(&self, n: usize, body: F) -> Result<(), ParError>
    where
        F: Fn(usize) -> Result<(), ParError> + Sync,
    {
        self.try_for_each_chunk(
            n,
            || (),
            |_, _, range| {
                for i in range {
                    body(i)?;
                }
                Ok(())
            },
        )
    }

    /// Named form of [`Executor::map_chunks`].
    pub fn map_chunks<T, F>(&self, n: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        match self.try_map_chunks(n, |w, range| Ok(body(w, range))) {
            Ok(v) => v,
            Err(e) => e.raise(),
        }
    }

    /// Named form of [`Executor::try_map_chunks`].
    pub fn try_map_chunks<T, F>(&self, n: usize, body: F) -> Result<Vec<T>, ParError>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> Result<T, ParError> + Sync,
    {
        let p = self.exec.num_workers();
        let slots: Vec<Mutex<Option<T>>> = (0..p).map(|_| Mutex::new(None)).collect();
        self.try_for_each_chunk(
            n,
            || (),
            |w, _, range| {
                *slots[w].lock() = Some(body(w, range)?);
                Ok(())
            },
        )?;
        Ok(slots.into_iter().filter_map(|s| s.into_inner()).collect())
    }

    /// Named form of [`Executor::map_chunks_weighted`].
    pub fn map_chunks_weighted<T, F>(&self, weight_prefix: &[u64], body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        match self.try_map_chunks_weighted(weight_prefix, |w, range| Ok(body(w, range))) {
            Ok(v) => v,
            Err(e) => e.raise(),
        }
    }

    /// Named form of [`Executor::try_map_chunks_weighted`].
    pub fn try_map_chunks_weighted<T, F>(
        &self,
        weight_prefix: &[u64],
        body: F,
    ) -> Result<Vec<T>, ParError>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> Result<T, ParError> + Sync,
    {
        let p = self.exec.num_workers();
        let slots: Vec<Mutex<Option<T>>> = (0..p).map(|_| Mutex::new(None)).collect();
        self.try_for_each_chunk_weighted(
            weight_prefix,
            || (),
            |w, _, range| {
                *slots[w].lock() = Some(body(w, range)?);
                Ok(())
            },
        )?;
        Ok(slots.into_iter().filter_map(|s| s.into_inner()).collect())
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Executor({}, p={})",
            self.mode_name(),
            self.num_workers()
        )
    }
}

impl std::fmt::Debug for Region<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Region({:?}, {:?})", self.name, self.exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sum_with(exec: &Executor, n: usize) -> usize {
        let acc = AtomicUsize::new(0);
        exec.for_each_index(n, |i| {
            acc.fetch_add(i, Ordering::Relaxed);
        });
        acc.into_inner()
    }

    #[test]
    fn all_modes_visit_every_index_once() {
        let n = 1000;
        let expected = n * (n - 1) / 2;
        assert_eq!(sum_with(&Executor::sequential(), n), expected);
        assert_eq!(sum_with(&Executor::rayon(4), n), expected);
        assert_eq!(sum_with(&Executor::simulated(4), n), expected);
        assert_eq!(sum_with(&Executor::assist(4), n), expected);
    }

    #[test]
    fn zero_length_region_is_noop() {
        for exec in [
            Executor::sequential(),
            Executor::rayon(2),
            Executor::simulated(3),
            Executor::assist(2),
        ] {
            assert_eq!(sum_with(&exec, 0), 0);
        }
    }

    #[test]
    fn worker_counts() {
        assert_eq!(Executor::sequential().num_workers(), 1);
        assert_eq!(Executor::rayon(3).num_workers(), 3);
        assert_eq!(Executor::simulated(7).num_workers(), 7);
        assert_eq!(Executor::assist(5).num_workers(), 5);
        assert!(Executor::simulated(7).is_simulated());
        assert!(!Executor::rayon(2).is_simulated());
        assert!(!Executor::assist(2).is_simulated());
        assert_eq!(Executor::assist(2).mode_name(), "assist");
    }

    #[test]
    fn map_chunks_returns_in_chunk_order() {
        let exec = Executor::simulated(4);
        let starts = exec.map_chunks(10, |_, range| range.start);
        assert_eq!(starts.len(), 4);
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn map_chunks_skips_empty_chunks() {
        let exec = Executor::rayon(8);
        let vals = exec.map_chunks(3, |_, range| range.len());
        assert_eq!(vals.iter().sum::<usize>(), 3);
        assert!(vals.len() <= 3);
    }

    #[test]
    fn scratch_is_per_chunk() {
        let exec = Executor::rayon(4);
        let totals = Mutex::new(Vec::new());
        exec.for_each_chunk(
            100,
            || 0usize,
            |_, scratch, range| {
                for _ in range {
                    *scratch += 1;
                }
                totals.lock().push(*scratch);
            },
        );
        let totals = totals.into_inner();
        assert_eq!(totals.iter().sum::<usize>(), 100);
        assert_eq!(totals.len(), 4);
    }

    #[test]
    fn sim_stats_accumulate_and_reset() {
        let exec = Executor::simulated(4);
        exec.for_each_index(100, |_| {
            std::hint::black_box(0);
        });
        let st = exec.take_sim_stats();
        assert_eq!(st.regions, 1);
        assert!(st.measured >= st.charged);
        // Reset worked:
        assert_eq!(exec.take_sim_stats(), SimStats::default());
    }

    #[test]
    fn sim_time_reprices_regions() {
        let st = SimStats {
            charged: Duration::from_millis(10),
            measured: Duration::from_millis(40),
            regions: 1,
        };
        let wall = Duration::from_millis(100);
        assert_eq!(st.simulated_time(wall), Duration::from_millis(70));
        // Saturation: measured can exceed wall only through clock noise;
        // never panic.
        let st2 = SimStats {
            charged: Duration::ZERO,
            measured: Duration::from_millis(200),
            regions: 1,
        };
        assert_eq!(st2.simulated_time(wall), Duration::ZERO);
    }

    #[test]
    fn chunk_boundaries_identical_across_modes() {
        let record = |exec: &Executor| {
            let r = Mutex::new(Vec::new());
            exec.for_each_chunk(
                17,
                || (),
                |w, _, range| {
                    r.lock().push((w, range.start, range.end));
                },
            );
            let mut v = r.into_inner();
            v.sort_unstable();
            v
        };
        let a = record(&Executor::rayon(5));
        let b = record(&Executor::simulated(5));
        assert_eq!(a, b);
        let c = record(&Executor::assist(5));
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_rejected() {
        Executor::simulated(0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn executors() -> Vec<Executor> {
        vec![
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(4),
            Executor::assist(4),
        ]
    }

    #[test]
    fn try_constructors() {
        assert!(matches!(
            Executor::try_rayon(0),
            Err(BuildError::ZeroWorkers)
        ));
        assert!(matches!(
            Executor::try_simulated(0),
            Err(BuildError::ZeroWorkers)
        ));
        assert!(matches!(
            Executor::try_assist(0),
            Err(BuildError::ZeroWorkers)
        ));
        assert_eq!(Executor::try_rayon(2).unwrap().num_workers(), 2);
        assert_eq!(Executor::try_simulated(3).unwrap().num_workers(), 3);
        assert_eq!(Executor::try_assist(3).unwrap().num_workers(), 3);
    }

    #[test]
    fn panic_in_chunk_is_contained_in_all_modes() {
        for exec in executors() {
            let err = exec
                .try_for_each_chunk(
                    100,
                    || (),
                    |w, _, _range| {
                        if w == 0 {
                            panic!("chunk exploded");
                        }
                        Ok(())
                    },
                )
                .unwrap_err();
            match err {
                ParError::Panicked { worker, payload } => {
                    assert_eq!(worker, 0, "{}", exec.mode_name());
                    assert!(payload.contains("chunk exploded"));
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
            // The executor survives and runs a clean region afterwards.
            let acc = AtomicUsize::new(0);
            exec.try_for_each_index(50, |_| {
                acc.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .unwrap();
            assert_eq!(acc.into_inner(), 50, "{}", exec.mode_name());
        }
    }

    #[test]
    fn body_error_aborts_region_with_first_error() {
        for exec in executors() {
            let last = exec.num_workers() - 1;
            let err = exec
                .try_for_each_chunk(
                    100,
                    || (),
                    |w, _, _range| {
                        if w == last {
                            return Err(ParError::Cancelled);
                        }
                        Ok(())
                    },
                )
                .unwrap_err();
            assert_eq!(err, ParError::Cancelled, "{}", exec.mode_name());
        }
    }

    #[test]
    fn cancel_token_aborts_before_chunks() {
        for exec in executors() {
            let token = CancelToken::new();
            exec.set_cancel(token.clone());
            token.cancel();
            let ran = AtomicUsize::new(0);
            let err = exec
                .try_for_each_index(1000, |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                })
                .unwrap_err();
            assert_eq!(err, ParError::Cancelled, "{}", exec.mode_name());
            assert_eq!(ran.into_inner(), 0, "{}", exec.mode_name());
            // Clearing the token restores normal operation.
            exec.clear_cancel();
            exec.try_for_each_index(10, |_| Ok(())).unwrap();
        }
    }

    #[test]
    fn expired_deadline_aborts_region() {
        for exec in executors() {
            exec.set_deadline(Deadline::from_now(Duration::ZERO));
            let err = exec.try_for_each_index(1000, |_| Ok(())).unwrap_err();
            assert_eq!(err, ParError::DeadlineExceeded, "{}", exec.mode_name());
            exec.clear_deadline();
            exec.try_for_each_index(10, |_| Ok(())).unwrap();
        }
    }

    #[test]
    fn checkpoint_observes_cancel_and_deadline() {
        let exec = Executor::sequential();
        assert_eq!(exec.checkpoint(), Ok(()));
        let token = CancelToken::new();
        exec.set_cancel(token.clone());
        assert_eq!(exec.checkpoint(), Ok(()));
        token.cancel();
        assert_eq!(exec.checkpoint(), Err(ParError::Cancelled));
        exec.clear_cancel();
        exec.set_deadline(Deadline::from_now(Duration::ZERO));
        assert_eq!(exec.checkpoint(), Err(ParError::DeadlineExceeded));
        exec.clear_deadline();
        assert_eq!(exec.checkpoint(), Ok(()));
    }

    #[test]
    fn injected_panic_fires_at_planned_site_only() {
        for exec in executors() {
            exec.set_fault_plan(FaultPlan::new().inject(1, 0, Fault::Panic));
            // Region 0: clean.
            exec.try_for_each_index(10, |_| Ok(())).unwrap();
            // Region 1, chunk 0: injected panic.
            let err = exec.try_for_each_index(10, |_| Ok(())).unwrap_err();
            match err {
                ParError::Panicked { worker, payload } => {
                    assert_eq!(worker, 0, "{}", exec.mode_name());
                    assert!(payload.contains("injected fault"), "{payload}");
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
            // Region 2: the plan has no site here; clean again.
            exec.try_for_each_index(10, |_| Ok(())).unwrap();
            exec.clear_fault_plan();
        }
    }

    #[test]
    fn injected_cancel_trips_the_shared_token() {
        let exec = Executor::rayon(4);
        let token = CancelToken::new();
        exec.set_cancel(token.clone());
        exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Cancel));
        let err = exec.try_for_each_index(100, |_| Ok(())).unwrap_err();
        assert_eq!(err, ParError::Cancelled);
        assert!(token.is_cancelled());
    }

    #[test]
    fn injected_delay_does_not_fail_the_region() {
        let exec = Executor::simulated(4);
        exec.set_fault_plan(FaultPlan::new().inject(0, 2, Fault::Delay(100)));
        let acc = AtomicUsize::new(0);
        exec.try_for_each_index(100, |_| {
            acc.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(acc.into_inner(), 100);
        // The straggler chunk was charged to the simulated critical path.
        assert!(exec.take_sim_stats().charged >= Duration::from_micros(100));
    }

    #[test]
    fn installing_a_plan_resets_region_numbering() {
        let exec = Executor::sequential();
        exec.try_for_each_index(5, |_| Ok(())).unwrap();
        exec.try_for_each_index(5, |_| Ok(())).unwrap();
        // Region counter is at 2, but a fresh plan re-zeroes it, so a
        // region-0 site still fires.
        exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Panic));
        assert!(exec.try_for_each_index(5, |_| Ok(())).is_err());
    }

    #[test]
    fn crash_points_fire_at_scheduled_occurrence_only() {
        let exec = Executor::sequential();
        // No plan installed: polls are free and never fire.
        assert!(!exec.crash_point(CrashPoint::WalPreAppend));
        assert_eq!(exec.crashes_fired(), 0);

        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalMidRecord, 1));
        assert!(!exec.crash_point(CrashPoint::WalMidRecord)); // occurrence 0
        assert!(exec.crash_point(CrashPoint::WalMidRecord)); // occurrence 1
        assert!(!exec.crash_point(CrashPoint::WalMidRecord)); // occurrence 2
                                                              // Other points have independent occurrence counters.
        assert!(!exec.crash_point(CrashPoint::WalPreAppend));
        assert_eq!(exec.crashes_fired(), 1);

        // Installing a fresh plan resets occurrence numbering and the
        // fired count.
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::CkptPostRename, 0));
        assert_eq!(exec.crashes_fired(), 0);
        assert!(exec.crash_point(CrashPoint::CkptPostRename));
        assert_eq!(exec.crashes_fired(), 1);
        exec.clear_fault_plan();
        assert!(!exec.crash_point(CrashPoint::CkptPostRename));
    }

    #[test]
    fn fired_crashes_are_counted_in_metrics() {
        let exec = Executor::sequential().with_metrics();
        exec.set_fault_plan(FaultPlan::new().crash(CrashPoint::WalPreFsync, 0));
        assert!(exec.crash_point(CrashPoint::WalPreFsync));
        let m = exec.take_metrics();
        assert_eq!(m.get_counter("fault.crashes").unwrap().value, 1);
    }

    #[test]
    fn try_map_chunks_propagates_failure() {
        for exec in executors() {
            let last = exec.num_workers() - 1;
            let err = exec
                .try_map_chunks(100, |w, range| {
                    if w == last {
                        panic!("mapper died");
                    }
                    Ok(range.len())
                })
                .unwrap_err();
            assert!(matches!(err, ParError::Panicked { worker, .. } if worker == last));
            // Clean run afterwards returns complete results.
            let lens = exec
                .try_map_chunks(100, |_, range| Ok(range.len()))
                .unwrap();
            assert_eq!(lens.iter().sum::<usize>(), 100);
        }
    }

    #[test]
    fn infallible_wrapper_re_raises_contained_panic() {
        let exec = Executor::rayon(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.for_each_index(10, |i| {
                if i == 3 {
                    panic!("original message");
                }
            });
        }));
        let payload = caught.unwrap_err();
        let text = error::payload_to_string(&*payload);
        assert!(text.contains("original message"), "{text}");
        // Executor is still usable after the re-raise.
        let sums = exec.map_chunks(10, |_, r| r.len());
        assert_eq!(sums.iter().sum::<usize>(), 10);
    }
}

#[cfg(test)]
mod metrics_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn executors() -> Vec<Executor> {
        vec![
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(4),
            Executor::assist(4),
        ]
    }

    #[test]
    fn disabled_by_default_and_empty() {
        for exec in executors() {
            assert!(!exec.metrics_enabled());
            exec.region("x").for_each_index(100, |_| {});
            assert!(exec.take_metrics().is_empty(), "{}", exec.mode_name());
        }
    }

    #[test]
    fn named_regions_are_recorded_in_execution_order() {
        for exec in executors() {
            exec.set_metrics_enabled(true);
            exec.region("a.first").for_each_index(50, |_| {});
            exec.region("b.second").for_each_index(50, |_| {});
            exec.region("a.first").for_each_index(50, |_| {});
            let m = exec.take_metrics();
            let names: Vec<_> = m.regions.iter().map(|r| r.name).collect();
            assert_eq!(names, vec!["a.first", "b.second"], "{}", exec.mode_name());
            let a = m.get("a.first").unwrap();
            assert_eq!(a.invocations, 2);
            // (In assist mode `chunks` counts per-worker participation
            // spans — still at least one per invocation.)
            assert!(a.chunks >= 2, "{}", exec.mode_name());
            assert!(a.wall_ns > 0);
            assert!(a.chunk_max_ns <= a.chunk_sum_ns);
            assert!(a.chunk_min_ns <= a.chunk_max_ns);
            // take() reset the snapshot but kept recording enabled.
            assert!(exec.metrics_enabled());
            assert!(exec.take_metrics().is_empty());
        }
    }

    #[test]
    fn unnamed_entry_points_record_under_the_sentinel_name() {
        let exec = Executor::sequential().with_metrics();
        exec.for_each_index(10, |_| {});
        let m = exec.take_metrics();
        assert_eq!(m.regions.len(), 1);
        assert_eq!(m.regions[0].name, UNNAMED_REGION);
    }

    #[test]
    fn simulated_charged_equals_metrics_chunk_max() {
        let exec = Executor::simulated(4).with_metrics();
        for round in 0..3 {
            exec.region("work.round").for_each_index(5_000, |i| {
                std::hint::black_box(i * round);
            });
        }
        let sim = exec.take_sim_stats();
        let m = exec.take_metrics();
        // The two accountings share chunk clocks: exact agreement.
        assert_eq!(m.total_charged(), sim.charged);
        assert_eq!(
            Duration::from_nanos(m.regions.iter().map(|r| r.chunk_sum_ns).sum()),
            sim.measured
        );
        assert_eq!(
            m.regions
                .iter()
                .map(|r| r.invocations as usize)
                .sum::<usize>(),
            sim.regions
        );
    }

    #[test]
    fn checkpoint_polls_are_attributed_to_the_running_region() {
        let exec = Executor::sequential().with_metrics();
        exec.region("polling")
            .try_for_each_chunk(
                10,
                || (),
                |_, _, range| {
                    for _ in range {
                        exec.checkpoint()?;
                    }
                    Ok(())
                },
            )
            .unwrap();
        exec.region("silent").for_each_index(10, |_| {});
        let m = exec.take_metrics();
        assert_eq!(m.get("polling").unwrap().checkpoints, 10);
        assert_eq!(m.get("silent").unwrap().checkpoints, 0);
    }

    #[test]
    fn failures_and_faults_are_counted() {
        for exec in executors() {
            exec.set_metrics_enabled(true);
            // Injected panic.
            exec.set_fault_plan(FaultPlan::new().inject(0, 0, Fault::Panic));
            let _ = exec.region("faulty").try_for_each_index(100, |_| Ok(()));
            exec.clear_fault_plan();
            // Cancellation observed at a chunk boundary.
            let token = CancelToken::new();
            exec.set_cancel(token.clone());
            token.cancel();
            let _ = exec.region("aborted").try_for_each_index(100, |_| Ok(()));
            exec.clear_cancel();
            // Expired deadline.
            exec.set_deadline(Deadline::from_now(Duration::ZERO));
            let _ = exec.region("late").try_for_each_index(100, |_| Ok(()));
            exec.clear_deadline();

            let m = exec.take_metrics();
            let mode = exec.mode_name();
            let faulty = m.get("faulty").unwrap();
            assert_eq!(faulty.panicked, 1, "{mode}");
            assert_eq!(faulty.faults_injected, 1, "{mode}");
            assert_eq!(m.get("aborted").unwrap().cancelled, 1, "{mode}");
            assert_eq!(m.get("late").unwrap().deadline_exceeded, 1, "{mode}");
        }
    }

    #[test]
    fn imbalance_reflects_skewed_chunks() {
        // 4 chunks, one of which sleeps: the imbalance ratio must rise
        // well above 1.
        let exec = Executor::simulated(4).with_metrics();
        exec.region("skewed").for_each_chunk(
            4,
            || (),
            |w, _, _range| {
                if w == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
            },
        );
        let m = exec.take_metrics();
        let r = m.get("skewed").unwrap();
        assert_eq!(r.chunks, 4);
        assert!(r.imbalance() > 2.0, "imbalance {}", r.imbalance());
    }

    #[test]
    fn overhead_free_disabled_path_still_computes() {
        // Sanity: metrics disabled, named regions still execute correctly.
        let exec = Executor::rayon(4);
        let acc = AtomicUsize::new(0);
        exec.region("quiet").for_each_index(1000, |i| {
            acc.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(acc.into_inner(), 1000 * 999 / 2);
        assert!(exec.take_metrics().is_empty());
    }

    #[test]
    fn counters_and_gauges_record_into_metrics() {
        let exec = Executor::sequential().with_metrics();
        exec.add_counter("uf.cas_retries", 3);
        exec.add_counter("uf.cas_retries", 4);
        exec.add_counter("noop", 0); // zero deltas are dropped
        exec.gauge("pkc.frontier", 10);
        exec.gauge("pkc.frontier", 90);
        exec.gauge("pkc.frontier", 40);
        let m = exec.take_metrics();
        assert_eq!(m.get_counter("uf.cas_retries").unwrap().value, 7);
        assert_eq!(m.get_counter("uf.cas_retries").unwrap().kind, "sum");
        assert_eq!(m.get_counter("pkc.frontier").unwrap().value, 90);
        assert_eq!(m.get_counter("pkc.frontier").unwrap().kind, "max");
        assert!(m.get_counter("noop").is_none());
        // Disabled: counters are not recorded.
        let quiet = Executor::sequential();
        quiet.add_counter("x", 5);
        quiet.gauge("y", 5);
        assert!(quiet.take_metrics().is_empty());
    }

    #[test]
    fn region_handle_is_reusable_and_copy() {
        let exec = Executor::sequential().with_metrics();
        let region = exec.region("copy.me");
        let other = region; // Copy
        region.for_each_index(5, |_| {});
        other.for_each_index(5, |_| {});
        assert_eq!(region.name(), "copy.me");
        assert_eq!(region.executor().num_workers(), 1);
        let m = exec.take_metrics();
        assert_eq!(m.get("copy.me").unwrap().invocations, 2);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn executors() -> Vec<Executor> {
        vec![
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(4),
            Executor::assist(4),
        ]
    }

    #[test]
    fn disarmed_by_default_and_empty() {
        for exec in executors() {
            assert!(!exec.trace_armed());
            exec.region("quiet").for_each_index(100, |_| {});
            assert!(exec.take_trace().is_empty(), "{}", exec.mode_name());
        }
    }

    #[test]
    fn armed_trace_records_region_and_chunk_spans() {
        for exec in executors() {
            exec.arm_trace();
            exec.region("traced.region").for_each_index(1000, |_| {});
            exec.gauge("demo.gauge", 42);
            let trace = exec.take_trace();
            let mode = exec.mode_name();
            assert!(!exec.trace_armed(), "{mode}");
            assert_eq!(trace.dropped, 0, "{mode}");
            let enters: Vec<_> = trace.of_kind(EventKind::RegionEnter).collect();
            let exits: Vec<_> = trace.of_kind(EventKind::RegionExit).collect();
            assert_eq!(enters.len(), 1, "{mode}");
            assert_eq!(exits.len(), 1, "{mode}");
            assert_eq!(enters[0].name, "traced.region");
            assert_eq!(exits[0].value, 0, "clean region, {mode}");
            let begins = trace.of_kind(EventKind::ChunkBegin).count();
            let ends = trace.of_kind(EventKind::ChunkEnd).count();
            assert_eq!(begins, ends, "{mode}");
            assert_eq!(begins, exec.num_workers().min(1000), "{mode}");
            // Assist regions additionally sample the assisting-thread
            // gauge into the counter track once per region.
            let expected_counters = if mode == "assist" { 2 } else { 1 };
            assert_eq!(
                trace.of_kind(EventKind::Counter).count(),
                expected_counters,
                "{mode}"
            );
            // The executor is reusable; a fresh arm starts clean.
            exec.arm_trace();
            assert!(exec.trace_armed());
            assert!(exec.take_trace().is_empty(), "{mode}");
        }
    }

    #[test]
    fn chunk_spans_nest_inside_region_spans_per_mode() {
        for exec in executors() {
            exec.arm_trace();
            exec.region("nested").for_each_index(100, |_| {});
            let trace = exec.take_trace();
            let enter = trace.of_kind(EventKind::RegionEnter).next().unwrap().ts_ns;
            let exit = trace.of_kind(EventKind::RegionExit).next().unwrap().ts_ns;
            for e in trace
                .of_kind(EventKind::ChunkBegin)
                .chain(trace.of_kind(EventKind::ChunkEnd))
            {
                assert!(
                    enter <= e.ts_ns && e.ts_ns <= exit,
                    "{}: chunk event at {} outside region [{enter}, {exit}]",
                    exec.mode_name(),
                    e.ts_ns
                );
            }
        }
    }

    #[test]
    fn faults_and_failures_appear_in_the_trace() {
        let exec = Executor::simulated(4);
        exec.arm_trace();
        exec.set_fault_plan(FaultPlan::new().inject(0, 1, Fault::Panic));
        let err = exec.region("faulty").try_for_each_index(100, |_| Ok(()));
        assert!(err.is_err());
        let trace = exec.take_trace();
        let faults: Vec<_> = trace.of_kind(EventKind::Fault).collect();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].worker, 1);
        assert_eq!(faults[0].name, "faulty");
        let exit = trace.of_kind(EventKind::RegionExit).next().unwrap();
        assert_eq!(exit.value, 1, "failed region flagged");
        exec.clear_fault_plan();
    }

    #[test]
    fn checkpoints_are_traced_when_armed() {
        let exec = Executor::sequential();
        exec.arm_trace();
        exec.region("polling")
            .try_for_each_chunk(
                8,
                || (),
                |_, _, range| {
                    for _ in range {
                        exec.checkpoint()?;
                    }
                    Ok(())
                },
            )
            .unwrap();
        let trace = exec.take_trace();
        assert_eq!(trace.of_kind(EventKind::Checkpoint).count(), 8);
    }

    #[test]
    fn disarmed_tracing_leaves_sim_charged_identical_to_metrics() {
        // Acceptance gate: with tracing disarmed, the chunk hot path is
        // byte-for-byte PR 2's — the simulated charged time still equals
        // the metrics critical path exactly, which could not hold if the
        // disarmed path did per-chunk work outside the shared clocks.
        let exec = Executor::simulated(4).with_metrics();
        assert!(!exec.trace_armed());
        for _ in 0..5 {
            exec.region("hot.loop").for_each_index(10_000, |i| {
                std::hint::black_box(i);
            });
        }
        let sim = exec.take_sim_stats();
        let m = exec.take_metrics();
        assert_eq!(m.total_charged(), sim.charged);
        assert_eq!(
            Duration::from_nanos(m.regions.iter().map(|r| r.chunk_sum_ns).sum()),
            sim.measured
        );
    }

    #[test]
    fn armed_tracing_preserves_accounting_consistency() {
        // Tracing adds time (inside the chunk clocks), but both
        // accountings share those clocks, so they must still agree.
        let exec = Executor::simulated(4).with_metrics();
        exec.arm_trace();
        exec.region("traced.hot").for_each_index(10_000, |i| {
            std::hint::black_box(i);
        });
        let sim = exec.take_sim_stats();
        let m = exec.take_metrics();
        assert_eq!(m.total_charged(), sim.charged);
        assert!(!exec.take_trace().is_empty());
    }

    #[test]
    fn bounded_buffers_drop_oldest_but_count_them() {
        let exec = Executor::sequential();
        exec.arm_trace_with_capacity(16);
        for _ in 0..100 {
            exec.region("wrap").for_each_index(1, |_| {});
        }
        let trace = exec.take_trace();
        // 100 regions x 4 events (enter, chunk begin/end, exit) = 400.
        assert_eq!(trace.events.len(), 16);
        assert_eq!(trace.dropped, 384);
    }

    #[test]
    fn chrome_export_of_real_run_is_well_formed() {
        let exec = Executor::rayon(3);
        exec.arm_trace();
        let acc = AtomicUsize::new(0);
        exec.region("export.me").for_each_index(300, |_| {
            acc.fetch_add(1, Ordering::Relaxed);
        });
        exec.gauge("export.gauge", 7);
        let json = exec.take_trace().to_chrome_json();
        assert!(json.contains("\"schema\": \"hcd-trace-v1\""));
        assert!(json.contains("\"export.me\""));
        assert!(json.contains("\"worker-"));
        assert!(json.contains("\"ph\": \"C\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
