//! Work-assisting self-scheduling pool backing `Mode::Assist`.
//!
//! The static modes pre-assign chunk `w` to worker `w`; on skewed
//! regions the busiest worker's span caps speedup (the imbalance ratio
//! `RunMetrics` measures). Work assisting removes that cap without
//! changing the chunk table: a region *publishes* its loop descriptor —
//! region id, an atomic next-chunk cursor, and the chunk table — into a
//! fixed-size shared **assist array**, then self-schedules chunks from
//! its own loop by claiming cursor positions. Pool workers that have
//! nothing to do scan the array, join the **busiest** live loop (most
//! unclaimed chunks), and claim chunks from the same cursor instead of
//! parking. Greedy self-scheduling bounds the busiest worker's span by
//! `avg + max single chunk`, which static pre-assignment cannot.
//!
//! Everything the executor promises per chunk is preserved, because the
//! chunk *runner* is unchanged — only *which thread* runs a chunk moves:
//!
//! * chunk boundaries are the same `split_even`/`split_weighted` tables
//!   as every other mode, so granularity-dependent algorithm counters
//!   stay mode-independent;
//! * a `(region, chunk)` fault site fires exactly once, because each
//!   cursor position is claimed exactly once;
//! * cancellation/deadline polls, panic containment, and
//!   first-failure-wins all live inside the runner.
//!
//! The one accounting difference: in assist mode `ChunkStats` records
//! per-worker *participation spans* (each participant's total busy time
//! in the region) instead of per-chunk durations. `chunk_sum_ns` is
//! unchanged (spans partition the same work), while the imbalance ratio
//! becomes a measure of scheduler-achieved per-worker balance — the
//! quantity work assisting actually improves.
//!
//! # Memory-safety protocol
//!
//! The chunk runner and the span sink borrow the publishing frame, but
//! pool workers are `'static` threads, so `LoopJob` holds type-erased
//! raw pointers. Soundness rests on a strict quiescence protocol:
//!
//! 1. assistants register (`inside += 1`) *under the slot lock* while
//!    the job is still published;
//! 2. the owner unpublishes the slot (no new registrations), then waits
//!    until `pending == 0 && inside == 0` before returning;
//! 3. assistants touch the borrowed pointers only between registration
//!    and their `inside -= 1` (the span record happens before it).
//!
//! The nightly miri lane (`cargo miri test -p hcd-par --lib assist`)
//! vets this protocol and the claim-cursor atomics.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::BuildError;
use crate::metrics::ChunkStats;

/// Capacity of the shared assist array: the maximum number of
/// concurrently published loops (concurrent regions on one executor,
/// e.g. a serving writer rebuilding while readers answer batches, plus
/// nested regions). A region that finds the array full simply runs
/// unassisted — correctness never depends on publication.
pub(crate) const ASSIST_SLOTS: usize = 8;

/// Configuration for [`Executor::try_assist_with`].
///
/// [`Executor::try_assist_with`]: crate::Executor::try_assist_with
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    workers: usize,
    pin_threads: bool,
}

impl ExecutorConfig {
    /// Configuration for `workers` logical workers, pinning disabled.
    pub fn new(workers: usize) -> Self {
        ExecutorConfig {
            workers,
            pin_threads: false,
        }
    }

    /// Requests pinning each pool worker to a core (worker `i` to CPU
    /// `i mod cores`) via `sched_setaffinity`. Where the syscall is
    /// unavailable (non-Linux, non-x86-64, miri) or fails, the worker
    /// runs unpinned and the fallback is counted — never an error.
    pub fn pin_threads(mut self, on: bool) -> Self {
        self.pin_threads = on;
        self
    }

    /// The configured logical worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether thread pinning was requested.
    pub fn pinning(&self) -> bool {
        self.pin_threads
    }
}

/// Per-region outcome the executor folds into counters and the
/// assisting-thread gauge.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RunOutcome {
    /// Non-empty chunks executed by assistants (threads other than the
    /// publishing owner).
    pub(crate) steals: u64,
    /// Failed `compare_exchange` attempts while claiming cursor
    /// positions.
    pub(crate) cas_retries: u64,
    /// High-water mark of threads simultaneously inside the loop
    /// (owner included).
    pub(crate) max_assisting: usize,
}

// --- thread pinning ---------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PinOutcome {
    Pinned,
    Fallback,
}

/// Pins the calling thread to one CPU. The workspace has no libc
/// dependency (offline shims only), so on x86-64 Linux this is the raw
/// `sched_setaffinity` syscall; everywhere else it reports a fallback
/// and the caller proceeds unpinned.
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
fn pin_current_thread(cpu: usize) -> PinOutcome {
    const SYS_SCHED_SETAFFINITY: usize = 203;
    let mut mask = [0u64; 16]; // up to 1024 CPUs
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    let cpu = cpu % cores.min(mask.len() * 64);
    mask[cpu / 64] |= 1 << (cpu % 64);
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY as isize => ret,
            in("rdi") 0usize, // pid 0 = calling thread
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret == 0 {
        PinOutcome::Pinned
    } else {
        PinOutcome::Fallback
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
fn pin_current_thread(_cpu: usize) -> PinOutcome {
    PinOutcome::Fallback
}

// --- loop descriptor ---------------------------------------------------

/// Type-erased chunk runner borrowed from the publishing frame. Safe to
/// send to pool workers only under the quiescence protocol (module
/// docs).
struct ErasedRunner(*const (dyn Fn(usize, Range<usize>) + Sync));
unsafe impl Send for ErasedRunner {}
unsafe impl Sync for ErasedRunner {}

/// Erases the borrow's lifetime (a raw `*const dyn` defaults to
/// `+ 'static`, so a plain cast is rejected).
///
/// # Safety
///
/// The caller must keep the referent alive for as long as the returned
/// pointer can be dereferenced — here, until `wait_quiesced` returns.
unsafe fn erase_runner<'a>(
    f: &'a (dyn Fn(usize, Range<usize>) + Sync + 'a),
) -> *const (dyn Fn(usize, Range<usize>) + Sync + 'static) {
    std::mem::transmute(f as *const (dyn Fn(usize, Range<usize>) + Sync + 'a))
}

/// Type-erased span sink (`None` when the region is untimed).
struct ErasedSpans(Option<*const ChunkStats>);
unsafe impl Send for ErasedSpans {}
unsafe impl Sync for ErasedSpans {}

/// One published loop-parallel activity: everything another worker
/// needs to assist it.
struct LoopJob {
    /// Executor-scoped region index (the same number fault sites use).
    #[allow(dead_code)]
    region: usize,
    /// The static chunk table — identical to every other mode.
    ranges: Vec<Range<usize>>,
    /// Next unclaimed cursor position.
    cursor: AtomicUsize,
    /// Chunks (including empty ones) not yet completed.
    pending: AtomicUsize,
    /// Threads currently claiming from this loop (owner included).
    assisting: AtomicUsize,
    max_assisting: AtomicUsize,
    steals: AtomicU64,
    cas_retries: AtomicU64,
    /// Assistants that may still touch the borrowed pointers below.
    inside: AtomicUsize,
    run: ErasedRunner,
    spans: ErasedSpans,
    /// Owner's completion wait: signalled on last-chunk completion and
    /// on every assistant leave.
    done: Mutex<()>,
    done_cv: Condvar,
}

impl LoopJob {
    /// # Safety
    ///
    /// `run` and `spans` must outlive the job's last use: the creator
    /// must not let them die before `wait_quiesced` has returned.
    unsafe fn new(
        region: usize,
        ranges: Vec<Range<usize>>,
        run: &(dyn Fn(usize, Range<usize>) + Sync),
        spans: Option<&ChunkStats>,
    ) -> LoopJob {
        let pending = ranges.len();
        LoopJob {
            region,
            ranges,
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(pending),
            assisting: AtomicUsize::new(0),
            max_assisting: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
            inside: AtomicUsize::new(0),
            run: ErasedRunner(erase_runner(run)),
            spans: ErasedSpans(spans.map(|s| s as *const _)),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Unclaimed cursor positions left.
    fn remaining(&self) -> usize {
        self.ranges
            .len()
            .saturating_sub(self.cursor.load(Ordering::Relaxed))
    }

    /// Claims the next cursor position, or `None` when the loop is
    /// exhausted. A CAS loop (not `fetch_add`) so the cursor never
    /// overshoots the table and contention is observable as retries.
    fn claim(&self) -> Option<usize> {
        let mut cur = self.cursor.load(Ordering::Relaxed);
        loop {
            if cur >= self.ranges.len() {
                return None;
            }
            match self.cursor.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(cur),
                Err(actual) => {
                    self.cas_retries.fetch_add(1, Ordering::Relaxed);
                    cur = actual;
                }
            }
        }
    }

    /// Marks one claimed chunk complete; wakes the owner on the last.
    /// The `AcqRel` decrement is what publishes chunk results to the
    /// owner's `Acquire` read in `wait_quiesced`.
    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.done.lock().unwrap();
            self.done_cv.notify_all();
        }
    }

    /// Claims and runs chunks until the cursor is exhausted, recording
    /// this thread's participation span. `owner` distinguishes the
    /// publisher (its claims are not steals) from assistants.
    fn drain(&self, owner: bool) {
        let now = self.assisting.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_assisting.fetch_max(now, Ordering::Relaxed);
        let mut span_ns = 0u64;
        let mut ran = false;
        while let Some(i) = self.claim() {
            let range = self.ranges[i].clone();
            if range.is_empty() {
                // Empty chunks are skipped in every mode: no runner
                // call, no fault site, no trace span.
                self.complete_one();
                continue;
            }
            if !owner {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            // Safety: quiescence protocol (module docs) — the referent
            // is alive until the owner has seen us leave.
            let run = unsafe { &*self.run.0 };
            if self.spans.0.is_some() {
                let t0 = Instant::now();
                run(i, range);
                span_ns = span_ns
                    .saturating_add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            } else {
                run(i, range);
            }
            ran = true;
            self.complete_one();
        }
        self.assisting.fetch_sub(1, Ordering::Relaxed);
        if ran {
            if let Some(spans) = self.spans.0 {
                // Safety: as above; recorded before the assistant's
                // `leave`, so it happens-before the owner's return.
                unsafe { (*spans).record(Duration::from_nanos(span_ns.max(1))) };
            }
        }
    }

    /// Assistant exit: the last borrowed-pointer touch was before this.
    fn leave(&self) {
        if self.inside.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.done.lock().unwrap();
            self.done_cv.notify_all();
        }
    }

    /// Owner-side barrier: returns once every chunk is complete and no
    /// assistant can still touch the borrowed pointers.
    fn wait_quiesced(&self) {
        let mut g = self.done.lock().unwrap();
        while self.pending.load(Ordering::Acquire) != 0 || self.inside.load(Ordering::Acquire) != 0
        {
            g = self.done_cv.wait(g).unwrap();
        }
    }
}

// --- the shared assist array and worker pool ---------------------------

struct Slot {
    job: Mutex<Option<Arc<LoopJob>>>,
}

struct Shared {
    slots: Vec<Slot>,
    shutdown: AtomicBool,
    /// Park gate: a version counter bumped (under the lock) on every
    /// publish, cascade wake, and shutdown, so a worker that scanned
    /// emptily can detect a publish that raced with its decision to
    /// park.
    gate: Mutex<u64>,
    gate_cv: Condvar,
    pin_requested: bool,
    pin_fallbacks: AtomicUsize,
    ready: AtomicUsize,
}

impl Shared {
    fn new(pin_requested: bool) -> Shared {
        Shared {
            slots: (0..ASSIST_SLOTS)
                .map(|_| Slot {
                    job: Mutex::new(None),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            gate: Mutex::new(0),
            gate_cv: Condvar::new(),
            pin_requested,
            pin_fallbacks: AtomicUsize::new(0),
            ready: AtomicUsize::new(0),
        }
    }

    /// Publishes a loop into a free slot, waking one parked worker.
    /// `None` (array full) means the owner runs unassisted.
    fn publish(&self, job: &Arc<LoopJob>) -> Option<usize> {
        for (i, slot) in self.slots.iter().enumerate() {
            let mut g = slot.job.lock().unwrap();
            if g.is_none() {
                *g = Some(Arc::clone(job));
                drop(g);
                self.wake_one();
                return Some(i);
            }
        }
        None
    }

    fn unpublish(&self, slot: usize) {
        *self.slots[slot].job.lock().unwrap() = None;
    }

    fn wake_one(&self) {
        let mut v = self.gate.lock().unwrap();
        *v += 1;
        self.gate_cv.notify_one();
    }

    fn wake_all(&self) {
        let mut v = self.gate.lock().unwrap();
        *v += 1;
        self.gate_cv.notify_all();
    }

    /// Scans the assist array and joins the busiest live loop (most
    /// unclaimed chunks), registering under the slot lock so the owner
    /// cannot miss this assistant when it unpublishes.
    fn pick_and_enter(&self) -> Option<Arc<LoopJob>> {
        loop {
            let mut best: Option<(usize, usize)> = None; // (remaining, slot)
            for (i, slot) in self.slots.iter().enumerate() {
                let g = slot.job.lock().unwrap();
                if let Some(job) = g.as_ref() {
                    let rem = job.remaining();
                    if rem > 0 && best.map_or(true, |(brem, _)| rem > brem) {
                        best = Some((rem, i));
                    }
                }
            }
            let (_, i) = best?;
            let g = self.slots[i].job.lock().unwrap();
            if let Some(job) = g.as_ref() {
                if job.remaining() > 0 {
                    job.inside.fetch_add(1, Ordering::AcqRel);
                    return Some(Arc::clone(job));
                }
            }
            // The chosen loop drained or was unpublished between the two
            // passes; rescan (terminates: either a candidate survives or
            // the scan comes up empty and we park).
        }
    }
}

fn worker_main(shared: Arc<Shared>, idx: usize) {
    if shared.pin_requested && pin_current_thread(idx) == PinOutcome::Fallback {
        shared.pin_fallbacks.fetch_add(1, Ordering::Relaxed);
    }
    let mut last_seen = {
        // Signal readiness under the gate so the constructor observes a
        // settled pin_fallbacks count before it returns.
        let g = shared.gate.lock().unwrap();
        shared.ready.fetch_add(1, Ordering::Release);
        shared.gate_cv.notify_all();
        *g
    };
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(job) = shared.pick_and_enter() {
            // Cascade wake: if there is more than one chunk left, another
            // parked worker can help too.
            if job.remaining() > 1 {
                shared.wake_one();
            }
            job.drain(false);
            job.leave();
            continue;
        }
        let mut g = shared.gate.lock().unwrap();
        if *g == last_seen && !shared.shutdown.load(Ordering::Acquire) {
            g = shared.gate_cv.wait(g).unwrap();
        }
        last_seen = *g;
    }
}

/// The dedicated worker pool behind one assist-mode executor.
pub(crate) struct AssistPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl AssistPool {
    pub(crate) fn new(workers: usize, pin_threads: bool) -> Result<AssistPool, BuildError> {
        if workers == 0 {
            return Err(BuildError::ZeroWorkers);
        }
        let shared = Arc::new(Shared::new(pin_threads));
        let mut threads = Vec::with_capacity(workers);
        for i in 0..workers {
            let s = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("hcd-assist-{i}"))
                .spawn(move || worker_main(s, i))
            {
                Ok(h) => threads.push(h),
                Err(e) => {
                    shared.shutdown.store(true, Ordering::Release);
                    shared.wake_all();
                    for t in threads {
                        let _ = t.join();
                    }
                    return Err(BuildError::Pool(e.to_string()));
                }
            }
        }
        // Wait for every worker to pin (or fall back) and report in.
        {
            let mut g = shared.gate.lock().unwrap();
            while shared.ready.load(Ordering::Acquire) < workers {
                g = shared.gate_cv.wait(g).unwrap();
            }
        }
        Ok(AssistPool { shared, threads })
    }

    /// Workers that requested pinning but run unpinned (0 when pinning
    /// was not requested or succeeded everywhere).
    pub(crate) fn pin_fallbacks(&self) -> usize {
        self.shared.pin_fallbacks.load(Ordering::Relaxed)
    }

    /// Runs one region: publishes the loop descriptor, self-schedules
    /// chunks on the calling thread, and returns once every chunk is
    /// done and all assistants have left. `spans` (present iff the
    /// region is timed) receives one participation span per thread that
    /// ran at least one chunk.
    pub(crate) fn run(
        &self,
        region: usize,
        ranges: Vec<Range<usize>>,
        run_chunk: &(dyn Fn(usize, Range<usize>) + Sync),
        spans: Option<&ChunkStats>,
    ) -> RunOutcome {
        let nonempty = ranges.iter().filter(|r| !r.is_empty()).count();
        if nonempty == 0 {
            return RunOutcome::default();
        }
        // Safety: we wait for quiescence below before `run_chunk` and
        // `spans` go out of scope.
        let job = Arc::new(unsafe { LoopJob::new(region, ranges, run_chunk, spans) });
        // A single-chunk loop has nothing to share; skip the publish
        // and the worker wakeup.
        let slot = if nonempty > 1 {
            self.shared.publish(&job)
        } else {
            None
        };
        job.drain(true);
        if let Some(slot) = slot {
            self.shared.unpublish(slot);
        }
        job.wait_quiesced();
        RunOutcome {
            steals: job.steals.load(Ordering::Relaxed),
            cas_retries: job.cas_retries.load(Ordering::Relaxed),
            max_assisting: job.max_assisting.load(Ordering::Relaxed),
        }
    }
}

impl Drop for AssistPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildError, Executor, ExecutorConfig, ParError};
    use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

    /// Loop sizes shrink under miri so the nightly
    /// `cargo miri test -p hcd-par --lib assist` lane stays fast while
    /// still exercising the claim-cursor and assist-array atomics.
    const N: usize = if cfg!(miri) { 96 } else { 10_000 };

    #[test]
    fn assist_visits_every_index_exactly_once() {
        let exec = Executor::assist(4);
        let visits: Vec<AtomicU8> = (0..N).map(|_| AtomicU8::new(0)).collect();
        exec.for_each_index(N, |i| {
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(visits.iter().all(|v| v.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn assist_claim_cursor_is_exclusive_under_contention() {
        // Hammer one LoopJob's cursor from several threads directly:
        // every position claimed exactly once, pending drains to zero,
        // and the cursor never exceeds the table.
        let chunks = if cfg!(miri) { 64 } else { 4096 };
        let ranges: Vec<Range<usize>> = (0..chunks).map(|i| i..i + 1).collect();
        let runner = |_: usize, _: Range<usize>| {};
        let job = unsafe { LoopJob::new(0, ranges, &runner, None) };
        let seen: Vec<AtomicU8> = (0..chunks).map(|_| AtomicU8::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(i) = job.claim() {
                        seen[i].fetch_add(1, Ordering::Relaxed);
                        job.complete_one();
                    }
                });
            }
        });
        assert!(seen.iter().all(|v| v.load(Ordering::Relaxed) == 1));
        assert_eq!(job.pending.load(Ordering::Relaxed), 0);
        assert_eq!(job.cursor.load(Ordering::Relaxed), chunks);
    }

    #[test]
    fn assist_array_prefers_the_busiest_live_loop() {
        let shared = Shared::new(false);
        let runner = |_: usize, _: Range<usize>| {};
        let small =
            Arc::new(unsafe { LoopJob::new(0, (0..2).map(|i| i..i + 1).collect(), &runner, None) });
        let big =
            Arc::new(unsafe { LoopJob::new(1, (0..9).map(|i| i..i + 1).collect(), &runner, None) });
        shared.publish(&small);
        shared.publish(&big);
        let picked = shared.pick_and_enter().unwrap();
        assert!(Arc::ptr_eq(&picked, &big), "must join the busiest loop");
        picked.leave();
        // Drain the big loop; the next scan must fall over to the small
        // one, and an empty array must yield None.
        while big.claim().is_some() {}
        let picked = shared.pick_and_enter().unwrap();
        assert!(Arc::ptr_eq(&picked, &small));
        picked.leave();
        while small.claim().is_some() {}
        assert!(shared.pick_and_enter().is_none());
    }

    #[test]
    fn assist_concurrent_regions_on_one_executor() {
        // Two owner threads publish simultaneously: both loops live in
        // the assist array at once, both complete exactly.
        let exec = Executor::assist(2);
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                exec.for_each_index(N, |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                });
            });
            s.spawn(|| {
                exec.for_each_index(N, |_| {
                    b.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(a.into_inner(), N);
        assert_eq!(b.into_inner(), N);
    }

    #[test]
    fn assist_records_spans_counters_and_gauge() {
        let exec = Executor::assist(4).with_metrics();
        exec.region("assist.demo").for_each_index(N, |i| {
            std::hint::black_box(i);
        });
        let m = exec.take_metrics();
        let r = m.get("assist.demo").unwrap();
        // Chunk stats are per-worker participation spans: at least the
        // owner, at most owner + 4 pool workers.
        assert!(r.chunks >= 1 && r.chunks <= 5, "spans {}", r.chunks);
        assert!(r.chunk_sum_ns > 0);
        assert!(r.chunk_max_ns <= r.chunk_sum_ns);
        let gauge = m.get_counter("par.assist.assisting_threads").unwrap();
        assert_eq!(gauge.kind, "max");
        assert!(gauge.value >= 1 && gauge.value <= 5);
        // Steal/retry counters are scheduling-dependent; when present
        // they are monotone sums.
        for name in ["par.assist.steals", "par.assist.claim_cas_retries"] {
            if let Some(c) = m.get_counter(name) {
                assert_eq!(c.kind, "sum", "{name}");
            }
        }
    }

    #[test]
    fn assist_panic_containment_and_reuse() {
        let exec = Executor::assist(4);
        let err = exec
            .try_for_each_chunk(
                N,
                || (),
                |w, _, _range| {
                    if w == 1 {
                        panic!("assist chunk exploded");
                    }
                    Ok(())
                },
            )
            .unwrap_err();
        match err {
            ParError::Panicked { worker, payload } => {
                assert_eq!(worker, 1);
                assert!(payload.contains("assist chunk exploded"));
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The pool survives and the executor stays usable.
        let acc = AtomicUsize::new(0);
        exec.try_for_each_index(N, |_| {
            acc.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(acc.into_inner(), N);
    }

    #[test]
    fn assist_pin_threads_degrades_gracefully() {
        let exec = Executor::try_assist_with(ExecutorConfig::new(3).pin_threads(true)).unwrap();
        let acc = AtomicUsize::new(0);
        exec.for_each_index(N, |_| {
            acc.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(acc.into_inner(), N);
        // Each worker either pinned or fell back; never an error.
        assert!(exec.pin_fallbacks() <= 3);
        // Without the flag, no fallbacks are ever reported.
        let unpinned = Executor::assist(2);
        assert_eq!(unpinned.pin_fallbacks(), 0);
    }

    #[test]
    fn assist_zero_workers_rejected() {
        assert!(matches!(
            Executor::try_assist(0),
            Err(BuildError::ZeroWorkers)
        ));
        assert!(matches!(
            Executor::try_assist_with(ExecutorConfig::new(0)),
            Err(BuildError::ZeroWorkers)
        ));
    }

    #[test]
    fn assist_chunk_table_matches_static_modes() {
        let record = |exec: &Executor| {
            let r = std::sync::Mutex::new(Vec::new());
            exec.for_each_chunk(
                17,
                || (),
                |w, _, range| {
                    r.lock().unwrap().push((w, range.start, range.end));
                },
            );
            let mut v = r.into_inner().unwrap();
            v.sort_unstable();
            v
        };
        assert_eq!(
            record(&Executor::assist(5)),
            record(&Executor::simulated(5))
        );
    }
}
