//! Cooperative cancellation, deadlines, and deterministic fault
//! injection for parallel regions.
//!
//! All three are *cooperative*: they are observed at chunk boundaries
//! (every chunk of every region checks before running) and, inside long
//! chunk bodies, at coarse strides via
//! [`Executor::checkpoint`](crate::Executor::checkpoint). Nothing here
//! interrupts a running computation preemptively.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared flag for cooperative cancellation.
///
/// Clones share the same flag; any clone can cancel, and regions running
/// under an executor configured with the token abort at the next chunk
/// boundary or checkpoint with
/// [`ParError::Cancelled`](crate::ParError::Cancelled).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A wall-clock deadline, checked at the same points as [`CancelToken`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn from_now(timeout: Duration) -> Self {
        Deadline {
            at: Instant::now() + timeout,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: instant }
    }

    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero if already expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// A fault to inject at one `(region, chunk)` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the chunk body (exercises panic containment).
    Panic,
    /// Sleep this many microseconds before the body runs (exercises
    /// stragglers and deadline expiry).
    Delay(u64),
    /// Trip the executor's cancel token, as if an external caller had
    /// cancelled mid-region.
    Cancel,
}

/// A named IO boundary at which a [`FaultPlan`] can schedule a simulated
/// process crash. Crash points are *polled* by IO code (the serve
/// layer's WAL writer and checkpointer) via
/// [`Executor::crash_point`](crate::Executor::crash_point); when the
/// plan schedules a crash at the polled occurrence, the caller abandons
/// the write mid-flight exactly as a killed process would, leaving the
/// on-disk state torn for recovery to deal with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CrashPoint {
    /// Before any byte of a WAL record is written: the batch is lost
    /// entirely, the log is untouched.
    WalPreAppend,
    /// After a prefix of the record's bytes: the log ends in a torn
    /// record.
    WalMidRecord,
    /// After the record is fully written but before fsync: the bytes may
    /// never have reached the disk (simulated as page-cache loss).
    WalPreFsync,
    /// After the checkpoint temp file is written + fsynced but before
    /// the atomic rename: the old checkpoint remains current.
    CkptPreRename,
    /// After the rename publishes the new checkpoint: the checkpoint is
    /// durable, anything after it (acks, in-memory state) is lost.
    CkptPostRename,
}

impl CrashPoint {
    /// Every crash point, in WAL-then-checkpoint order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::WalPreAppend,
        CrashPoint::WalMidRecord,
        CrashPoint::WalPreFsync,
        CrashPoint::CkptPreRename,
        CrashPoint::CkptPostRename,
    ];

    /// Stable kebab-case name (CLI flag / harness label).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::WalPreAppend => "wal-pre-append",
            CrashPoint::WalMidRecord => "wal-mid-record",
            CrashPoint::WalPreFsync => "wal-pre-fsync",
            CrashPoint::CkptPreRename => "ckpt-pre-rename",
            CrashPoint::CkptPostRename => "ckpt-post-rename",
        }
    }

    /// Parses the kebab-case name produced by [`CrashPoint::name`].
    pub fn parse(s: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// A deterministic schedule of faults, keyed by `(region, chunk)`.
///
/// Regions are numbered in execution order from the moment the plan is
/// installed (installing a plan resets the executor's region counter);
/// chunks are numbered `0..p` within a region. The same plan against the
/// same algorithm and worker count therefore hits the same sites in
/// every mode — the injection points are mode-independent, like chunk
/// boundaries.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    sites: HashMap<(usize, usize), Fault>,
    /// Scheduled process-crash simulations, keyed by
    /// `(crash point, occurrence)`: the Nth time the point is polled
    /// since the plan was installed, the crash fires.
    crashes: HashSet<(CrashPoint, usize)>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault at `(region, chunk)`, replacing any previous fault at
    /// that site. Builder-style.
    pub fn inject(mut self, region: usize, chunk: usize, fault: Fault) -> Self {
        self.sites.insert((region, chunk), fault);
        self
    }

    /// A pseudo-random plan of `count` faults over the site grid
    /// `(0..regions) x (0..chunks)`, derived from `seed` (SplitMix64).
    /// The same seed always produces the same plan.
    pub fn seeded(seed: u64, regions: usize, chunks: usize, count: usize) -> Self {
        let mut plan = FaultPlan::new();
        if regions == 0 || chunks == 0 {
            return plan;
        }
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..count {
            let region = (next() % regions as u64) as usize;
            let chunk = (next() % chunks as u64) as usize;
            let fault = match next() % 3 {
                0 => Fault::Panic,
                1 => Fault::Delay(next() % 500),
                _ => Fault::Cancel,
            };
            plan.sites.insert((region, chunk), fault);
        }
        plan
    }

    /// The fault scheduled at `(region, chunk)`, if any.
    pub fn get(&self, region: usize, chunk: usize) -> Option<Fault> {
        self.sites.get(&(region, chunk)).copied()
    }

    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// All scheduled sites in deterministic (sorted) order.
    pub fn sites(&self) -> Vec<((usize, usize), Fault)> {
        let mut v: Vec<_> = self.sites.iter().map(|(&k, &f)| (k, f)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Schedules a simulated process crash at the `occurrence`-th poll
    /// (0-based) of `point`. Builder-style.
    pub fn crash(mut self, point: CrashPoint, occurrence: usize) -> Self {
        self.crashes.insert((point, occurrence));
        self
    }

    /// Whether a crash is scheduled at the given poll of `point`.
    pub fn crash_at(&self, point: CrashPoint, occurrence: usize) -> bool {
        self.crashes.contains(&(point, occurrence))
    }

    /// Whether any crash points are scheduled at all (fast path for the
    /// executor's poll).
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// All scheduled crash sites in deterministic (sorted) order.
    pub fn crash_sites(&self) -> Vec<(CrashPoint, usize)> {
        let mut v: Vec<_> = self.crashes.iter().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t2.is_cancelled());
    }

    #[test]
    fn deadline_expiry() {
        let past = Deadline::from_now(Duration::ZERO);
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
        let future = Deadline::from_now(Duration::from_secs(3600));
        assert!(!future.expired());
        assert!(future.remaining() > Duration::from_secs(3599));
        let abs = Deadline::at(Instant::now() + Duration::from_secs(10));
        assert!(!abs.expired());
    }

    #[test]
    fn plan_builder_and_lookup() {
        let plan = FaultPlan::new()
            .inject(0, 0, Fault::Panic)
            .inject(2, 1, Fault::Delay(50))
            .inject(0, 0, Fault::Cancel); // replaces
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.get(0, 0), Some(Fault::Cancel));
        assert_eq!(plan.get(2, 1), Some(Fault::Delay(50)));
        assert_eq!(plan.get(1, 0), None);
        assert_eq!(
            plan.sites(),
            vec![((0, 0), Fault::Cancel), ((2, 1), Fault::Delay(50))]
        );
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 8, 4, 6);
        let b = FaultPlan::seeded(42, 8, 4, 6);
        assert_eq!(a.sites(), b.sites());
        assert!(!a.is_empty());
        assert!(a.len() <= 6);
        for ((r, c), _) in a.sites() {
            assert!(r < 8 && c < 4);
        }
        let c = FaultPlan::seeded(43, 8, 4, 6);
        // Different seeds almost surely differ somewhere.
        assert_ne!(a.sites(), c.sites());
    }

    #[test]
    fn crash_sites_are_independent_of_chunk_sites() {
        let plan = FaultPlan::new()
            .inject(0, 0, Fault::Panic)
            .crash(CrashPoint::WalMidRecord, 2)
            .crash(CrashPoint::CkptPreRename, 0);
        assert!(plan.has_crashes());
        assert!(plan.crash_at(CrashPoint::WalMidRecord, 2));
        assert!(!plan.crash_at(CrashPoint::WalMidRecord, 1));
        assert!(!plan.crash_at(CrashPoint::WalPreFsync, 2));
        assert_eq!(
            plan.crash_sites(),
            vec![
                (CrashPoint::WalMidRecord, 2),
                (CrashPoint::CkptPreRename, 0)
            ]
        );
        // Chunk-site accounting is untouched by crash sites.
        assert_eq!(plan.len(), 1);
        assert!(!FaultPlan::new().has_crashes());
    }

    #[test]
    fn crash_point_names_round_trip() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(p.name()), Some(p));
        }
        assert_eq!(CrashPoint::parse("not-a-point"), None);
    }

    #[test]
    fn seeded_plan_handles_degenerate_grid() {
        assert!(FaultPlan::seeded(1, 0, 4, 10).is_empty());
        assert!(FaultPlan::seeded(1, 4, 0, 10).is_empty());
    }
}
