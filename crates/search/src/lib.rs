//! Subgraph search on the HCD (paper §IV).
//!
//! Given a graph, its core decomposition, and its HCD, find the k-core
//! with the highest score under a community scoring metric. Metrics are
//! functions of five *primary values* of a subgraph `S` (§II-D): `n(S)`,
//! `m(S)`, `b(S)` (boundary edges), `Δ(S)` (triangles), `t(S)` (triplets)
//! — metrics needing only the first three are **type-A**, the rest
//! **type-B**.
//!
//! * [`pbks()`](pbks::pbks) — **the paper's parallel algorithm** (Algorithms 3–5):
//!   vertex-centric contribution counting with lowest-vertex-rank motif
//!   attribution, followed by parallel bottom-up tree accumulation.
//!   Work-efficient: `O(n)` for type-A after `O(m)` preprocessing,
//!   `O(m^1.5)` for type-B.
//! * [`bks()`](bks::bks) — the serial baseline \[10\]: coreness-descending sweep over
//!   adjacency lists pre-sorted by coreness (the bin-sort vertex
//!   ordering whose parallelization problems motivated PBKS).
//! * [`densest`] — PBKS-D / Opt-D / CoreApp-style approximate densest
//!   subgraph (Table IV).
//! * [`clique`] — exact maximum clique (branch & bound with coreness
//!   pruning), used for Table IV's `MC ⊆ S*` column.
//! * [`bestk`] — the §VI extension: score entire k-core *sets* and pick
//!   the best `k`.

pub mod ablation;
pub mod accumulate;
pub mod bestk;
pub mod bks;
pub mod clique;
pub mod densest;
pub mod influence;
pub mod metrics;
pub mod pbks;
pub mod preprocess;

pub use accumulate::{accumulate_bottom_up, try_accumulate_bottom_up};
pub use bestk::{best_k, core_set_scores, try_best_k, try_core_set_scores};
pub use bks::bks;
pub use clique::max_clique;
pub use influence::InfluenceIndex;
pub use metrics::{score_cmp, Metric, MetricKind, PrimaryValues};
pub use pbks::{pbks, pbks_scores, try_pbks, try_pbks_on, try_pbks_scores, BestCore};
pub use preprocess::SearchContext;

#[cfg(test)]
pub(crate) mod testutil;

#[cfg(test)]
mod proptests;
