//! Preprocessing shared by all score computations (paper §IV-A).

use hcd_core::{Hcd, VertexRanks};
use hcd_decomp::CoreDecomposition;
use hcd_graph::{CsrGraph, VertexId};
use hcd_par::{Executor, ParError};

use crate::metrics::GraphTotals;

/// Everything the search algorithms need, precomputed once.
///
/// The paper's preprocessing stores, per vertex, the number of neighbors
/// of *greater* and of *equal* coreness, from which greater/equal/less
/// counts are answered instantly for any score computation. `O(m)` work,
/// executed in parallel, independent of the metric — this is the "lighter
/// preprocessing" that replaces BKS's full adjacency-list sort.
pub struct SearchContext<'a> {
    /// The graph.
    pub g: &'a CsrGraph,
    /// Its core decomposition.
    pub cores: &'a CoreDecomposition,
    /// Its HCD.
    pub hcd: &'a Hcd,
    /// The vertex-rank order (for lowest-rank motif attribution).
    pub ranks: VertexRanks,
    gt: Vec<u32>,
    eq: Vec<u32>,
}

impl<'a> SearchContext<'a> {
    /// Builds the context with a sequential pass (see
    /// [`SearchContext::with_executor`]).
    pub fn new(g: &'a CsrGraph, cores: &'a CoreDecomposition, hcd: &'a Hcd) -> Self {
        Self::with_executor(g, cores, hcd, &Executor::sequential())
    }

    /// Builds the context, running the `O(m)` neighbor-coreness counting
    /// and the rank computation under `exec`.
    pub fn with_executor(
        g: &'a CsrGraph,
        cores: &'a CoreDecomposition,
        hcd: &'a Hcd,
        exec: &Executor,
    ) -> Self {
        match Self::try_with_executor(g, cores, hcd, exec) {
            Ok(ctx) => ctx,
            Err(e) => e.raise(),
        }
    }

    /// Fallible version of [`SearchContext::with_executor`]: returns
    /// `Err` if the preprocessing panics, is cancelled, or exceeds the
    /// executor's deadline (see `hcd_par` failure model).
    pub fn try_with_executor(
        g: &'a CsrGraph,
        cores: &'a CoreDecomposition,
        hcd: &'a Hcd,
        exec: &Executor,
    ) -> Result<Self, ParError> {
        let n = g.num_vertices();
        let ranks = VertexRanks::try_compute(cores, exec)?;
        let mut gt = vec![0u32; n];
        let mut eq = vec![0u32; n];
        {
            struct SendPtr(*mut u32);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let gt_ptr = SendPtr(gt.as_mut_ptr());
            let eq_ptr = SendPtr(eq.as_mut_ptr());
            exec.region("search.preprocess").try_for_each_chunk(
                n,
                || (),
                |_, _, range| {
                    let _ = (&gt_ptr, &eq_ptr);
                    for v in range {
                        let c = cores.coreness(v as VertexId);
                        let mut g_cnt = 0u32;
                        let mut e_cnt = 0u32;
                        for &u in g.neighbors(v as VertexId) {
                            let cu = cores.coreness(u);
                            if cu > c {
                                g_cnt += 1;
                            } else if cu == c {
                                e_cnt += 1;
                            }
                        }
                        // SAFETY: each v is owned by exactly one chunk.
                        unsafe {
                            *gt_ptr.0.add(v) = g_cnt;
                            *eq_ptr.0.add(v) = e_cnt;
                        }
                    }
                    Ok(())
                },
            )?;
        }
        Ok(SearchContext {
            g,
            cores,
            hcd,
            ranks,
            gt,
            eq,
        })
    }

    /// Neighbors of `v` with strictly greater coreness.
    #[inline]
    pub fn gt(&self, v: VertexId) -> u32 {
        self.gt[v as usize]
    }

    /// Neighbors of `v` with equal coreness.
    #[inline]
    pub fn eq(&self, v: VertexId) -> u32 {
        self.eq[v as usize]
    }

    /// Neighbors of `v` with strictly smaller coreness.
    #[inline]
    pub fn lt(&self, v: VertexId) -> u32 {
        self.g.degree(v) as u32 - self.gt[v as usize] - self.eq[v as usize]
    }

    /// Graph-level totals for globally normalized metrics.
    pub fn totals(&self) -> GraphTotals {
        GraphTotals {
            n: self.g.num_vertices() as u64,
            m: self.g.num_edges() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_core::phcd;
    use hcd_decomp::core_decomposition;
    use hcd_graph::GraphBuilder;

    #[test]
    fn neighbor_class_counts() {
        // Triangle {0,1,2} (coreness 2) with pendant 3 on vertex 2.
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        for exec in [Executor::sequential(), Executor::rayon(3)] {
            let ctx = SearchContext::with_executor(&g, &cores, &hcd, &exec);
            assert_eq!((ctx.gt(0), ctx.eq(0), ctx.lt(0)), (0, 2, 0));
            assert_eq!((ctx.gt(2), ctx.eq(2), ctx.lt(2)), (0, 2, 1));
            assert_eq!((ctx.gt(3), ctx.eq(3), ctx.lt(3)), (1, 0, 0));
        }
    }

    #[test]
    fn totals_match_graph() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2)]).build();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let ctx = SearchContext::new(&g, &cores, &hcd);
        assert_eq!(ctx.totals().n, 3);
        assert_eq!(ctx.totals().m, 2);
    }
}
