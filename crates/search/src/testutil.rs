//! Test fixtures and brute-force primary-value computation.

use hcd_core::{phcd, Hcd};
use hcd_decomp::{core_decomposition, CoreDecomposition};
use hcd_graph::{CsrGraph, GraphBuilder, VertexId};
use hcd_par::Executor;

use crate::metrics::PrimaryValues;

/// The paper's Figure 1 graph (see `hcd-core`'s fixture) with its core
/// decomposition and HCD.
pub fn search_fixture() -> (CsrGraph, CoreDecomposition, Hcd) {
    let g = GraphBuilder::new()
        .edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (5, 0),
            (5, 1),
            (5, 2),
            (5, 3),
        ])
        .edges([(6, 7), (7, 8), (8, 6), (6, 0), (7, 1), (8, 2)])
        .edges([(9, 10), (9, 11), (9, 12), (10, 11), (10, 12), (11, 12)])
        .edges([(13, 9), (13, 5), (14, 10), (14, 6), (15, 13), (15, 14)])
        .build();
    let cores = core_decomposition(&g);
    let hcd = phcd(&g, &cores, &Executor::sequential());
    (g, cores, hcd)
}

/// Computes every primary value of the subgraph induced by `vertices`
/// directly from the definitions — the oracle for PBKS/BKS.
pub fn primaries_by_definition(g: &CsrGraph, vertices: &[VertexId]) -> PrimaryValues {
    let mut inside = vec![false; g.num_vertices()];
    for &v in vertices {
        inside[v as usize] = true;
    }
    let n = vertices.len() as u64;
    let mut m = 0u64;
    let mut b = 0u64;
    for &v in vertices {
        for &u in g.neighbors(v) {
            if inside[u as usize] {
                if u > v {
                    m += 1;
                }
            } else {
                b += 1;
            }
        }
    }
    // Triangles and triplets on the induced subgraph.
    let mut triangles = 0u64;
    let mut triplets = 0u64;
    for &v in vertices {
        let nbrs: Vec<VertexId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| inside[u as usize])
            .collect();
        let d = nbrs.len() as u64;
        triplets += d * d.saturating_sub(1) / 2;
        for (i, &a) in nbrs.iter().enumerate() {
            for &c in &nbrs[i + 1..] {
                if a > v && c > v && g.has_edge(a, c) {
                    triangles += 1;
                }
            }
        }
    }
    PrimaryValues {
        n,
        m2: 2 * m,
        b,
        triangles,
        triplets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_on_k4() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)])
            .build();
        let p = primaries_by_definition(&g, &[0, 1, 2, 3]);
        assert_eq!(p.n, 4);
        assert_eq!(p.m2, 12);
        assert_eq!(p.b, 1);
        assert_eq!(p.triangles, 4);
        assert_eq!(p.triplets, 12); // 4 vertices × C(3,2)
    }

    #[test]
    fn oracle_counts_boundary_per_edge_endpoint_inside() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2)]).build();
        let p = primaries_by_definition(&g, &[1]);
        assert_eq!(p.n, 1);
        assert_eq!(p.m2, 0);
        assert_eq!(p.b, 2);
    }
}
