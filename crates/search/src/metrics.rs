//! Community scoring metrics (paper §II-D).

/// The primary values of a subgraph `S` from which every supported metric
/// is computed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimaryValues {
    /// `n(S)`: number of vertices.
    pub n: u64,
    /// `2·m(S)`: twice the number of internal edges (kept doubled so the
    /// half-contribution of equal-coreness endpoints stays integral).
    pub m2: u64,
    /// `b(S)`: number of boundary edges.
    pub b: u64,
    /// `Δ(S)`: number of triangles.
    pub triangles: u64,
    /// `t(S)`: number of triplets (paths of length 2).
    pub triplets: u64,
}

impl PrimaryValues {
    /// `m(S)` as a float (`m2` is always even once fully accumulated).
    pub fn m(&self) -> f64 {
        self.m2 as f64 / 2.0
    }

    /// Component-wise sum, used by tree accumulation.
    pub fn merge(&mut self, other: &PrimaryValues) {
        self.n += other.n;
        self.m2 += other.m2;
        self.b += other.b;
        self.triangles += other.triangles;
        self.triplets += other.triplets;
    }
}

/// Whether a metric needs high-order motif counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Based on `n(S)`, `m(S)`, `b(S)` only.
    TypeA,
    /// Additionally needs `Δ(S)` and/or `t(S)`.
    TypeB,
}

/// Community scoring metrics, normalized so that higher is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// `2·m(S) / n(S)`.
    AverageDegree,
    /// `2·m(S) / (n(S)·(n(S)−1))`.
    InternalDensity,
    /// `1 − b(S) / (n(S)·(n−n(S)))`.
    CutRatio,
    /// `1 − b(S) / (2·m(S)+b(S))`.
    Conductance,
    /// Single-community modularity: `m(S)/m − ((2·m(S)+b(S))/(2·m))²`.
    Modularity,
    /// `3·Δ(S) / t(S)`.
    ClusteringCoefficient,
    /// `−b(S) / n(S)` (expansion, negated so higher is better).
    Expansion,
    /// Smoothed separability `m(S) / (b(S) + 1)` (the `+1` keeps
    /// boundary-free cores finite while preserving the ordering of the
    /// classical `m/b`).
    Separability,
}

/// Totals of the whole graph, needed by the globally normalized metrics.
#[derive(Debug, Clone, Copy)]
pub struct GraphTotals {
    /// Number of vertices `n`.
    pub n: u64,
    /// Number of edges `m`.
    pub m: u64,
}

impl Metric {
    /// All metrics: the paper's six (§II-D) plus two further type-A
    /// metrics from the community-scoring survey \[32\] the paper draws
    /// from (expansion, separability).
    pub const ALL: [Metric; 8] = [
        Metric::AverageDegree,
        Metric::InternalDensity,
        Metric::CutRatio,
        Metric::Conductance,
        Metric::Modularity,
        Metric::ClusteringCoefficient,
        Metric::Expansion,
        Metric::Separability,
    ];

    /// The computational class of the metric.
    pub fn kind(&self) -> MetricKind {
        match self {
            Metric::ClusteringCoefficient => MetricKind::TypeB,
            _ => MetricKind::TypeA,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::AverageDegree => "average-degree",
            Metric::InternalDensity => "internal-density",
            Metric::CutRatio => "cut-ratio",
            Metric::Conductance => "conductance",
            Metric::Modularity => "modularity",
            Metric::ClusteringCoefficient => "clustering-coefficient",
            Metric::Expansion => "expansion",
            Metric::Separability => "separability",
        }
    }

    /// `get_metric` of the paper: the score of a subgraph from its primary
    /// values. Degenerate denominators score the neutral value noted on
    /// each arm.
    pub fn score(&self, p: &PrimaryValues, totals: &GraphTotals) -> f64 {
        let n = p.n as f64;
        let m2 = p.m2 as f64;
        let b = p.b as f64;
        match self {
            Metric::AverageDegree => {
                if p.n == 0 {
                    0.0
                } else {
                    m2 / n
                }
            }
            Metric::InternalDensity => {
                if p.n <= 1 {
                    0.0 // a single vertex has no internal pair
                } else {
                    m2 / (n * (n - 1.0))
                }
            }
            Metric::CutRatio => {
                let outside = (totals.n as f64 - n) * n;
                if outside <= 0.0 {
                    1.0 // the whole graph has no possible boundary
                } else {
                    1.0 - b / outside
                }
            }
            Metric::Conductance => {
                let denom = m2 + b;
                if denom == 0.0 {
                    0.0 // isolated vertices: no volume at all
                } else {
                    1.0 - b / denom
                }
            }
            Metric::Modularity => {
                if totals.m == 0 {
                    0.0
                } else {
                    let m_total = totals.m as f64;
                    (m2 / 2.0) / m_total - ((m2 + b) / (2.0 * m_total)).powi(2)
                }
            }
            Metric::ClusteringCoefficient => {
                if p.triplets == 0 {
                    0.0
                } else {
                    3.0 * p.triangles as f64 / p.triplets as f64
                }
            }
            Metric::Expansion => {
                if p.n == 0 {
                    0.0
                } else {
                    -b / n
                }
            }
            Metric::Separability => (m2 / 2.0) / (b + 1.0),
        }
    }
}

/// Total order on scores for argmax selection, ranking NaN below every
/// real value (including `-inf`). Raw `f64::total_cmp` would rank
/// positive NaN *above* `+inf` and make a NaN-scoring candidate win;
/// `partial_cmp().unwrap()` (the previous code) panicked outright. NaN
/// scores can arise from custom or future extension metrics, so the
/// search comparators treat them as "worst", deterministically.
pub fn score_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    let key = |x: f64| if x.is_nan() { f64::NEG_INFINITY } else { x };
    key(a).total_cmp(&key(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals() -> GraphTotals {
        GraphTotals { n: 100, m: 1000 }
    }

    #[test]
    fn average_degree_of_clique() {
        // K5: n=5, m=10.
        let p = PrimaryValues {
            n: 5,
            m2: 20,
            b: 0,
            ..Default::default()
        };
        assert_eq!(Metric::AverageDegree.score(&p, &totals()), 4.0);
        assert_eq!(Metric::InternalDensity.score(&p, &totals()), 1.0);
    }

    #[test]
    fn conductance_bounds() {
        let tight = PrimaryValues {
            n: 4,
            m2: 12,
            b: 0,
            ..Default::default()
        };
        assert_eq!(Metric::Conductance.score(&tight, &totals()), 1.0);
        let leaky = PrimaryValues {
            n: 4,
            m2: 0,
            b: 8,
            ..Default::default()
        };
        assert_eq!(Metric::Conductance.score(&leaky, &totals()), 0.0);
    }

    #[test]
    fn cut_ratio_whole_graph_is_one() {
        let p = PrimaryValues {
            n: 100,
            m2: 2000,
            b: 0,
            ..Default::default()
        };
        assert_eq!(Metric::CutRatio.score(&p, &totals()), 1.0);
    }

    #[test]
    fn clustering_coefficient_of_triangle() {
        let p = PrimaryValues {
            n: 3,
            m2: 6,
            b: 0,
            triangles: 1,
            triplets: 3,
        };
        assert_eq!(Metric::ClusteringCoefficient.score(&p, &totals()), 1.0);
    }

    #[test]
    fn modularity_matches_formula() {
        let p = PrimaryValues {
            n: 10,
            m2: 100,
            b: 20,
            ..Default::default()
        };
        let t = totals();
        let expect = 50.0 / 1000.0 - (120.0 / 2000.0_f64).powi(2);
        assert!((Metric::Modularity.score(&p, &t) - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let zero = PrimaryValues::default();
        for m in Metric::ALL {
            let s = m.score(&zero, &totals());
            assert!(s.is_finite());
        }
    }

    #[test]
    fn kinds() {
        assert_eq!(Metric::AverageDegree.kind(), MetricKind::TypeA);
        assert_eq!(Metric::Modularity.kind(), MetricKind::TypeA);
        assert_eq!(Metric::ClusteringCoefficient.kind(), MetricKind::TypeB);
    }

    #[test]
    fn expansion_and_separability() {
        let p = PrimaryValues {
            n: 10,
            m2: 40,
            b: 5,
            ..Default::default()
        };
        assert_eq!(Metric::Expansion.score(&p, &totals()), -0.5);
        assert!((Metric::Separability.score(&p, &totals()) - 20.0 / 6.0).abs() < 1e-12);
        // Boundary-free core: separability stays finite and large.
        let sealed = PrimaryValues {
            n: 10,
            m2: 40,
            b: 0,
            ..Default::default()
        };
        assert_eq!(Metric::Separability.score(&sealed, &totals()), 20.0);
        assert_eq!(Metric::Expansion.score(&sealed, &totals()), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = PrimaryValues {
            n: 1,
            m2: 2,
            b: 3,
            triangles: 4,
            triplets: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.n, 2);
        assert_eq!(a.triplets, 10);
    }

    #[test]
    fn score_cmp_ranks_nan_below_everything() {
        use std::cmp::Ordering;
        assert_eq!(score_cmp(f64::NAN, f64::NEG_INFINITY), Ordering::Equal);
        assert_eq!(score_cmp(f64::NAN, -1e308), Ordering::Less);
        assert_eq!(score_cmp(f64::NAN, f64::INFINITY), Ordering::Less);
        assert_eq!(score_cmp(0.0, f64::NAN), Ordering::Greater);
        assert_eq!(score_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(score_cmp(2.0, 2.0), Ordering::Equal);
        // A max_by over a NaN-containing slice picks a real value.
        let scores = [f64::NAN, 0.5, f64::NAN, 0.25];
        let best = (0..scores.len())
            .max_by(|&a, &b| score_cmp(scores[a], scores[b]))
            .unwrap();
        assert_eq!(best, 1);
    }
}
