//! PBKS: parallel subgraph search on the HCD (paper Algorithms 3–5).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use hcd_graph::VertexId;
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};

use crate::accumulate::try_accumulate_bottom_up;
use crate::metrics::{Metric, MetricKind, PrimaryValues};
use crate::preprocess::SearchContext;

/// The winning k-core of a subgraph search.
#[derive(Debug, Clone, PartialEq)]
pub struct BestCore {
    /// Tree node id of the k-core (reconstruct the vertex set with
    /// `hcd.subtree_vertices(node)`).
    pub node: u32,
    /// The core's level `k`.
    pub k: u32,
    /// Its score under the queried metric.
    pub score: f64,
    /// Its fully accumulated primary values.
    pub primaries: PrimaryValues,
}

/// Per-node raw contributions before tree accumulation. Boundary-edge
/// contributions are signed: a vertex removes `gt` previously-boundary
/// edges and adds `lt` new ones, so node-local sums can be negative until
/// the whole subtree is merged.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Contrib {
    pub n: u64,
    pub m2: u64,
    pub b: i64,
    pub triangles: u64,
    pub triplets: u64,
}

impl Contrib {
    pub(crate) fn merge(&mut self, o: &Contrib) {
        self.n += o.n;
        self.m2 += o.m2;
        self.b += o.b;
        self.triangles += o.triangles;
        self.triplets += o.triplets;
    }

    pub(crate) fn into_primary(self) -> PrimaryValues {
        debug_assert!(self.b >= 0, "accumulated boundary count negative");
        debug_assert!(self.m2 % 2 == 0, "accumulated doubled edge count odd");
        PrimaryValues {
            n: self.n,
            m2: self.m2,
            b: self.b.max(0) as u64,
            triangles: self.triangles,
            triplets: self.triplets,
        }
    }
}

/// Computes the vertex-centric type-A contributions (Algorithm 4, lines
/// 2–9): each vertex, processed independently, adds one vertex, its
/// greater/half-of-equal coreness edges, and its signed boundary delta to
/// its own tree node.
pub(crate) fn try_type_a_contributions(
    ctx: &SearchContext<'_>,
    exec: &Executor,
) -> Result<Vec<Contrib>, ParError> {
    let num_nodes = ctx.hcd.num_nodes();
    let n_acc: Vec<AtomicU64> = (0..num_nodes).map(|_| AtomicU64::new(0)).collect();
    let m2_acc: Vec<AtomicU64> = (0..num_nodes).map(|_| AtomicU64::new(0)).collect();
    let b_acc: Vec<AtomicI64> = (0..num_nodes).map(|_| AtomicI64::new(0)).collect();

    exec.region("pbks.type_a").try_for_each_chunk(
        ctx.g.num_vertices(),
        || (),
        |_, _, range| {
            for v in range {
                let v = v as VertexId;
                let i = ctx.hcd.tid(v) as usize;
                let gt = ctx.gt(v) as u64;
                let eq = ctx.eq(v) as u64;
                let lt = ctx.lt(v) as i64;
                n_acc[i].fetch_add(1, Ordering::Relaxed);
                m2_acc[i].fetch_add(2 * gt + eq, Ordering::Relaxed);
                b_acc[i].fetch_add(lt - gt as i64, Ordering::Relaxed);
            }
            Ok(())
        },
    )?;

    Ok((0..num_nodes)
        .map(|i| Contrib {
            n: n_acc[i].load(Ordering::Relaxed),
            m2: m2_acc[i].load(Ordering::Relaxed),
            b: b_acc[i].load(Ordering::Relaxed),
            triangles: 0,
            triplets: 0,
        })
        .collect())
}

/// Computes the triangle and triplet contributions (Algorithm 5, lines
/// 2–15), added onto `contribs` in place.
///
/// *Triangles* are enumerated once per edge `(v, u)` with
/// `(d(u), u) < (d(v), v)`, checking `u`'s neighbors against a per-worker
/// membership bitmap of `N(v)`; each triangle is credited to the tree
/// node of its lowest-vertex-rank corner — `O(Σ min(d(u), d(v))) =
/// O(m^1.5)` work. *Triplets* centered at `v` are counted per coreness
/// level with a per-worker counting array indexed by coreness, reset via
/// a touched list — `O(d(v) + c(v)) = O(d(v))` per vertex, no adjacency
/// sorting needed.
pub(crate) fn try_type_b_contributions(
    ctx: &SearchContext<'_>,
    exec: &Executor,
    contribs: &mut [Contrib],
) -> Result<(), ParError> {
    let num_nodes = ctx.hcd.num_nodes();
    let ta: Vec<AtomicU64> = (0..num_nodes).map(|_| AtomicU64::new(0)).collect();
    let tp: Vec<AtomicU64> = (0..num_nodes).map(|_| AtomicU64::new(0)).collect();
    let n = ctx.g.num_vertices();
    let kmax = ctx.cores.kmax() as usize;

    struct Scratch {
        /// Membership bitmap of N(v) for the triangle pass.
        marks: Vec<bool>,
        /// Count of N(v) ∩ H_k for the triplet pass.
        counts: Vec<u32>,
        /// One representative of N(v) ∩ H_k.
        reps: Vec<VertexId>,
    }

    // Triangle work is wildly skewed (proportional to the degrees around
    // each vertex), so chunk by degree weight rather than vertex count.
    let deg_prefix: Vec<u64> = {
        let mut p = Vec::with_capacity(n + 1);
        p.push(0u64);
        for v in 0..n as u32 {
            p.push(p.last().unwrap() + ctx.g.degree(v) as u64 + 1);
        }
        p
    };
    // The triangle pass is the most expensive loop in the search — poll
    // the cancellation checkpoint at a coarse per-vertex work stride.
    // Neighbor probes (the inner `w` loop) are the pass's true work
    // measure, O(Σ min(d(u), d(v))); tallied chunk-locally and flushed
    // with one atomic add per chunk.
    let probe_work = AtomicU64::new(0);
    exec.region("pbks.triangles").try_for_each_chunk_weighted(
        &deg_prefix,
        || Scratch {
            marks: vec![false; n],
            counts: vec![0; kmax + 1],
            reps: vec![0; kmax + 1],
        },
        |_, scratch, range| {
            let mut probes = 0u64;
            let mut since = 0usize;
            for v in range {
                let v = v as VertexId;
                let dv = ctx.g.degree(v);
                let cv = ctx.cores.coreness(v);
                let rv = ctx.ranks.rank(v);
                since += dv + 1;
                if since >= CHECKPOINT_STRIDE {
                    exec.checkpoint()?;
                    since = 0;
                }

                // --- Triangles (lines 2-7) ---
                for &u in ctx.g.neighbors(v) {
                    scratch.marks[u as usize] = true;
                }
                for &u in ctx.g.neighbors(v) {
                    let du = ctx.g.degree(u);
                    if du < dv || (du == dv && u < v) {
                        let ru = ctx.ranks.rank(u);
                        probes += du as u64;
                        for &w in ctx.g.neighbors(u) {
                            if scratch.marks[w as usize] {
                                let rw = ctx.ranks.rank(w);
                                if rw < ru && rw < rv {
                                    ta[ctx.hcd.tid(w) as usize].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
                for &u in ctx.g.neighbors(v) {
                    scratch.marks[u as usize] = false;
                }

                // --- Triplets (lines 8-15) ---
                let mut gt_k = (ctx.gt(v) + ctx.eq(v)) as u64;
                tp[ctx.hcd.tid(v) as usize]
                    .fetch_add(gt_k * gt_k.saturating_sub(1) / 2, Ordering::Relaxed);
                if cv > 0 {
                    // Bucket lower-coreness neighbors by coreness.
                    for &u in ctx.g.neighbors(v) {
                        let cu = ctx.cores.coreness(u);
                        if cu < cv {
                            scratch.counts[cu as usize] += 1;
                            scratch.reps[cu as usize] = u;
                        }
                    }
                    for k in (0..cv).rev() {
                        let cnt = scratch.counts[k as usize] as u64;
                        if cnt > 0 {
                            let w = scratch.reps[k as usize];
                            let pairs = cnt * (cnt - 1) / 2 + gt_k * cnt;
                            tp[ctx.hcd.tid(w) as usize].fetch_add(pairs, Ordering::Relaxed);
                            gt_k += cnt;
                            scratch.counts[k as usize] = 0;
                        }
                    }
                }
            }
            probe_work.fetch_add(probes, Ordering::Relaxed);
            Ok(())
        },
    )?;
    exec.add_counter("pbks.triangle_probes", probe_work.load(Ordering::Relaxed));

    for (i, c) in contribs.iter_mut().enumerate() {
        c.triangles += ta[i].load(Ordering::Relaxed);
        c.triplets += tp[i].load(Ordering::Relaxed);
    }
    Ok(())
}

/// Scores every k-core (tree node) under `metric`: contributions →
/// bottom-up accumulation → `get_metric` (Algorithm 3). Returns
/// `(scores, primaries)` indexed by node id.
pub fn pbks_scores(
    ctx: &SearchContext<'_>,
    metric: &Metric,
    exec: &Executor,
) -> (Vec<f64>, Vec<PrimaryValues>) {
    match try_pbks_scores(ctx, metric, exec) {
        Ok(out) => out,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`pbks_scores`]: returns `Err` if any region
/// panics, is cancelled, or exceeds the executor's deadline. On `Err` all
/// intermediate state is discarded and the executor stays usable (see
/// `hcd_par` failure model).
pub fn try_pbks_scores(
    ctx: &SearchContext<'_>,
    metric: &Metric,
    exec: &Executor,
) -> Result<(Vec<f64>, Vec<PrimaryValues>), ParError> {
    let mut contribs = try_type_a_contributions(ctx, exec)?;
    if metric.kind() == MetricKind::TypeB {
        try_type_b_contributions(ctx, exec, &mut contribs)?;
    }
    try_accumulate_bottom_up(ctx.hcd, &mut contribs, Contrib::merge, exec)?;
    let primaries: Vec<PrimaryValues> = contribs.into_iter().map(Contrib::into_primary).collect();
    let totals = ctx.totals();
    let mut scores = vec![0.0f64; primaries.len()];
    {
        struct SendPtr(*mut f64);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        let out = SendPtr(scores.as_mut_ptr());
        exec.region("pbks.score").try_for_each_chunk(
            primaries.len(),
            || (),
            |_, _, range| {
                let _ = &out;
                for i in range {
                    // SAFETY: disjoint slots.
                    unsafe { *out.0.add(i) = metric.score(&primaries[i], &totals) };
                }
                Ok(())
            },
        )?;
    }
    Ok((scores, primaries))
}

/// PBKS: the k-core with the highest score under `metric`.
///
/// Ties are broken toward the smallest node id, which (given PHCD's
/// deterministic id assignment) makes the result reproducible. Returns
/// `None` only for an empty graph.
pub fn pbks(ctx: &SearchContext<'_>, metric: &Metric, exec: &Executor) -> Option<BestCore> {
    match try_pbks(ctx, metric, exec) {
        Ok(best) => best,
        Err(e) => e.raise(),
    }
}

/// PBKS against a *shared snapshot*: builds the [`SearchContext`] from
/// borrowed index parts and runs the search in one call.
///
/// This is the entry point the serving layer uses — a snapshot bundles
/// `(graph, cores, hcd)` behind an `Arc`, and each best-community query
/// borrows them for the duration of the call; nothing in the context
/// outlives the borrow, so concurrent queries on the same snapshot are
/// safe and queries on different snapshots never observe each other.
/// The `O(m)` preprocessing runs under `exec` (region
/// `search.preprocess`) on every call; callers answering many searches
/// against one snapshot should build a [`SearchContext`] once and call
/// [`try_pbks`] directly.
pub fn try_pbks_on(
    g: &hcd_graph::CsrGraph,
    cores: &hcd_decomp::CoreDecomposition,
    hcd: &hcd_core::Hcd,
    metric: &Metric,
    exec: &Executor,
) -> Result<Option<BestCore>, ParError> {
    let ctx = SearchContext::try_with_executor(g, cores, hcd, exec)?;
    try_pbks(&ctx, metric, exec)
}

/// Fallible version of [`pbks`]: `Ok(None)` only for an empty graph,
/// `Err` if the search failed (panic, cancellation, or deadline).
pub fn try_pbks(
    ctx: &SearchContext<'_>,
    metric: &Metric,
    exec: &Executor,
) -> Result<Option<BestCore>, ParError> {
    let (scores, primaries) = try_pbks_scores(ctx, metric, exec)?;
    let best = (0..scores.len()).max_by(|&a, &b| {
        crate::metrics::score_cmp(scores[a], scores[b]).then(b.cmp(&a)) // prefer the smaller id on ties
    });
    Ok(best.map(|best| BestCore {
        node: best as u32,
        k: ctx.hcd.node(best as u32).k,
        score: scores[best],
        primaries: primaries[best],
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{primaries_by_definition, search_fixture};

    #[test]
    fn primaries_match_brute_force_on_figure1() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(3),
        ] {
            let (_, primaries) = pbks_scores(&ctx, &Metric::ClusteringCoefficient, &exec);
            for i in 0..hcd.num_nodes() as u32 {
                let members = hcd.subtree_vertices(i);
                let want = primaries_by_definition(&g, &members);
                assert_eq!(
                    primaries[i as usize],
                    want,
                    "node {i} (k={}) mode {}",
                    hcd.node(i).k,
                    exec.mode_name()
                );
            }
        }
    }

    #[test]
    fn figure1_best_average_degree_is_the_4core() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let best = pbks(&ctx, &Metric::AverageDegree, &Executor::sequential()).unwrap();
        // S4 is a 6-vertex near-clique: average degree 14*2/6 ≈ 4.67,
        // denser than S3.1 (9 vertices, 20 edges, 4.44) and the rest.
        assert_eq!(best.k, 4);
        assert!((best.score - 14.0 * 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn every_metric_finds_some_core() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        for metric in Metric::ALL {
            let best = pbks(&ctx, &metric, &Executor::rayon(2)).unwrap();
            assert!(best.score.is_finite(), "{}", metric.name());
            assert!((best.node as usize) < hcd.num_nodes());
        }
    }

    #[test]
    fn empty_graph_returns_none() {
        let g = hcd_graph::GraphBuilder::new().build();
        let cores = hcd_decomp::core_decomposition(&g);
        let hcd = hcd_core::phcd(&g, &cores, &Executor::sequential());
        let ctx = SearchContext::new(&g, &cores, &hcd);
        assert!(pbks(&ctx, &Metric::AverageDegree, &Executor::sequential()).is_none());
    }
}
