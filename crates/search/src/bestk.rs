//! Finding the best `k` (paper §VI): score entire k-core *sets*.
//!
//! Where [`pbks()`](crate::pbks::pbks) scores each individual (connected) k-core, this
//! extension scores the k-core **set** `K_k` — the union of all k-cores —
//! for every `k`, and returns the `k` with the highest score. Following
//! the §VI recipe: (i) compute each vertex's contribution in parallel,
//! aggregated per *level* instead of per tree node; (ii) suffix-sum the
//! levels from `kmax` down (the `k`-core set contains every shell
//! `>= k`); (iii) score each level.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use hcd_graph::VertexId;
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};

use crate::metrics::{Metric, MetricKind, PrimaryValues};
use crate::preprocess::SearchContext;

/// Score and primary values of one k-core set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelScore {
    /// The level `k`.
    pub k: u32,
    /// Score of `K_k` under the queried metric.
    pub score: f64,
    /// Primary values of `K_k`.
    pub primaries: PrimaryValues,
}

/// Scores every k-core set `K_0 ⊇ K_1 ⊇ … ⊇ K_kmax`.
pub fn core_set_scores(
    ctx: &SearchContext<'_>,
    metric: &Metric,
    exec: &Executor,
) -> Vec<LevelScore> {
    match try_core_set_scores(ctx, metric, exec) {
        Ok(scores) => scores,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`core_set_scores`]: returns `Err` if the
/// contribution region panics, is cancelled, or exceeds the executor's
/// deadline. The triangle enumeration is `O(m^1.5)` — by far the longest
/// loop of this extension — so it polls the cancellation checkpoint at a
/// coarse per-wedge work stride; a deadline takes effect within one
/// `CHECKPOINT_STRIDE` of scanned edges rather than after the full pass
/// (see `hcd_par` failure model).
pub fn try_core_set_scores(
    ctx: &SearchContext<'_>,
    metric: &Metric,
    exec: &Executor,
) -> Result<Vec<LevelScore>, ParError> {
    let kmax = ctx.cores.kmax() as usize;
    let nk = kmax + 1;
    let n_acc: Vec<AtomicU64> = (0..nk).map(|_| AtomicU64::new(0)).collect();
    let m2_acc: Vec<AtomicU64> = (0..nk).map(|_| AtomicU64::new(0)).collect();
    let b_acc: Vec<AtomicI64> = (0..nk).map(|_| AtomicI64::new(0)).collect();
    let ta_acc: Vec<AtomicU64> = (0..nk).map(|_| AtomicU64::new(0)).collect();
    let tp_acc: Vec<AtomicU64> = (0..nk).map(|_| AtomicU64::new(0)).collect();
    let type_b = metric.kind() == MetricKind::TypeB;
    let n = ctx.g.num_vertices();

    struct Scratch {
        marks: Vec<bool>,
        counts: Vec<u32>,
    }

    exec.region("bestk.contrib").try_for_each_chunk(
        n,
        || Scratch {
            marks: vec![false; n],
            counts: vec![0; nk],
        },
        |_, scratch, range| {
            let mut since = 0usize;
            for v in range {
                let v = v as VertexId;
                let cv = ctx.cores.coreness(v) as usize;
                let gt = ctx.gt(v) as u64;
                let eq = ctx.eq(v) as u64;
                let lt = ctx.lt(v) as i64;
                n_acc[cv].fetch_add(1, Ordering::Relaxed);
                m2_acc[cv].fetch_add(2 * gt + eq, Ordering::Relaxed);
                b_acc[cv].fetch_add(lt - gt as i64, Ordering::Relaxed);
                since += 1;
                if since >= CHECKPOINT_STRIDE {
                    exec.checkpoint()?;
                    since = 0;
                }
                if !type_b {
                    continue;
                }

                // Triangles: credit the level of the lowest-rank corner.
                let dv = ctx.g.degree(v);
                let rv = ctx.ranks.rank(v);
                for &u in ctx.g.neighbors(v) {
                    scratch.marks[u as usize] = true;
                }
                for &u in ctx.g.neighbors(v) {
                    let du = ctx.g.degree(u);
                    if du < dv || (du == dv && u < v) {
                        // The wedge scan below is the O(m^1.5) hot loop:
                        // poll once per scanned adjacency stride so a
                        // deadline fires mid-vertex, not after it.
                        since += du;
                        if since >= CHECKPOINT_STRIDE {
                            exec.checkpoint()?;
                            since = 0;
                        }
                        let ru = ctx.ranks.rank(u);
                        for &w in ctx.g.neighbors(u) {
                            if scratch.marks[w as usize] {
                                let rw = ctx.ranks.rank(w);
                                if rw < ru && rw < rv {
                                    ta_acc[ctx.cores.coreness(w) as usize]
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
                for &u in ctx.g.neighbors(v) {
                    scratch.marks[u as usize] = false;
                }

                // Triplets centered at v, credited to the level at which
                // they appear (minimum endpoint coreness).
                let mut gt_k = gt + eq;
                tp_acc[cv].fetch_add(gt_k * gt_k.saturating_sub(1) / 2, Ordering::Relaxed);
                if cv > 0 {
                    for &u in ctx.g.neighbors(v) {
                        let cu = ctx.cores.coreness(u) as usize;
                        if cu < cv {
                            scratch.counts[cu] += 1;
                        }
                    }
                    for k in (0..cv).rev() {
                        let cnt = scratch.counts[k] as u64;
                        if cnt > 0 {
                            tp_acc[k]
                                .fetch_add(cnt * (cnt - 1) / 2 + gt_k * cnt, Ordering::Relaxed);
                            gt_k += cnt;
                            scratch.counts[k] = 0;
                        }
                    }
                }
            }
            Ok(())
        },
    )?;

    // Suffix sums: K_k = shells k..=kmax.
    let totals = ctx.totals();
    let mut acc = crate::pbks::Contrib::default();
    let mut out = Vec::with_capacity(nk);
    for k in (0..nk).rev() {
        acc.n += n_acc[k].load(Ordering::Relaxed);
        acc.m2 += m2_acc[k].load(Ordering::Relaxed);
        acc.b += b_acc[k].load(Ordering::Relaxed);
        acc.triangles += ta_acc[k].load(Ordering::Relaxed);
        acc.triplets += tp_acc[k].load(Ordering::Relaxed);
        let primaries = acc.into_primary();
        out.push(LevelScore {
            k: k as u32,
            score: metric.score(&primaries, &totals),
            primaries,
        });
    }
    out.reverse();
    Ok(out)
}

/// The best `k` for the metric: `argmax_k score(K_k)` (ties toward the
/// larger, more selective `k`).
pub fn best_k(ctx: &SearchContext<'_>, metric: &Metric, exec: &Executor) -> Option<LevelScore> {
    match try_best_k(ctx, metric, exec) {
        Ok(best) => best,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`best_k`].
pub fn try_best_k(
    ctx: &SearchContext<'_>,
    metric: &Metric,
    exec: &Executor,
) -> Result<Option<LevelScore>, ParError> {
    Ok(try_core_set_scores(ctx, metric, exec)?
        .into_iter()
        .max_by(|a, b| crate::metrics::score_cmp(a.score, b.score).then(a.k.cmp(&b.k))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{primaries_by_definition, search_fixture};

    #[test]
    fn core_set_primaries_match_brute_force() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        for exec in [Executor::sequential(), Executor::rayon(3)] {
            let scores = core_set_scores(&ctx, &Metric::ClusteringCoefficient, &exec);
            for ls in &scores {
                let members = cores.core_set(ls.k);
                let want = primaries_by_definition(&g, &members);
                assert_eq!(ls.primaries, want, "k={}", ls.k);
            }
        }
    }

    #[test]
    fn k0_covers_whole_graph() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let scores = core_set_scores(&ctx, &Metric::AverageDegree, &Executor::sequential());
        assert_eq!(scores[0].primaries.n, g.num_vertices() as u64);
        assert_eq!(scores[0].primaries.m2, 2 * g.num_edges() as u64);
        assert_eq!(scores[0].primaries.b, 0);
    }

    #[test]
    fn best_k_for_density_is_deep() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let best = best_k(&ctx, &Metric::InternalDensity, &Executor::sequential()).unwrap();
        // The 4-core set (the near-clique S4) is the densest level.
        assert_eq!(best.k, 4);
    }

    #[test]
    fn best_k_matches_across_modes_and_survives_fault_rerun() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let want = best_k(
            &ctx,
            &Metric::ClusteringCoefficient,
            &Executor::sequential(),
        )
        .unwrap();
        for exec in [Executor::rayon(4), Executor::simulated(3)] {
            // An injected panic fails cleanly...
            exec.set_fault_plan(hcd_par::FaultPlan::new().inject(0, 0, hcd_par::Fault::Panic));
            let err = try_best_k(&ctx, &Metric::ClusteringCoefficient, &exec).unwrap_err();
            assert!(matches!(err, hcd_par::ParError::Panicked { .. }));
            exec.clear_fault_plan();
            // ...and the rerun on the same executor is correct.
            let got = best_k(&ctx, &Metric::ClusteringCoefficient, &exec).unwrap();
            assert_eq!(got, want, "mode {}", exec.mode_name());
        }
    }

    #[test]
    fn nan_scores_never_win_or_panic() {
        // No built-in metric emits NaN, but custom scores can. The argmax
        // previously used `partial_cmp().unwrap()` and panicked; now NaN
        // ranks below every real score and a real candidate wins.
        let mk = |k, score| LevelScore {
            k,
            score,
            primaries: PrimaryValues::default(),
        };
        let candidates = vec![mk(0, f64::NAN), mk(1, 1.5), mk(2, f64::NAN), mk(3, 0.5)];
        let best = candidates
            .into_iter()
            .max_by(|a, b| crate::metrics::score_cmp(a.score, b.score).then(a.k.cmp(&b.k)))
            .unwrap();
        assert_eq!(best.k, 1);
    }

    #[test]
    fn deadline_fires_inside_triangle_loop_within_one_stride() {
        // A 70-clique: the wedge scan alone is far past CHECKPOINT_STRIDE
        // edge reads. Sequential mode runs the whole region as a single
        // chunk, so after the pre-chunk deadline check passes there are no
        // further chunk boundaries — only the in-body stride poll can
        // observe the deadline expiring mid-chunk (armed here by an
        // injected straggler delay that outlasts it).
        let mut b = hcd_graph::GraphBuilder::new();
        for u in 0..70u32 {
            for v in (u + 1)..70 {
                b = b.edge(u, v);
            }
        }
        let g = b.build();
        let cores = hcd_decomp::core_decomposition(&g);
        let hcd = hcd_core::phcd(&g, &cores, &Executor::sequential());
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let exec = Executor::sequential();
        exec.set_fault_plan(hcd_par::FaultPlan::new().inject(0, 0, hcd_par::Fault::Delay(50_000)));
        exec.set_deadline(hcd_par::Deadline::from_now(
            std::time::Duration::from_millis(10),
        ));
        let err = try_core_set_scores(&ctx, &Metric::ClusteringCoefficient, &exec).unwrap_err();
        assert_eq!(err, hcd_par::ParError::DeadlineExceeded);
        // The executor survives; cleared, the same query completes.
        exec.clear_deadline();
        exec.clear_fault_plan();
        assert!(try_core_set_scores(&ctx, &Metric::ClusteringCoefficient, &exec).is_ok());
    }
}
