//! Exact maximum clique (for Table IV's `MC ⊆ S*` column).

use hcd_decomp::CoreDecomposition;
use hcd_graph::{CsrGraph, VertexId};

/// Finds a maximum clique exactly, by branch and bound.
///
/// The search expands vertices in degeneracy order (each root subproblem
/// is confined to a vertex's *later* neighbors, at most `kmax` of them),
/// prunes with coreness (`c(v) + 1 < |best|` can never extend to a larger
/// clique) and with a greedy-coloring upper bound inside each subproblem.
/// Exponential worst case, but fast on the sparse power-law graphs used
/// here — exactly the regime the paper evaluates.
pub fn max_clique(g: &CsrGraph, cores: &CoreDecomposition) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Degeneracy order = vertex order by (coreness, id); later neighbors
    // of v in this order all have coreness >= c(v).
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| (cores.coreness(v), v));
    let mut pos = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i as u32;
    }

    let mut best: Vec<VertexId> = Vec::new();
    let mut current: Vec<VertexId> = Vec::new();
    for &v in order.iter() {
        if (cores.coreness(v) as usize) < best.len() {
            continue; // cannot beat the incumbent
        }
        // Candidates: later neighbors in degeneracy order.
        let cands: Vec<VertexId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| pos[u as usize] > pos[v as usize])
            .collect();
        current.push(v);
        expand(g, cands, &mut current, &mut best);
        current.pop();
    }
    best.sort_unstable();
    best
}

/// Tomita-style expansion with a greedy coloring bound.
fn expand(
    g: &CsrGraph,
    mut cands: Vec<VertexId>,
    current: &mut Vec<VertexId>,
    best: &mut Vec<VertexId>,
) {
    if cands.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    }
    // Greedy coloring: color classes are independent sets, so the clique
    // can use at most one vertex per class. Process candidates in
    // ascending color so the bound tightens as the list shrinks.
    let mut colors: Vec<(u32, VertexId)> = Vec::with_capacity(cands.len());
    {
        let mut classes: Vec<Vec<VertexId>> = Vec::new();
        // Color denser vertices first for tighter bounds.
        cands.sort_unstable_by_key(|&u| std::cmp::Reverse(g.degree(u)));
        for &u in &cands {
            let mut placed = false;
            for (ci, class) in classes.iter_mut().enumerate() {
                if class.iter().all(|&w| !g.has_edge(u, w)) {
                    class.push(u);
                    colors.push((ci as u32 + 1, u));
                    placed = true;
                    break;
                }
            }
            if !placed {
                classes.push(vec![u]);
                colors.push((classes.len() as u32, u));
            }
        }
        colors.sort_unstable_by_key(|&(c, _)| c);
    }

    while let Some((color, u)) = colors.pop() {
        if current.len() + color as usize <= best.len() {
            return; // bound: even the best coloring cannot beat incumbent
        }
        current.push(u);
        let sub: Vec<VertexId> = colors
            .iter()
            .map(|&(_, w)| w)
            .filter(|&w| g.has_edge(u, w))
            .collect();
        expand(g, sub, current, best);
        current.pop();
    }
}

/// Checks whether `clique` is fully contained in `set`.
pub fn contained_in(clique: &[VertexId], set: &[VertexId]) -> bool {
    let lookup: std::collections::HashSet<_> = set.iter().copied().collect();
    clique.iter().all(|v| lookup.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_decomp::core_decomposition;
    use hcd_graph::GraphBuilder;

    fn brute_force_max_clique(g: &CsrGraph) -> usize {
        // Exponential check over all subsets (tiny graphs only).
        let n = g.num_vertices();
        assert!(n <= 16);
        let mut best = 0usize;
        for mask in 0u32..(1 << n) {
            let members: Vec<VertexId> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
            if members.len() <= best {
                continue;
            }
            let is_clique = members
                .iter()
                .enumerate()
                .all(|(i, &a)| members[i + 1..].iter().all(|&b| g.has_edge(a, b)));
            if is_clique {
                best = members.len();
            }
        }
        best
    }

    fn verify_clique(g: &CsrGraph, clique: &[VertexId]) {
        for (i, &a) in clique.iter().enumerate() {
            for &b in &clique[i + 1..] {
                assert!(g.has_edge(a, b), "not a clique: {a}-{b}");
            }
        }
    }

    #[test]
    fn finds_planted_clique() {
        let mut b = GraphBuilder::new();
        for u in 10..15u32 {
            for v in (u + 1)..15 {
                b = b.edge(u, v); // K5 on 10..15
            }
        }
        // Noise edges.
        let g = b
            .edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 10), (4, 11)])
            .build();
        let cores = core_decomposition(&g);
        let mc = max_clique(&g, &cores);
        assert_eq!(mc, vec![10, 11, 12, 13, 14]);
        verify_clique(&g, &mc);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.gen_range(4..12u32);
            let mut b = GraphBuilder::new().min_vertices(n as usize);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.45) {
                        b = b.edge(u, v);
                    }
                }
            }
            let g = b.build();
            let cores = core_decomposition(&g);
            let mc = max_clique(&g, &cores);
            verify_clique(&g, &mc);
            assert_eq!(mc.len(), brute_force_max_clique(&g));
        }
    }

    #[test]
    fn edgeless_graph_gives_single_vertex() {
        let g = GraphBuilder::new().min_vertices(3).build();
        let cores = core_decomposition(&g);
        assert_eq!(max_clique(&g, &cores).len(), 1);
    }

    #[test]
    fn empty_graph_gives_empty_clique() {
        let g = GraphBuilder::new().build();
        let cores = core_decomposition(&g);
        assert!(max_clique(&g, &cores).is_empty());
    }

    #[test]
    fn containment_helper() {
        assert!(contained_in(&[1, 2], &[0, 1, 2, 3]));
        assert!(!contained_in(&[1, 9], &[0, 1, 2, 3]));
    }
}
