//! BKS: the serial subgraph-search baseline \[10\].
//!
//! BKS sweeps the coreness levels from `kmax` down to 0, relying at each
//! level on the totals already computed for larger coreness — the
//! "barriers between levels" that make it unsuitable for parallel
//! execution — and answers neighbor-coreness queries from adjacency lists
//! pre-sorted by coreness (a bin-sort *vertex ordering* over all arcs,
//! whose multi-threaded bucket accesses are the second obstacle the paper
//! identifies). PBKS replaces both mechanisms; this module keeps them so
//! the comparison measured in Table V and Figures 6–9 is faithful.

use hcd_graph::{CsrGraph, VertexId};

use crate::metrics::{Metric, MetricKind, PrimaryValues};
use crate::pbks::{BestCore, Contrib};
use crate::preprocess::SearchContext;

/// Adjacency lists re-ordered by neighbor coreness (descending, ties by
/// id) — BKS's vertex-ordering preprocessing, built with two stable
/// counting sorts over the arc list in `O(n + m + kmax)`.
pub struct SortedAdjacency {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl SortedAdjacency {
    /// Builds the ordering for `g` given each vertex's coreness.
    pub fn build(g: &CsrGraph, coreness: &[u32]) -> Self {
        let n = g.num_vertices();
        let arcs = g.num_arcs();
        let kmax = coreness.iter().copied().max().unwrap_or(0) as usize;

        // Pass 1: stable counting sort of all arcs (src, dst) by
        // c(dst) descending. Arcs start ordered by (src, dst asc).
        let by_core: Vec<(VertexId, VertexId)> = {
            let mut counts = vec![0usize; kmax + 2];
            for v in g.vertices() {
                for &u in g.neighbors(v) {
                    counts[kmax - coreness[u as usize] as usize + 1] += 1;
                }
            }
            for i in 0..=kmax {
                counts[i + 1] += counts[i];
            }
            let mut out = vec![(0, 0); arcs];
            for v in g.vertices() {
                for &u in g.neighbors(v) {
                    let bucket = kmax - coreness[u as usize] as usize;
                    out[counts[bucket]] = (v, u);
                    counts[bucket] += 1;
                }
            }
            out
        };

        // Pass 2: stable counting sort by src; within each src the
        // coreness-descending order from pass 1 is preserved.
        let mut offsets = vec![0usize; n + 1];
        for &(v, _) in &by_core {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; arcs];
        for &(v, u) in &by_core {
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        SortedAdjacency { offsets, neighbors }
    }

    /// The coreness-descending adjacency slice of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }
}

/// Scores every k-core serially in the BKS style, building the vertex
/// ordering on the fly. Returns `(scores, primaries)` indexed by tree
/// node id — identical values to [`crate::pbks::pbks_scores`], by
/// construction.
pub fn bks_scores(ctx: &SearchContext<'_>, metric: &Metric) -> (Vec<f64>, Vec<PrimaryValues>) {
    let sorted = SortedAdjacency::build(ctx.g, ctx.cores.as_slice());
    bks_scores_with(ctx, &sorted, metric)
}

/// Scores every k-core with a prebuilt vertex ordering — BKS's
/// preprocessing analogue of [`crate::SearchContext`]'s neighbor counts.
/// Benchmarks that exclude preprocessing time (Figures 6/8, Table V)
/// reuse one [`SortedAdjacency`] across queries, like the paper.
pub fn bks_scores_with(
    ctx: &SearchContext<'_>,
    sorted: &SortedAdjacency,
    metric: &Metric,
) -> (Vec<f64>, Vec<PrimaryValues>) {
    let g = ctx.g;
    let cores = ctx.cores;
    let hcd = ctx.hcd;
    let num_nodes = hcd.num_nodes();

    let mut contribs = vec![Contrib::default(); num_nodes];

    // Nodes grouped by level for the descending sweep.
    let kmax = cores.kmax();
    let mut nodes_at: Vec<Vec<u32>> = vec![Vec::new(); kmax as usize + 1];
    for (i, node) in hcd.nodes().iter().enumerate() {
        nodes_at[node.k as usize].push(i as u32);
    }

    // Triangle counting (type-B only): serial enumeration identical in
    // output to PBKS's, attributed to the lowest-rank corner.
    if metric.kind() == MetricKind::TypeB {
        let mut marks = vec![false; g.num_vertices()];
        for v in g.vertices() {
            let dv = g.degree(v);
            let rv = ctx.ranks.rank(v);
            for &u in g.neighbors(v) {
                marks[u as usize] = true;
            }
            for &u in g.neighbors(v) {
                let du = g.degree(u);
                if du < dv || (du == dv && u < v) {
                    let ru = ctx.ranks.rank(u);
                    for &w in g.neighbors(u) {
                        if marks[w as usize] {
                            let rw = ctx.ranks.rank(w);
                            if rw < ru && rw < rv {
                                contribs[hcd.tid(w) as usize].triangles += 1;
                            }
                        }
                    }
                }
            }
            for &u in g.neighbors(v) {
                marks[u as usize] = false;
            }
        }
    }

    // Level sweep, kmax -> 0, with per-level barriers.
    let mut totals_ready = vec![false; num_nodes];
    for k in (0..=kmax).rev() {
        // Vertex contributions at this level, answered from the sorted
        // adjacency by scanning coreness runs.
        for v in ctx.ranks.shell(k).iter().copied() {
            let i = hcd.tid(v) as usize;
            let adj = sorted.neighbors(v);
            let gt = adj.iter().take_while(|&&u| cores.coreness(u) > k).count() as u64;
            let eq = adj[gt as usize..]
                .iter()
                .take_while(|&&u| cores.coreness(u) == k)
                .count() as u64;
            let lt = adj.len() as u64 - gt - eq;
            contribs[i].n += 1;
            contribs[i].m2 += 2 * gt + eq;
            contribs[i].b += lt as i64 - gt as i64;

            if metric.kind() == MetricKind::TypeB {
                // Triplets centered at v, per coreness run of the sorted
                // adjacency (this is where the vertex ordering pays off
                // for the serial algorithm).
                let mut gt_k = gt + eq;
                contribs[i].triplets += gt_k * gt_k.saturating_sub(1) / 2;
                let mut pos = (gt + eq) as usize;
                while pos < adj.len() {
                    let w = adj[pos];
                    let ck = cores.coreness(w);
                    let mut cnt = 0u64;
                    while pos < adj.len() && cores.coreness(adj[pos]) == ck {
                        cnt += 1;
                        pos += 1;
                    }
                    contribs[hcd.tid(w) as usize].triplets += cnt * (cnt - 1) / 2 + gt_k * cnt;
                    gt_k += cnt;
                }
            }
        }
        // Merge children (all at larger levels, already final) into the
        // level-k nodes — the "relies on the results of larger coreness"
        // dependency.
        for &i in &nodes_at[k as usize] {
            let children = hcd.node(i).children.clone();
            for c in children {
                debug_assert!(totals_ready[c as usize]);
                let child = contribs[c as usize];
                contribs[i as usize].merge(&child);
            }
            totals_ready[i as usize] = true;
        }
    }

    let primaries: Vec<PrimaryValues> = contribs.into_iter().map(|c| c.into_primary()).collect();
    let totals = ctx.totals();
    let scores = primaries.iter().map(|p| metric.score(p, &totals)).collect();
    (scores, primaries)
}

/// BKS: the serial search for the best k-core under `metric`.
pub fn bks(ctx: &SearchContext<'_>, metric: &Metric) -> Option<BestCore> {
    let (scores, primaries) = bks_scores(ctx, metric);
    let best = (0..scores.len())
        .max_by(|&a, &b| crate::metrics::score_cmp(scores[a], scores[b]).then(b.cmp(&a)))?;
    Some(BestCore {
        node: best as u32,
        k: ctx.hcd.node(best as u32).k,
        score: scores[best],
        primaries: primaries[best],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbks::pbks_scores;
    use crate::testutil::search_fixture;
    use hcd_par::Executor;

    #[test]
    fn sorted_adjacency_orders_by_coreness_desc() {
        let (g, cores, _) = search_fixture();
        let sorted = SortedAdjacency::build(&g, cores.as_slice());
        for v in g.vertices() {
            let adj = sorted.neighbors(v);
            assert_eq!(adj.len(), g.degree(v));
            for w in adj.windows(2) {
                let (c0, c1) = (cores.coreness(w[0]), cores.coreness(w[1]));
                assert!(c0 > c1 || (c0 == c1 && w[0] < w[1]), "v={v}");
            }
            // Same multiset of neighbors.
            let mut a: Vec<_> = adj.to_vec();
            a.sort_unstable();
            assert_eq!(a.as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn bks_equals_pbks_on_all_metrics() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let exec = Executor::sequential();
        for metric in Metric::ALL {
            let (s_bks, p_bks) = bks_scores(&ctx, &metric);
            let (s_pbks, p_pbks) = pbks_scores(&ctx, &metric, &exec);
            assert_eq!(p_bks, p_pbks, "{}", metric.name());
            assert_eq!(s_bks, s_pbks, "{}", metric.name());
        }
    }

    #[test]
    fn bks_best_matches_pbks_best() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        for metric in Metric::ALL {
            let a = bks(&ctx, &metric).unwrap();
            let b = crate::pbks::pbks(&ctx, &metric, &Executor::rayon(2)).unwrap();
            assert_eq!(a, b, "{}", metric.name());
        }
    }
}
