//! Approximate densest subgraph search (paper §V-C, Table IV).

use hcd_graph::{CsrGraph, VertexId};
use hcd_par::Executor;

use crate::metrics::Metric;
use crate::pbks::{pbks, BestCore};
use crate::preprocess::SearchContext;

/// PBKS-D: the k-core with the highest average degree, found in parallel.
///
/// A 0.5-approximation of the densest subgraph: the `kmax`-core is
/// already 0.5-approximate \[37\], and PBKS-D's answer is at least as dense
/// because the `kmax`-core is among its candidates.
pub fn pbks_d(ctx: &SearchContext<'_>, exec: &Executor) -> Option<BestCore> {
    pbks(ctx, &Metric::AverageDegree, exec)
}

/// Opt-D: the serial state of the art — BKS specialized to average
/// degree. Returns the same subgraph as [`pbks_d`] (Table IV's davg
/// columns for Opt-D and PBKS-D coincide).
pub fn opt_d(ctx: &SearchContext<'_>) -> Option<BestCore> {
    crate::bks::bks(ctx, &Metric::AverageDegree)
}

/// A CoreApp-style baseline \[37\]: return the densest connected `kmax`-core.
///
/// CoreApp locates its approximate densest subgraph inside the innermost
/// cores; the classic core-based candidate is the `kmax`-core, which
/// carries the 0.5-approximation guarantee. When several `kmax`-cores
/// exist, the densest one is returned. Output: `(vertices, average
/// degree)`.
pub fn coreapp(
    g: &CsrGraph,
    cores: &hcd_decomp::CoreDecomposition,
) -> Option<(Vec<VertexId>, f64)> {
    let kmax = cores.kmax();
    if g.num_vertices() == 0 {
        return None;
    }
    let (labels, count) =
        hcd_graph::traversal::connected_components_filtered(g, |v| cores.coreness(v) >= kmax);
    if count == 0 {
        return None;
    }
    // Vertex and internal-edge counts per component.
    let mut nv = vec![0u64; count];
    let mut me = vec![0u64; count];
    for v in g.vertices() {
        let l = labels[v as usize];
        if l == hcd_graph::traversal::NO_COMPONENT {
            continue;
        }
        nv[l as usize] += 1;
        for &u in g.neighbors(v) {
            if u > v && labels[u as usize] == l {
                me[l as usize] += 1;
            }
        }
    }
    let best = (0..count)
        .max_by(|&a, &b| {
            let da = 2.0 * me[a] as f64 / nv[a] as f64;
            let db = 2.0 * me[b] as f64 / nv[b] as f64;
            crate::metrics::score_cmp(da, db)
        })
        .unwrap();
    let vertices: Vec<VertexId> = g
        .vertices()
        .filter(|&v| labels[v as usize] == best as u32)
        .collect();
    let davg = 2.0 * me[best] as f64 / nv[best] as f64;
    Some((vertices, davg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::search_fixture;

    #[test]
    fn pbks_d_and_opt_d_agree() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let a = pbks_d(&ctx, &Executor::rayon(2)).unwrap();
        let b = opt_d(&ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pbks_d_beats_or_matches_coreapp() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let best = pbks_d(&ctx, &Executor::sequential()).unwrap();
        let (_, coreapp_davg) = coreapp(&g, &cores).unwrap();
        assert!(best.score >= coreapp_davg - 1e-9);
    }

    #[test]
    fn coreapp_returns_kmax_core() {
        let (g, cores, _) = search_fixture();
        let (vertices, davg) = coreapp(&g, &cores).unwrap();
        // The kmax-core of the fixture is S4 = {0..5}.
        assert_eq!(vertices, vec![0, 1, 2, 3, 4, 5]);
        assert!((davg - 28.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = hcd_graph::GraphBuilder::new().build();
        let cores = hcd_decomp::core_decomposition(&g);
        assert!(coreapp(&g, &cores).is_none());
    }
}
