//! Influential community search on the HCD (paper §VII, cf. ICP-Index
//! \[11\]).
//!
//! Given per-vertex influence weights, the *influence* of a k-core is the
//! minimum weight of its members; a top-r query asks for the `r` k-cores
//! of level at least `k` with the highest influence. The HCD makes this
//! index-able: the influence of every k-core is a bottom-up `min`
//! accumulation over the forest, computed once in parallel, after which
//! any `(k, r)` query is answered by scanning node summaries.

use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};

use crate::accumulate::try_accumulate_bottom_up;
use crate::preprocess::SearchContext;

/// A precomputed index answering top-r influential-community queries.
pub struct InfluenceIndex {
    /// `influence[i]`: min weight over the subtree (original k-core) of
    /// node `i`.
    influence: Vec<f64>,
    /// `(k, node)` pairs sorted by influence descending, for fast top-r.
    by_influence: Vec<(u32, u32)>,
}

/// One query answer: a k-core and its influence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfluentialCommunity {
    /// Tree node id (vertex set via `hcd.subtree_vertices(node)`).
    pub node: u32,
    /// The core's level.
    pub k: u32,
    /// `min` weight over the core's members.
    pub influence: f64,
}

impl InfluenceIndex {
    /// Builds the index: per-node min weight, then a parallel bottom-up
    /// `min` accumulation, then one sort. `O(n + |T| log |T|)` work.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the vertex count or any
    /// weight is NaN.
    pub fn build(ctx: &SearchContext<'_>, weights: &[f64], exec: &Executor) -> Self {
        match Self::try_build(ctx, weights, exec) {
            Ok(idx) => idx,
            Err(e) => e.raise(),
        }
    }

    /// Fallible version of [`InfluenceIndex::build`]: the per-node min
    /// pass polls the executor's cancellation checkpoint at a coarse
    /// member-count stride, so deadlines and cancel tokens abort the
    /// build promptly (see `hcd_par` failure model).
    ///
    /// # Panics
    ///
    /// Same contract panics as [`InfluenceIndex::build`] (wrong weight
    /// count, NaN weights) — those are caller bugs, not runtime failures.
    pub fn try_build(
        ctx: &SearchContext<'_>,
        weights: &[f64],
        exec: &Executor,
    ) -> Result<Self, ParError> {
        assert_eq!(
            weights.len(),
            ctx.g.num_vertices(),
            "one weight per vertex required"
        );
        assert!(
            weights.iter().all(|w| !w.is_nan()),
            "weights must not be NaN"
        );
        let hcd = ctx.hcd;
        let mut influence = vec![f64::INFINITY; hcd.num_nodes()];
        {
            struct SendPtr(*mut f64);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let out = SendPtr(influence.as_mut_ptr());
            exec.region("influence.node_min").try_for_each_chunk(
                hcd.num_nodes(),
                || (),
                |_, _, range| {
                    let _ = &out;
                    let mut since = 0usize;
                    for i in range {
                        let members = &hcd.node(i as u32).vertices;
                        let min = members
                            .iter()
                            .map(|&v| weights[v as usize])
                            .fold(f64::INFINITY, f64::min);
                        // SAFETY: disjoint slots.
                        unsafe { *out.0.add(i) = min };
                        since += members.len() + 1;
                        if since >= CHECKPOINT_STRIDE {
                            exec.checkpoint()?;
                            since = 0;
                        }
                    }
                    Ok(())
                },
            )?;
        }
        try_accumulate_bottom_up(
            hcd,
            &mut influence,
            |a, b| {
                if *b < *a {
                    *a = *b;
                }
            },
            exec,
        )?;
        let mut by_influence: Vec<(u32, u32)> = (0..hcd.num_nodes() as u32)
            .map(|i| (hcd.node(i).k, i))
            .collect();
        by_influence.sort_by(|&(_, a), &(_, b)| {
            influence[b as usize]
                .total_cmp(&influence[a as usize])
                .then(a.cmp(&b))
        });
        Ok(InfluenceIndex {
            influence,
            by_influence,
        })
    }

    /// Influence of node `i`'s original k-core.
    pub fn influence(&self, i: u32) -> f64 {
        self.influence[i as usize]
    }

    /// The top-`r` most influential k-cores with level `>= k`.
    ///
    /// Cores are returned in descending influence; containment is
    /// irrelevant for distinct levels (an inner core's influence is
    /// always `>=` its parent's, so nested cores can legitimately appear
    /// together, exactly as in \[11\]).
    pub fn top_r(&self, hcd: &hcd_core::Hcd, k: u32, r: usize) -> Vec<InfluentialCommunity> {
        self.by_influence
            .iter()
            .filter(|&&(level, _)| level >= k)
            .take(r)
            .map(|&(level, node)| InfluentialCommunity {
                node,
                k: level,
                influence: self.influence[node as usize],
            })
            .collect::<Vec<_>>()
            .into_iter()
            .inspect(|c| debug_assert_eq!(hcd.node(c.node).k, c.k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::search_fixture;
    use hcd_core::NO_NODE;

    fn weights_by_id(n: usize) -> Vec<f64> {
        (0..n).map(|v| v as f64).collect()
    }

    #[test]
    fn influence_is_subtree_min() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let weights = weights_by_id(g.num_vertices());
        for exec in [Executor::sequential(), Executor::rayon(3)] {
            let idx = InfluenceIndex::build(&ctx, &weights, &exec);
            for i in 0..hcd.num_nodes() as u32 {
                let want = hcd
                    .subtree_vertices(i)
                    .into_iter()
                    .map(|v| weights[v as usize])
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(idx.influence(i), want, "node {i}");
            }
        }
    }

    #[test]
    fn top_r_is_sorted_and_level_filtered() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let weights = weights_by_id(g.num_vertices());
        let idx = InfluenceIndex::build(&ctx, &weights, &Executor::sequential());
        let top = idx.top_r(&hcd, 3, 10);
        assert!(!top.is_empty());
        for c in &top {
            assert!(c.k >= 3);
        }
        for w in top.windows(2) {
            assert!(w[0].influence >= w[1].influence);
        }
        // The 4-core S4 = {0..5} has influence 0 (vertex 0); the 3-core
        // S3.2 = {9..12} has influence 9 and must rank first.
        assert_eq!(top[0].influence, 9.0);
        assert_eq!(hcd.node(top[0].node).k, 3);
    }

    #[test]
    fn children_at_least_as_influential_as_parents() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let weights = weights_by_id(g.num_vertices());
        let idx = InfluenceIndex::build(&ctx, &weights, &Executor::rayon(2));
        for i in 0..hcd.num_nodes() as u32 {
            let node = hcd.node(i);
            if node.parent != NO_NODE {
                assert!(idx.influence(i) >= idx.influence(node.parent));
            }
        }
    }

    #[test]
    fn r_larger_than_forest_returns_everything_at_level() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let weights = weights_by_id(g.num_vertices());
        let idx = InfluenceIndex::build(&ctx, &weights, &Executor::sequential());
        let top = idx.top_r(&hcd, 0, 100);
        assert_eq!(top.len(), hcd.num_nodes());
    }

    #[test]
    #[should_panic(expected = "one weight per vertex")]
    fn wrong_weight_length_panics() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        InfluenceIndex::build(&ctx, &[1.0, 2.0], &Executor::sequential());
    }
}
