//! Ablation variant of the type-A score computation: no §IV-A
//! preprocessing.
//!
//! The paper's preprocessing stores per-vertex greater/equal coreness
//! neighbor counts once, amortized over all subsequent metric queries.
//! This module recomputes those counts inline on every query by scanning
//! the adjacency list, quantifying what the preprocessing buys
//! (`ablation_preprocessing` bench target).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use hcd_core::Hcd;
use hcd_decomp::CoreDecomposition;
use hcd_graph::{CsrGraph, VertexId};
use hcd_par::{Executor, ParError, CHECKPOINT_STRIDE};

use crate::metrics::{GraphTotals, Metric, PrimaryValues};
use crate::pbks::Contrib;

/// Type-A scores without preprocessing: neighbor coreness classes are
/// recounted from the adjacency lists inside the scoring pass.
pub fn type_a_scores_inline(
    g: &CsrGraph,
    cores: &CoreDecomposition,
    hcd: &Hcd,
    metric: &Metric,
    exec: &Executor,
) -> Vec<f64> {
    match try_type_a_scores_inline(g, cores, hcd, metric, exec) {
        Ok(scores) => scores,
        Err(e) => e.raise(),
    }
}

/// Fallible version of [`type_a_scores_inline`]: the adjacency rescan
/// polls the executor's cancellation checkpoint at a coarse edge stride
/// (see `hcd_par` failure model).
pub fn try_type_a_scores_inline(
    g: &CsrGraph,
    cores: &CoreDecomposition,
    hcd: &Hcd,
    metric: &Metric,
    exec: &Executor,
) -> Result<Vec<f64>, ParError> {
    let num_nodes = hcd.num_nodes();
    let n_acc: Vec<AtomicU64> = (0..num_nodes).map(|_| AtomicU64::new(0)).collect();
    let m2_acc: Vec<AtomicU64> = (0..num_nodes).map(|_| AtomicU64::new(0)).collect();
    let b_acc: Vec<AtomicI64> = (0..num_nodes).map(|_| AtomicI64::new(0)).collect();

    exec.region("ablation.inline").try_for_each_chunk(
        g.num_vertices(),
        || (),
        |_, _, range| {
            let mut since = 0usize;
            for v in range {
                let v = v as VertexId;
                let c = cores.coreness(v);
                // The ablated part: rescan the adjacency per query.
                let mut gt = 0u64;
                let mut eq = 0u64;
                for &u in g.neighbors(v) {
                    let cu = cores.coreness(u);
                    if cu > c {
                        gt += 1;
                    } else if cu == c {
                        eq += 1;
                    }
                }
                let lt = g.degree(v) as i64 - gt as i64 - eq as i64;
                let i = hcd.tid(v) as usize;
                n_acc[i].fetch_add(1, Ordering::Relaxed);
                m2_acc[i].fetch_add(2 * gt + eq, Ordering::Relaxed);
                b_acc[i].fetch_add(lt - gt as i64, Ordering::Relaxed);
                since += g.degree(v) + 1;
                if since >= CHECKPOINT_STRIDE {
                    exec.checkpoint()?;
                    since = 0;
                }
            }
            Ok(())
        },
    )?;

    let mut contribs: Vec<Contrib> = (0..num_nodes)
        .map(|i| Contrib {
            n: n_acc[i].load(Ordering::Relaxed),
            m2: m2_acc[i].load(Ordering::Relaxed),
            b: b_acc[i].load(Ordering::Relaxed),
            triangles: 0,
            triplets: 0,
        })
        .collect();
    crate::accumulate::try_accumulate_bottom_up(hcd, &mut contribs, Contrib::merge, exec)?;
    let totals = GraphTotals {
        n: g.num_vertices() as u64,
        m: g.num_edges() as u64,
    };
    Ok(contribs
        .into_iter()
        .map(|c| {
            let p: PrimaryValues = c.into_primary();
            metric.score(&p, &totals)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbks::pbks_scores;
    use crate::preprocess::SearchContext;
    use crate::testutil::search_fixture;

    #[test]
    fn inline_variant_matches_preprocessed() {
        let (g, cores, hcd) = search_fixture();
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let exec = Executor::rayon(2);
        for metric in [
            Metric::AverageDegree,
            Metric::Conductance,
            Metric::Modularity,
        ] {
            let inline = type_a_scores_inline(&g, &cores, &hcd, &metric, &exec);
            let (pre, _) = pbks_scores(&ctx, &metric, &exec);
            assert_eq!(inline, pre, "{}", metric.name());
        }
    }
}
