//! Parallel bottom-up tree accumulation (paper Algorithm 3, lines 6–9;
//! cf. Sevilgen et al. \[36\]).

use hcd_core::Hcd;
use hcd_par::{Executor, ParError};

/// Accumulates per-node values bottom-up over the HCD forest in place:
/// after the call, `values[i]` holds the merge of node `i`'s own value
/// with the accumulated values of all its descendants — i.e. the value of
/// the node's *original k-core*.
///
/// Level-synchronous and pull-based: nodes of equal `k` are independent,
/// and children always have strictly larger `k`, so processing levels in
/// descending `k` lets every node gather its children without atomics.
pub fn accumulate_bottom_up<T, F>(hcd: &Hcd, values: &mut [T], merge: F, exec: &Executor)
where
    T: Send + Sync,
    F: Fn(&mut T, &T) + Sync,
{
    if let Err(e) = try_accumulate_bottom_up(hcd, values, merge, exec) {
        e.raise();
    }
}

/// Fallible version of [`accumulate_bottom_up`]. On `Err`, `values` may
/// hold a partially accumulated state and should be discarded (the
/// executor itself stays usable).
///
/// # Panics
///
/// Panics if `values.len() != hcd.num_nodes()` (a contract violation, not
/// a runtime failure).
pub fn try_accumulate_bottom_up<T, F>(
    hcd: &Hcd,
    values: &mut [T],
    merge: F,
    exec: &Executor,
) -> Result<(), ParError>
where
    T: Send + Sync,
    F: Fn(&mut T, &T) + Sync,
{
    assert_eq!(values.len(), hcd.num_nodes());
    if values.is_empty() {
        return Ok(());
    }
    // Bucket node ids by level, processed from deepest level upward.
    let kmax = hcd.nodes().iter().map(|n| n.k).max().unwrap_or(0);
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); kmax as usize + 1];
    for (i, node) in hcd.nodes().iter().enumerate() {
        levels[node.k as usize].push(i as u32);
    }

    struct SendPtr<T>(*mut T);
    unsafe impl<T> Send for SendPtr<T> {}
    unsafe impl<T> Sync for SendPtr<T> {}
    let base = SendPtr(values.as_mut_ptr());

    let mut levels_run = 0u64;
    for level in levels.iter().rev() {
        if level.is_empty() {
            continue;
        }
        levels_run += 1;
        exec.region("accumulate.level").try_for_each_chunk(
            level.len(),
            || (),
            |_, _, range| {
                let _ = &base;
                for &i in &level[range] {
                    let node = hcd.node(i);
                    // SAFETY: nodes within a level are distinct, and their
                    // children live at strictly larger k (already final,
                    // only read). No two nodes share a child.
                    let dst = unsafe { &mut *base.0.add(i as usize) };
                    for &c in &node.children {
                        let src = unsafe { &*base.0.add(c as usize) };
                        merge(dst, src);
                    }
                }
                Ok(())
            },
        )?;
    }
    // Tree depth in levels — the span of the accumulation.
    exec.add_counter("accumulate.levels", levels_run);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcd_core::phcd;
    use hcd_decomp::core_decomposition;
    use hcd_graph::GraphBuilder;

    #[test]
    fn accumulated_counts_equal_subtree_sizes() {
        // Build a non-trivial hierarchy and check vertex-count rollup.
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]) // K4
            .edges([(3, 4), (4, 5), (5, 6), (6, 4)]) // triangle + bridge
            .edges([(6, 7), (7, 8)])
            .build();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        for exec in [
            Executor::sequential(),
            Executor::rayon(4),
            Executor::simulated(2),
        ] {
            let mut counts: Vec<usize> = hcd.nodes().iter().map(|n| n.vertices.len()).collect();
            accumulate_bottom_up(&hcd, &mut counts, |a, b| *a += *b, &exec);
            for i in 0..hcd.num_nodes() as u32 {
                assert_eq!(
                    counts[i as usize],
                    hcd.subtree_vertices(i).len(),
                    "node {i} in mode {}",
                    exec.mode_name()
                );
            }
        }
    }

    #[test]
    fn empty_forest_is_fine() {
        let g = GraphBuilder::new().build();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let mut values: Vec<u64> = Vec::new();
        accumulate_bottom_up(&hcd, &mut values, |a, b| *a += *b, &Executor::rayon(2));
        assert!(values.is_empty());
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let g = GraphBuilder::new().edges([(0, 1)]).build();
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let mut values = vec![0u64; hcd.num_nodes() + 1];
        accumulate_bottom_up(&hcd, &mut values, |a, b| *a += *b, &Executor::sequential());
    }
}
