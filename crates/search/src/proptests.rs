//! Property tests: PBKS and BKS agree with each other and with the
//! brute-force primary-value oracle on arbitrary graphs and every metric.

use proptest::prelude::*;

use hcd_core::phcd;
use hcd_decomp::core_decomposition;
use hcd_graph::builder::build_from_edges;
use hcd_par::Executor;

use crate::bestk::core_set_scores;
use crate::bks::bks_scores;
use crate::metrics::Metric;
use crate::pbks::pbks_scores;
use crate::preprocess::SearchContext;
use crate::testutil::primaries_by_definition;

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_n, 0..max_n), 1..max_m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pbks_primaries_match_oracle(edges in arb_edges(30, 160)) {
        let g = build_from_edges(edges, 0);
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let ctx = SearchContext::new(&g, &cores, &hcd);
        for exec in [Executor::sequential(), Executor::rayon(4), Executor::simulated(2)] {
            let (_, primaries) = pbks_scores(&ctx, &Metric::ClusteringCoefficient, &exec);
            for i in 0..hcd.num_nodes() as u32 {
                let want = primaries_by_definition(&g, &hcd.subtree_vertices(i));
                prop_assert_eq!(primaries[i as usize], want, "node {} mode {}", i, exec.mode_name());
            }
        }
    }

    #[test]
    fn bks_equals_pbks_everywhere(edges in arb_edges(30, 160)) {
        let g = build_from_edges(edges, 0);
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let exec = Executor::rayon(3);
        for metric in Metric::ALL {
            let (sb, pb) = bks_scores(&ctx, &metric);
            let (sp, pp) = pbks_scores(&ctx, &metric, &exec);
            prop_assert_eq!(pb, pp, "{}", metric.name());
            prop_assert_eq!(sb, sp, "{}", metric.name());
        }
    }

    #[test]
    fn core_set_scores_match_oracle(edges in arb_edges(24, 120)) {
        let g = build_from_edges(edges, 0);
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let ctx = SearchContext::new(&g, &cores, &hcd);
        let levels = core_set_scores(&ctx, &Metric::ClusteringCoefficient, &Executor::rayon(2));
        for ls in levels {
            let want = primaries_by_definition(&g, &cores.core_set(ls.k));
            prop_assert_eq!(ls.primaries, want, "k={}", ls.k);
        }
    }

    #[test]
    fn densest_guarantee_holds(edges in arb_edges(24, 120)) {
        // PBKS-D's output is at least as dense as the kmax-core.
        let g = build_from_edges(edges, 0);
        let cores = core_decomposition(&g);
        let hcd = phcd(&g, &cores, &Executor::sequential());
        let ctx = SearchContext::new(&g, &cores, &hcd);
        if let Some(best) = crate::densest::pbks_d(&ctx, &Executor::sequential()) {
            if let Some((_, coreapp_davg)) = crate::densest::coreapp(&g, &cores) {
                prop_assert!(best.score >= coreapp_davg - 1e-9);
            }
        }
    }
}
