//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use crate::builder::build_from_edges;
use crate::io::{read_binary, read_edge_list, write_binary, write_edge_list};
use crate::permute::Permutation;
use crate::subgraph::InducedSubgraph;
use crate::traversal::connected_components;
use crate::VertexId;

/// Strategy: an arbitrary messy edge list over up to `max_n` vertices.
pub fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_output_satisfies_invariants(edges in arb_edges(40, 200)) {
        let g = build_from_edges(edges, 0);
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn builder_preserves_edge_membership(edges in arb_edges(30, 100)) {
        let g = build_from_edges(edges.clone(), 0);
        for (u, v) in edges {
            if u != v {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn text_io_roundtrip(edges in arb_edges(30, 100)) {
        let g = build_from_edges(edges, 0);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn binary_io_roundtrip(edges in arb_edges(30, 100)) {
        let g = build_from_edges(edges, 0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn components_partition_vertices(edges in arb_edges(30, 100)) {
        let g = build_from_edges(edges, 0);
        let (labels, count) = connected_components(&g);
        // Every vertex labelled, labels dense in 0..count.
        for &l in &labels {
            prop_assert!((l as usize) < count);
        }
        // Endpoints of every edge share a label.
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
    }

    #[test]
    fn relabel_roundtrips_through_inverse(edges in arb_edges(30, 120), keys in prop::collection::vec(any::<u32>(), 30)) {
        let g = build_from_edges(edges, 30);
        // Arbitrary permutation from random sort keys (ties fall back to
        // id order inside by_key_desc, so this is always a bijection).
        let p = Permutation::by_key_desc(&keys[..g.num_vertices()]);
        let r = g.relabel(&p);
        prop_assert!(r.check_invariants().is_ok());
        prop_assert_eq!(r.num_edges(), g.num_edges());
        // Vertex ids round-trip and per-vertex structure is preserved.
        for v in g.vertices() {
            prop_assert_eq!(p.to_old(p.to_new(v)), v);
            prop_assert_eq!(r.degree(p.to_new(v)), g.degree(v));
        }
        for (u, v) in g.edges() {
            prop_assert!(r.has_edge(p.to_new(u), p.to_new(v)));
        }
        // Relabeling by the inverse permutation restores the original.
        let inv = Permutation::from_order(p.forward().to_vec()).unwrap();
        prop_assert_eq!(r.relabel(&inv), g.clone());
        // Per-vertex values indexed by new ids unmap to old indexing.
        let by_new: Vec<u32> = (0..r.num_vertices() as VertexId).map(|v| r.degree(v) as u32).collect();
        let by_old = p.unmap_values(&by_new);
        for v in g.vertices() {
            prop_assert_eq!(by_old[v as usize], g.degree(v) as u32);
        }
    }

    #[test]
    fn degree_order_is_sorted_and_deterministic(edges in arb_edges(40, 150)) {
        let g = build_from_edges(edges, 0);
        let p = Permutation::degree_order(&g);
        prop_assert_eq!(p.clone(), Permutation::degree_order(&g));
        let r = g.relabel(&p);
        // New ids are in non-increasing degree order.
        for new in 1..r.num_vertices() as VertexId {
            prop_assert!(r.degree(new - 1) >= r.degree(new));
        }
    }

    #[test]
    fn induced_subgraph_edge_consistency(edges in arb_edges(25, 80), pick in prop::collection::vec(any::<bool>(), 25)) {
        let g = build_from_edges(edges, 25);
        let subset: Vec<VertexId> = (0..g.num_vertices() as VertexId)
            .filter(|&v| pick.get(v as usize).copied().unwrap_or(false))
            .collect();
        let s = InducedSubgraph::new(&g, &subset);
        prop_assert!(s.graph().check_invariants().is_ok());
        // Every induced edge exists in the original.
        for (a, b) in s.graph().edges() {
            prop_assert!(g.has_edge(s.original_id(a), s.original_id(b)));
        }
        // Every original edge inside the subset is induced.
        let in_subset: Vec<bool> = {
            let mut f = vec![false; g.num_vertices()];
            for &v in &subset { f[v as usize] = true; }
            f
        };
        let expected = g
            .edges()
            .filter(|&(u, v)| in_subset[u as usize] && in_subset[v as usize])
            .count();
        prop_assert_eq!(s.graph().num_edges(), expected);
    }
}
