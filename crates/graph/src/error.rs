//! Error type for graph I/O and validation.

use std::fmt;
use std::io;

/// Errors produced by graph parsing, serialization, and validation.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line of a text edge list could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A binary graph file had an invalid header or inconsistent arrays.
    Format(String),
    /// A binary graph file violated the framing format itself (typed so
    /// callers can distinguish truncation from corruption).
    Binary(IoFormatError),
}

/// Typed failures of the compact binary graph format. `Truncated`-class
/// variants mean the file ended early (a torn write); the others mean
/// the bytes that *are* present contradict the format (corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoFormatError {
    /// The 8-byte magic/version tag is not a known format version.
    BadMagic([u8; 8]),
    /// The header-declared element counts cannot fit in memory or in the
    /// `u32` id space.
    CountOverflow {
        /// Which count overflowed (`"vertex"` or `"arc"`).
        what: &'static str,
        /// The header-declared value.
        value: u64,
    },
    /// The header-declared counts imply a payload longer than the bytes
    /// actually available. Detected before any payload allocation.
    TooShort {
        /// Bytes the header implies the file must contain.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The stream ended mid-structure.
    Truncated {
        /// Which structure was being read.
        context: &'static str,
    },
    /// Payload checksum mismatch (v2 files only).
    CrcMismatch {
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// The payload arrays are inconsistent (decreasing offsets,
    /// out-of-range neighbor ids, …).
    Invalid(String),
}

impl IoFormatError {
    /// Whether this error is consistent with a torn (incomplete) write,
    /// as opposed to in-place corruption of bytes that were written.
    pub fn is_truncation(&self) -> bool {
        matches!(
            self,
            IoFormatError::TooShort { .. } | IoFormatError::Truncated { .. }
        )
    }
}

impl fmt::Display for IoFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoFormatError::BadMagic(m) => write!(f, "bad magic header {m:02x?}"),
            IoFormatError::CountOverflow { what, value } => {
                write!(f, "header {what} count {value} not addressable")
            }
            IoFormatError::TooShort { needed, actual } => write!(
                f,
                "header implies {needed} bytes but only {actual} are present"
            ),
            IoFormatError::Truncated { context } => {
                write!(f, "file truncated while reading {context}")
            }
            IoFormatError::CrcMismatch { expected, actual } => write!(
                f,
                "payload checksum mismatch: header says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            IoFormatError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<IoFormatError> for GraphError {
    fn from(e: IoFormatError) -> Self {
        GraphError::Binary(e)
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Format(msg) => write!(f, "format error: {msg}"),
            GraphError::Binary(e) => write!(f, "binary format error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e = GraphError::Format("truncated".into());
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn binary_error_displays_and_classifies() {
        let torn = GraphError::from(IoFormatError::Truncated { context: "offsets" });
        assert!(torn.to_string().contains("truncated while reading offsets"));
        let crc = IoFormatError::CrcMismatch {
            expected: 0xDEAD_BEEF,
            actual: 0x1234_5678,
        };
        assert!(!crc.is_truncation());
        assert!(crc.to_string().contains("0xdeadbeef"));
        assert!(IoFormatError::TooShort {
            needed: 64,
            actual: 10
        }
        .is_truncation());
        assert!(!IoFormatError::BadMagic(*b"NOTMAGIC").is_truncation());
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
