//! Error type for graph I/O and validation.

use std::fmt;
use std::io;

/// Errors produced by graph parsing, serialization, and validation.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line of a text edge list could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A binary graph file had an invalid header or inconsistent arrays.
    Format(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e = GraphError::Format("truncated".into());
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
