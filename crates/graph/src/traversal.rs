//! Breadth-first search and connected components.

use crate::csr::{CsrGraph, VertexId};

/// Label of the component containing each vertex, or `NO_COMPONENT` for
/// vertices excluded by a filter.
pub const NO_COMPONENT: u32 = u32::MAX;

/// BFS from `source`, visiting only vertices accepted by `filter`.
///
/// Returns the visited vertex set in discovery order. `source` itself must
/// pass the filter or the result is empty. This is the primitive behind the
/// paper's *local k-core search* (RC): a BFS from `v` restricted to
/// vertices of coreness `>= c(v)`.
pub fn bfs_filtered<F: Fn(VertexId) -> bool>(
    g: &CsrGraph,
    source: VertexId,
    filter: F,
) -> Vec<VertexId> {
    if !filter(source) {
        return Vec::new();
    }
    let mut visited = vec![false; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    visited[source as usize] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in g.neighbors(v) {
            if !visited[u as usize] && filter(u) {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Plain BFS visiting the whole component of `source`.
pub fn bfs(g: &CsrGraph, source: VertexId) -> Vec<VertexId> {
    bfs_filtered(g, source, |_| true)
}

/// Connected components over the subgraph induced by `filter`.
///
/// Returns `(labels, count)`: vertices failing the filter get
/// [`NO_COMPONENT`]; others get a label in `0..count`. Labels are assigned
/// in order of the smallest vertex id in each component, which makes the
/// output deterministic.
pub fn connected_components_filtered<F: Fn(VertexId) -> bool>(
    g: &CsrGraph,
    filter: F,
) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut labels = vec![NO_COMPONENT; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as VertexId {
        if labels[s as usize] != NO_COMPONENT || !filter(s) {
            continue;
        }
        labels[s as usize] = count;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if labels[u as usize] == NO_COMPONENT && filter(u) {
                    labels[u as usize] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (labels, count as usize)
}

/// Connected components of the whole graph.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    connected_components_filtered(g, |_| true)
}

/// Size of the largest connected component (0 for the empty graph).
pub fn largest_component_size(g: &CsrGraph) -> usize {
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        if l != NO_COMPONENT {
            sizes[l as usize] += 1;
        }
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_components() -> CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (3, 4)])
            .min_vertices(6)
            .build()
    }

    #[test]
    fn bfs_visits_component() {
        let g = two_components();
        let order = bfs(&g, 0);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 0);
        assert!(order.contains(&2));
    }

    #[test]
    fn bfs_filtered_respects_filter() {
        let g = two_components();
        let order = bfs_filtered(&g, 0, |v| v != 1);
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn bfs_filtered_rejected_source() {
        let g = two_components();
        assert!(bfs_filtered(&g, 0, |v| v != 0).is_empty());
    }

    #[test]
    fn components_counts_isolated() {
        let g = two_components();
        let (labels, count) = connected_components(&g);
        // {0,1,2}, {3,4}, {5}
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[5], 2);
    }

    #[test]
    fn components_filtered() {
        let g = two_components();
        let (labels, count) = connected_components_filtered(&g, |v| v <= 1);
        assert_eq!(count, 1);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 0);
        assert_eq!(labels[2], NO_COMPONENT);
    }

    #[test]
    fn largest_component() {
        let g = two_components();
        assert_eq!(largest_component_size(&g), 3);
        assert_eq!(largest_component_size(&CsrGraph::empty(0)), 0);
    }

    #[test]
    fn labels_are_deterministic_by_min_vertex() {
        let g = two_components();
        let (labels, _) = connected_components(&g);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[3], 1);
        assert_eq!(labels[5], 2);
    }
}
