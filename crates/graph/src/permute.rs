//! Vertex relabeling for locality-ordered algorithms.
//!
//! Construction-time hot loops (union phases, peeling waves) stream the
//! CSR adjacency of one vertex after another; when vertex ids are
//! assigned arbitrarily, consecutive high-degree vertices live far apart
//! and every scan is a cache miss. A [`Permutation`] relabels vertices —
//! typically by descending degree, so hubs become small, densely packed
//! ids — and [`CsrGraph::relabel`] rebuilds the CSR under the new ids.
//! Algorithms run on the relabeled graph and map results back through
//! the inverse side of the permutation, so callers never observe the
//! internal ordering.

use crate::csr::{CsrGraph, VertexId};

/// A bijection on the vertex ids `0..n`, stored in both directions.
///
/// * the *forward* map sends an **old** (original) id to its **new**
///   (relabeled) id,
/// * the *inverse* map sends a new id back to the old one.
///
/// # Examples
///
/// ```
/// use hcd_graph::{GraphBuilder, Permutation};
///
/// // A star: vertex 3 has the highest degree.
/// let g = GraphBuilder::new().edges([(3, 0), (3, 1), (3, 2)]).build();
/// let p = Permutation::degree_order(&g);
/// assert_eq!(p.to_new(3), 0); // hub gets the smallest new id
/// assert_eq!(p.to_old(0), 3);
/// let r = g.relabel(&p);
/// assert_eq!(r.degree(0), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<VertexId>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<VertexId>,
}

impl Permutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        Permutation {
            new_of_old: ids.clone(),
            old_of_new: ids,
        }
    }

    /// Builds a permutation from its inverse side: `old_of_new[new]` is
    /// the old id placed at position `new`. Returns `Err` when the input
    /// is not a permutation of `0..n`.
    pub fn from_order(old_of_new: Vec<VertexId>) -> Result<Self, String> {
        let n = old_of_new.len();
        let mut new_of_old = vec![VertexId::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            if old as usize >= n {
                return Err(format!("id {old} out of range for {n} vertices"));
            }
            if new_of_old[old as usize] != VertexId::MAX {
                return Err(format!("id {old} appears twice"));
            }
            new_of_old[old as usize] = new as VertexId;
        }
        Ok(Permutation {
            new_of_old,
            old_of_new,
        })
    }

    /// Orders vertices by descending key, ties broken by ascending old
    /// id (so the result is deterministic). `keys[v]` is the sort key of
    /// old vertex `v`; degree and coreness orderings are both instances.
    pub fn by_key_desc(keys: &[u32]) -> Self {
        let mut old_of_new: Vec<VertexId> = (0..keys.len() as VertexId).collect();
        old_of_new.sort_by_key(|&v| (std::cmp::Reverse(keys[v as usize]), v));
        Self::from_order(old_of_new).expect("sorted ids form a permutation")
    }

    /// Degree ordering: hubs first. High-degree vertices end up with
    /// small, contiguous ids, which concentrates the union-find traffic
    /// of dense shells into a compact id range.
    pub fn degree_order(g: &CsrGraph) -> Self {
        let degrees: Vec<u32> = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v) as u32)
            .collect();
        Self::by_key_desc(&degrees)
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether the permutation covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// Whether this is the identity (relabeling would be a no-op).
    pub fn is_identity(&self) -> bool {
        self.old_of_new
            .iter()
            .enumerate()
            .all(|(new, &old)| new as VertexId == old)
    }

    /// The new id of old vertex `old`.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.new_of_old[old as usize]
    }

    /// The old id of new vertex `new`.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.old_of_new[new as usize]
    }

    /// The forward map as a slice: `forward()[old] = new`.
    pub fn forward(&self) -> &[VertexId] {
        &self.new_of_old
    }

    /// The inverse map as a slice: `inverse()[new] = old`.
    pub fn inverse(&self) -> &[VertexId] {
        &self.old_of_new
    }

    /// Re-indexes a per-vertex value array from new-id indexing back to
    /// old-id indexing: `result[old] = by_new[to_new(old)]`. This is how
    /// coreness (or any other per-vertex output) computed on a relabeled
    /// graph is reported in original ids.
    pub fn unmap_values<T: Copy>(&self, by_new: &[T]) -> Vec<T> {
        assert_eq!(by_new.len(), self.len(), "value array length mismatch");
        self.new_of_old
            .iter()
            .map(|&new| by_new[new as usize])
            .collect()
    }
}

impl CsrGraph {
    /// Rebuilds the graph under the relabeling `p`: new vertex
    /// `p.to_new(v)` has the adjacency of old vertex `v`, with every
    /// neighbor mapped and the slice re-sorted (CSR invariant). The
    /// result is isomorphic to `self`; `p.len()` must equal the vertex
    /// count.
    pub fn relabel(&self, p: &Permutation) -> CsrGraph {
        let n = self.num_vertices();
        assert_eq!(p.len(), n, "permutation covers {} of {n} vertices", p.len());
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for new in 0..n as VertexId {
            offsets.push(offsets[new as usize] + self.degree(p.to_old(new)));
        }
        let mut neighbors = Vec::with_capacity(self.num_arcs());
        for new in 0..n as VertexId {
            let start = neighbors.len();
            neighbors.extend(self.neighbors(p.to_old(new)).iter().map(|&u| p.to_new(u)));
            neighbors[start..].sort_unstable();
        }
        CsrGraph::from_csr(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph() -> CsrGraph {
        GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build()
    }

    #[test]
    fn identity_roundtrips() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.len(), 4);
        let g = path_graph();
        assert_eq!(g.relabel(&p), g);
    }

    #[test]
    fn from_order_validates() {
        assert!(Permutation::from_order(vec![2, 0, 1]).is_ok());
        assert!(Permutation::from_order(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_order(vec![0, 3]).is_err());
        assert!(Permutation::from_order(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn forward_and_inverse_agree() {
        let p = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
        for old in 0..4 {
            assert_eq!(p.to_old(p.to_new(old)), old);
        }
        for new in 0..4 {
            assert_eq!(p.to_new(p.to_old(new)), new);
        }
        assert_eq!(p.forward().len(), p.inverse().len());
    }

    #[test]
    fn degree_order_puts_hubs_first_with_stable_ties() {
        // Degrees: 0 -> 1, 1 -> 3, 2 -> 2, 3 -> 2.
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (1, 3), (2, 3)])
            .build();
        let p = Permutation::degree_order(&g);
        assert_eq!(p.inverse(), &[1, 2, 3, 0]); // ties 2,3 in id order
        assert!(!p.is_identity());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .min_vertices(5)
            .build();
        let p = Permutation::degree_order(&g);
        let r = g.relabel(&p);
        r.check_invariants().unwrap();
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(r.has_edge(p.to_new(u), p.to_new(v)));
        }
        for v in g.vertices() {
            assert_eq!(r.degree(p.to_new(v)), g.degree(v));
        }
        // Relabeling back by the inverse permutation restores the graph.
        let inv = Permutation::from_order(p.forward().to_vec()).unwrap();
        assert_eq!(r.relabel(&inv), g);
    }

    #[test]
    fn unmap_values_reindexes_to_old_ids() {
        let p = Permutation::from_order(vec![2, 0, 1]).unwrap();
        // Values indexed by new id: new 0 (old 2) -> 'c', etc.
        let by_new = ['c', 'a', 'b'];
        assert_eq!(p.unmap_values(&by_new), vec!['a', 'b', 'c']);
    }

    #[test]
    fn empty_graph_relabel() {
        let g = CsrGraph::empty(0);
        let p = Permutation::degree_order(&g);
        assert!(p.is_empty() && p.is_identity());
        assert_eq!(g.relabel(&p).num_vertices(), 0);
    }
}
