//! Summary statistics used when reporting dataset tables.

use crate::csr::CsrGraph;
use crate::traversal::largest_component_size;

/// Basic statistics of a graph, in the shape of the paper's Table II
/// columns that depend only on the graph itself (`n`, `m`, `davg`).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Size of the largest connected component.
    pub largest_cc: usize,
}

impl GraphStats {
    /// Computes all statistics in one pass plus a BFS sweep.
    pub fn compute(g: &CsrGraph) -> Self {
        GraphStats {
            n: g.num_vertices(),
            m: g.num_edges(),
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
            largest_cc: largest_component_size(g),
        }
    }
}

/// Degree histogram: `hist[d]` is the number of vertices of degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_star() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (0, 4)])
            .build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.largest_cc, 5);
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (3, 4)])
            .min_vertices(6)
            .build();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[0], 1); // vertex 5
        assert_eq!(h[1], 4); // 0, 2, 3, 4
        assert_eq!(h[2], 1); // 1
    }

    #[test]
    fn histogram_of_empty_graph() {
        let g = GraphBuilder::new().min_vertices(3).build();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![3]);
    }
}
