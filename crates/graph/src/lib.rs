//! Graph substrate for hierarchical core decomposition.
//!
//! This crate provides the compact, immutable [`CsrGraph`] representation
//! that every algorithm in the workspace operates on, together with the
//! tooling needed to obtain one:
//!
//! * [`GraphBuilder`] — assemble an undirected simple graph from an edge
//!   list (deduplicating, symmetrizing, and dropping self-loops),
//! * [`io`] — text edge-list and compact binary readers/writers,
//! * [`traversal`] — BFS and connected components,
//! * [`subgraph`] — induced subgraphs with id remapping,
//! * [`permute`] — vertex relabeling ([`Permutation`], [`CsrGraph::relabel`])
//!   for locality-ordered construction, with inverse maps back to
//!   original ids,
//! * [`hash`] — a fast integer-keyed hash map (FxHash-style), used across
//!   the workspace instead of SipHash-based `std` maps.
//!
//! All graphs are undirected and simple: every edge `{u, v}` with `u != v`
//! appears exactly once in each endpoint's adjacency list, and adjacency
//! lists are sorted by vertex id.

pub mod builder;
pub mod crc32;
pub mod csr;
pub mod error;
pub mod hash;
pub mod io;
pub mod permute;
pub mod stats;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use crc32::{crc32, Crc32};
pub use csr::{CsrGraph, VertexId};
pub use error::{GraphError, IoFormatError};
pub use hash::{FxHashMap, FxHashSet};
pub use permute::Permutation;
pub use subgraph::InducedSubgraph;

#[cfg(test)]
mod proptests;
