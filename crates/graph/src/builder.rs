//! Edge-list to CSR construction.

use crate::csr::{CsrGraph, VertexId};

/// Builds an undirected simple [`CsrGraph`] from an arbitrary edge list.
///
/// The builder accepts edges in any order and orientation, possibly with
/// duplicates and self-loops; `build` symmetrizes, deduplicates, and drops
/// self-loops, producing sorted adjacency lists. This mirrors the paper's
/// setup where "all directed datasets are symmetrized".
///
/// # Examples
///
/// ```
/// use hcd_graph::GraphBuilder;
///
/// // Duplicates, reversed orientation, and self-loops are cleaned up.
/// let g = GraphBuilder::new()
///     .edges([(1, 0), (0, 1), (2, 2), (1, 2)])
///     .build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one edge; orientation is irrelevant.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges.
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// Forces the graph to contain at least `n` vertices, so that trailing
    /// isolated vertices are representable.
    pub fn min_vertices(mut self, n: usize) -> Self {
        self.min_vertices = n;
        self
    }

    /// Number of raw (uncleaned) edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR graph.
    pub fn build(self) -> CsrGraph {
        build_from_edges(self.edges, self.min_vertices)
    }
}

/// Symmetrizes, deduplicates, drops self-loops, and packs into CSR.
///
/// Runs in `O(n + m)` expected time using two counting-sort passes instead
/// of a comparison sort of the arc list.
pub fn build_from_edges(edges: Vec<(VertexId, VertexId)>, min_vertices: usize) -> CsrGraph {
    let mut n = min_vertices;
    for &(u, v) in &edges {
        n = n.max(u as usize + 1).max(v as usize + 1);
    }

    // Count both arc directions, skipping self-loops.
    let mut counts = vec![0usize; n + 1];
    for &(u, v) in &edges {
        if u != v {
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts;

    // Scatter arcs.
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0 as VertexId; offsets[n]];
    for &(u, v) in &edges {
        if u != v {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
    }
    drop(cursor);

    // Sort and deduplicate each adjacency list, compacting in place.
    let mut out_offsets = vec![0usize; n + 1];
    let mut write = 0usize;
    let mut read_ranges: Vec<(usize, usize)> = Vec::with_capacity(n);
    for v in 0..n {
        read_ranges.push((offsets[v], offsets[v + 1]));
    }
    for (v, &(start, end)) in read_ranges.iter().enumerate() {
        let slice = &mut neighbors[start..end];
        slice.sort_unstable();
        let mut prev: Option<VertexId> = None;
        let mut kept = 0usize;
        for i in 0..slice.len() {
            let x = slice[i];
            if Some(x) != prev {
                slice[kept] = x;
                kept += 1;
                prev = Some(x);
            }
        }
        // Move the deduped run to the global write cursor.
        neighbors.copy_within(start..start + kept, write);
        write += kept;
        out_offsets[v + 1] = write;
    }
    neighbors.truncate(write);

    CsrGraph::from_csr(out_offsets, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_parallel_edges() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 1), (1, 0), (0, 1)])
            .build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn removes_self_loops() {
        let g = GraphBuilder::new().edges([(0, 0), (0, 1), (1, 1)]).build();
        assert_eq!(g.num_edges(), 1);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn min_vertices_adds_isolated_tail() {
        let g = GraphBuilder::new().edge(0, 1).min_vertices(10).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn vertex_ids_beyond_min_vertices_extend_n() {
        let g = GraphBuilder::new().edge(7, 3).min_vertices(2).build();
        assert_eq!(g.num_vertices(), 8);
        assert!(g.has_edge(3, 7));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_sorted_after_build() {
        let g = GraphBuilder::new()
            .edges([(0, 5), (0, 2), (0, 9), (0, 1)])
            .build();
        assert_eq!(g.neighbors(0), &[1, 2, 5, 9]);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn only_self_loops_yields_isolated_vertices() {
        let g = GraphBuilder::new().edges([(0, 0), (3, 3)]).build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn staged_edges_counts_raw_input() {
        let b = GraphBuilder::new().edges([(0, 1), (0, 1)]);
        assert_eq!(b.staged_edges(), 2);
    }
}
