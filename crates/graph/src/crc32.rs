//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) used by the
//! checksummed binary graph format and the serving layer's write-ahead
//! log. Implemented in-repo because the workspace builds offline with
//! no external crates; a table-driven byte-at-a-time kernel is plenty
//! for the few megabytes per checkpoint these paths move.

/// Precomputed table for the reflected IEEE polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC32 state. Feed bytes with [`Crc32::update`], read the
/// final checksum with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh state (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum over everything absorbed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"checksummed payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x40;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 0x40;
        }
    }
}
