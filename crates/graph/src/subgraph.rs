//! Induced subgraphs with id remapping.

use crate::csr::{CsrGraph, VertexId};

/// A subgraph induced by a vertex subset, with a dense id remapping.
///
/// The induced graph relabels the selected vertices `0..k` (in ascending
/// original id order) so it can be fed back into any algorithm in the
/// workspace; [`InducedSubgraph::original_id`] maps back.
///
/// # Examples
///
/// ```
/// use hcd_graph::{GraphBuilder, InducedSubgraph};
///
/// let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build();
/// let sub = InducedSubgraph::new(&g, &[1, 2, 3]);
/// assert_eq!(sub.graph().num_vertices(), 3);
/// assert_eq!(sub.graph().num_edges(), 2);
/// assert_eq!(sub.original_id(0), 1);
/// ```
pub struct InducedSubgraph {
    graph: CsrGraph,
    to_original: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Induces the subgraph on `vertices` (duplicates are ignored).
    pub fn new(g: &CsrGraph, vertices: &[VertexId]) -> Self {
        let mut sorted: Vec<VertexId> = vertices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let mut to_new = vec![VertexId::MAX; g.num_vertices()];
        for (new_id, &v) in sorted.iter().enumerate() {
            to_new[v as usize] = new_id as VertexId;
        }

        let mut offsets = Vec::with_capacity(sorted.len() + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        for &v in &sorted {
            for &u in g.neighbors(v) {
                let nu = to_new[u as usize];
                if nu != VertexId::MAX {
                    neighbors.push(nu);
                }
            }
            offsets.push(neighbors.len());
        }
        // Neighbor ids were remapped monotonically, so slices stay sorted.
        InducedSubgraph {
            graph: CsrGraph::from_csr(offsets, neighbors),
            to_original: sorted,
        }
    }

    /// The induced graph with dense ids `0..k`.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Maps a dense subgraph id back to the original graph id.
    pub fn original_id(&self, sub_id: VertexId) -> VertexId {
        self.to_original[sub_id as usize]
    }

    /// The full dense-to-original id table (ascending).
    pub fn original_ids(&self) -> &[VertexId] {
        &self.to_original
    }

    /// Consumes the wrapper, returning `(graph, id table)`.
    pub fn into_parts(self) -> (CsrGraph, Vec<VertexId>) {
        (self.graph, self.to_original)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path5() -> CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .build()
    }

    #[test]
    fn induces_edges_within_subset_only() {
        let g = path5();
        let s = InducedSubgraph::new(&g, &[0, 1, 3, 4]);
        assert_eq!(s.graph().num_vertices(), 4);
        assert_eq!(s.graph().num_edges(), 2); // 0-1 and 3-4
    }

    #[test]
    fn remapping_is_monotone() {
        let g = path5();
        let s = InducedSubgraph::new(&g, &[4, 2, 0]);
        assert_eq!(s.original_ids(), &[0, 2, 4]);
        assert_eq!(s.original_id(1), 2);
    }

    #[test]
    fn duplicates_ignored() {
        let g = path5();
        let s = InducedSubgraph::new(&g, &[1, 1, 2, 2]);
        assert_eq!(s.graph().num_vertices(), 2);
        assert_eq!(s.graph().num_edges(), 1);
    }

    #[test]
    fn empty_subset() {
        let g = path5();
        let s = InducedSubgraph::new(&g, &[]);
        assert_eq!(s.graph().num_vertices(), 0);
        assert_eq!(s.graph().num_edges(), 0);
    }

    #[test]
    fn induced_graph_passes_invariants() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build();
        let s = InducedSubgraph::new(&g, &[0, 2, 3]);
        assert!(s.graph().check_invariants().is_ok());
        assert_eq!(s.graph().num_edges(), 3); // triangle 0-2-3
    }

    #[test]
    fn into_parts_roundtrip() {
        let g = path5();
        let (sub, ids) = InducedSubgraph::new(&g, &[2, 3]).into_parts();
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(ids, vec![2, 3]);
    }
}
