//! Compressed sparse row (CSR) graph representation.

use std::fmt;

/// Vertex identifier.
///
/// Vertices are dense integers in `0..n`. A 32-bit id halves the memory
/// traffic of adjacency scans compared with `usize` on 64-bit targets,
/// which matters for the cache-bound peeling loops in core decomposition.
pub type VertexId = u32;

/// An immutable undirected simple graph in CSR form.
///
/// Each undirected edge `{u, v}` is stored as two directed arcs, one in
/// each endpoint's adjacency slice. Adjacency slices are sorted by vertex
/// id and contain no duplicates or self-loops. Construct via
/// [`crate::GraphBuilder`] or the readers in [`crate::io`].
///
/// # Examples
///
/// ```
/// use hcd_graph::GraphBuilder;
///
/// let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0)]).build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// `offsets` must have length `n + 1` with `offsets[0] == 0`, be
    /// non-decreasing, and end at `neighbors.len()`. Each adjacency slice
    /// must be sorted, duplicate-free, self-loop-free, and symmetric
    /// (`v ∈ N(u)` iff `u ∈ N(v)`). These invariants are debug-asserted;
    /// prefer [`crate::GraphBuilder`], which establishes them for you.
    pub fn from_csr(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            neighbors.len(),
            "offsets must end at neighbors.len()"
        );
        let g = CsrGraph { offsets, neighbors };
        debug_assert!(g.check_invariants().is_ok(), "CSR invariants violated");
        g
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of directed arcs (`2m`); the length of the neighbor array.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted adjacency slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n`, or 0.0 for an empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// The raw CSR offset array (length `n + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw neighbor array (length `2m`).
    pub fn raw_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Validates every CSR invariant, returning a description of the first
    /// violation. Used by tests and by the binary reader on untrusted
    /// input.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices();
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets decrease at vertex {v}"));
            }
        }
        for v in 0..n as VertexId {
            let adj = self.neighbors(v);
            for w in adj.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {v} not strictly sorted"));
                }
            }
            for &u in adj {
                if u as usize >= n {
                    return Err(format!("neighbor {u} of {v} out of range"));
                }
                if u == v {
                    return Err(format!("self-loop at {v}"));
                }
                if self.neighbors(u).binary_search(&v).is_err() {
                    return Err(format!("edge ({v},{u}) not symmetric"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrGraph {{ n: {}, m: {} }}",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1-2 triangle, 2-3 tail, 4 isolated.
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .min_vertices(5)
            .build()
    }

    #[test]
    fn counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle_plus_tail();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(4), &[] as &[VertexId]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(4, 0));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = triangle_plus_tail();
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn invariant_checker_catches_asymmetry() {
        let g = CsrGraph {
            offsets: vec![0, 1, 1],
            neighbors: vec![1],
        };
        assert!(g.check_invariants().is_err());
    }

    #[test]
    fn invariant_checker_catches_self_loop() {
        let g = CsrGraph {
            offsets: vec![0, 1],
            neighbors: vec![0],
        };
        assert!(g.check_invariants().is_err());
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn from_csr_rejects_bad_offsets() {
        CsrGraph::from_csr(vec![0, 2], vec![1]);
    }
}
